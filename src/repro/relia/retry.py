"""Retry with exponential backoff + jitter, deadlines, and a circuit breaker.

:func:`retry_call` re-attempts transient failures with exponentially
growing, jittered delays under an optional wall-clock deadline, emitting
``repro_retries_total{site=...}`` per re-attempt and
``repro_retry_exhausted_total{site=...}`` when it gives up.  Jitter is
drawn from a caller-seedable RNG, so replayed scenarios back off
identically.

:class:`CircuitBreaker` is the classic three-state machine guarding a
dependency that has started failing:

* **closed** — calls flow; consecutive failures are counted;
* **open** — after ``failure_threshold`` consecutive failures, calls are
  rejected outright (:class:`CircuitOpen`) for ``reset_timeout_s``,
  giving the dependency room to recover instead of hammering it;
* **half-open** — after the timeout, up to ``half_open_max_calls``
  probe calls are admitted; one success closes the breaker, one failure
  re-opens it.

State is exported as ``repro_breaker_state{breaker=...}`` (0 closed,
1 open, 2 half-open) with transition counts in
``repro_breaker_transitions_total{breaker=...,to=...}``, and every
transition emits a structured log line and traces under a
``relia.breaker`` span — so an operator can see *when* the serving node
started failing fast and when it recovered.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type

from repro.obs import get_logger, get_registry, span
from repro.obs.registry import MetricsRegistry
from repro.relia.errors import CircuitOpen, RetryExhausted

__all__ = [
    "BREAKER_STATES",
    "CircuitBreaker",
    "RetryPolicy",
    "retry_call",
]

# Rate-limited: retry storms log one line per attempt across every
# site; 200 lines/s bounds the sink cost under injected fault storms
# (suppressed lines land in repro_logs_suppressed_total).
_log = get_logger("repro.relia.retry", sample=200.0)

#: Gauge encoding of breaker states.
BREAKER_STATES = {"closed": 0, "open": 1, "half_open": 2}


@dataclass(frozen=True)
class RetryPolicy:
    """How a transient failure is re-attempted.

    Attributes:
        max_attempts: total attempts including the first (>= 1).
        base_delay_s: delay before the first re-attempt.
        multiplier: exponential growth factor per re-attempt.
        max_delay_s: backoff ceiling.
        jitter: fraction of the delay drawn uniformly at random and
            added (0 disables jitter; 0.5 means up to +50%).
        deadline_s: wall-clock budget for the whole call including
            backoff sleeps; None means unbounded.
        retry_on: exception types considered transient.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.01
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    jitter: float = 0.5
    deadline_s: Optional[float] = None
    retry_on: Tuple[Type[BaseException], ...] = (OSError, TimeoutError)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )

    def delay_for(self, reattempt: int, rng: random.Random) -> float:
        """Backoff before re-attempt number ``reattempt`` (1-based)."""
        raw = self.base_delay_s * (self.multiplier ** (reattempt - 1))
        capped = min(raw, self.max_delay_s)
        if self.jitter:
            capped += capped * self.jitter * rng.random()
        return capped


def retry_call(
    fn: Callable,
    *args,
    policy: Optional[RetryPolicy] = None,
    site: str = "call",
    registry: Optional[MetricsRegistry] = None,
    rng: Optional[random.Random] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    **kwargs,
):
    """Call ``fn`` under ``policy``, retrying transient failures.

    Args:
        fn: the callable (invoked with ``*args, **kwargs``).
        policy: retry policy (defaults to :class:`RetryPolicy`'s
            defaults).
        site: label for metrics/logs/spans — name the operation, e.g.
            ``"stream.ingest"``.
        registry: metrics registry for the retry counters (the global
            registry by default).
        rng: jitter RNG; pass a seeded ``random.Random`` for replayable
            backoff.
        sleep: the sleeper (tests inject a no-op).
        on_retry: optional callback ``(attempt_number, error)`` before
            each backoff sleep.

    Returns:
        whatever ``fn`` returns.

    Raises:
        RetryExhausted: after ``max_attempts`` transient failures or a
            blown deadline; the last error is chained as ``__cause__``.
        BaseException: non-transient errors propagate immediately.
    """
    policy = policy if policy is not None else RetryPolicy()
    registry = registry if registry is not None else get_registry()
    rng = rng if rng is not None else random.Random()
    retries = registry.counter(
        "repro_retries_total",
        "Transient-failure re-attempts, by retry site",
        labelnames=("site",),
    ).labels(site=site)
    exhausted = registry.counter(
        "repro_retry_exhausted_total",
        "Retried calls that failed every allowed attempt, by retry site",
        labelnames=("site",),
    ).labels(site=site)
    started = time.monotonic()
    with span("relia.retry", site=site) as record:
        last_error: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                result = fn(*args, **kwargs)
            except policy.retry_on as exc:
                last_error = exc
                if attempt >= policy.max_attempts:
                    break
                delay = policy.delay_for(attempt, rng)
                if (
                    policy.deadline_s is not None
                    and time.monotonic() + delay - started > policy.deadline_s
                ):
                    break
                retries.inc()
                _log.warning(
                    "retrying", site=site, attempt=attempt,
                    error_type=type(exc).__name__, error=str(exc),
                    backoff_s=round(delay, 6),
                )
                if on_retry is not None:
                    on_retry(attempt, exc)
                if delay > 0:
                    sleep(delay)
            else:
                if record is not None:
                    record.attributes["attempts"] = attempt
                return result
        assert last_error is not None
        if record is not None:
            record.attributes["error"] = True
            record.attributes["error_type"] = type(last_error).__name__
        exhausted.inc()
        _log.error(
            "retry_exhausted", site=site,
            attempts=policy.max_attempts,
            error_type=type(last_error).__name__, error=str(last_error),
        )
        raise RetryExhausted(site, policy.max_attempts,
                             last_error) from last_error


class CircuitBreaker:
    """Closed / open / half-open failure gate around an unhealthy dependency.

    Args:
        name: breaker name — the ``breaker`` label of its metric series.
        failure_threshold: consecutive failures that open the breaker.
        reset_timeout_s: how long the breaker stays open before probing.
        half_open_max_calls: probe calls admitted while half-open.
        registry: metrics registry (global by default).
        clock: monotonic time source (tests inject a fake).
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        half_open_max_calls: int = 1,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s <= 0:
            raise ValueError(
                f"reset_timeout_s must be positive, got {reset_timeout_s}"
            )
        if half_open_max_calls < 1:
            raise ValueError(
                f"half_open_max_calls must be >= 1, got {half_open_max_calls}"
            )
        self.name = str(name)
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.half_open_max_calls = int(half_open_max_calls)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probes = 0
        registry = registry if registry is not None else get_registry()
        registry.gauge(
            "repro_breaker_state",
            "Circuit breaker state (0 closed, 1 open, 2 half-open)",
            labelnames=("breaker",),
        ).labels(breaker=self.name).set_function(
            lambda: BREAKER_STATES[self.state]
        )
        self._transitions = registry.counter(
            "repro_breaker_transitions_total",
            "Circuit breaker state transitions",
            labelnames=("breaker", "to"),
        )

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, accounting for open -> half-open timeout."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        # Caller holds the lock.
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._transition("half_open")
            self._probes = 0

    def _transition(self, to: str) -> None:
        # Caller holds the lock.
        if to == self._state:
            return
        self._state = to
        self._transitions.labels(breaker=self.name, to=to).inc()
        _log.warning("breaker_transition", breaker=self.name, to=to,
                     consecutive_failures=self._failures)

    def allow(self) -> bool:
        """Whether a call may proceed right now (burns a half-open probe)."""
        with self._lock:
            self._maybe_half_open()
            if self._state == "closed":
                return True
            if self._state == "half_open":
                if self._probes < self.half_open_max_calls:
                    self._probes += 1
                    return True
                return False
            return False

    def retry_after(self) -> float:
        """Seconds until an open breaker will admit a probe (0 when not open)."""
        with self._lock:
            if self._state != "open":
                return 0.0
            remaining = (
                self.reset_timeout_s - (self._clock() - self._opened_at)
            )
            return max(0.0, remaining)

    def record_success(self) -> None:
        """A guarded call succeeded: close from half-open, clear failures."""
        with self._lock:
            self._failures = 0
            if self._state in ("half_open", "open"):
                self._transition("closed")

    def record_failure(self) -> None:
        """A guarded call failed: count, and open past the threshold."""
        with self._lock:
            self._maybe_half_open()
            self._failures += 1
            if self._state == "half_open":
                self._opened_at = self._clock()
                self._transition("open")
            elif (
                self._state == "closed"
                and self._failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self._transition("open")

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def check(self) -> None:
        """Raise :class:`CircuitOpen` unless a call may proceed."""
        if not self.allow():
            raise CircuitOpen(self.name, self.retry_after())

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` under the breaker, recording the outcome."""
        self.check()
        try:
            result = fn(*args, **kwargs)
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result
