"""Typed failure vocabulary of the resilience layer.

Every failure mode the resilience layer injects, detects, or surfaces
has a dedicated exception type here, so callers can write precise
``except`` clauses instead of fishing strings out of ``RuntimeError``:

* :class:`FaultError` — an *injected* I/O failure (subclasses
  ``OSError`` so the default retry policies treat it as transient);
* :class:`WorkerCrash` — an injected worker-thread death;
* :class:`CheckpointCorrupt` — a checkpoint archive that fails CRC or
  structural validation (truncated zip, flipped bits, missing keys);
* :class:`CircuitOpen` — a call rejected because its circuit breaker is
  open (fail-fast instead of hammering an unhealthy dependency);
* :class:`RetryExhausted` — a retried call that failed on every allowed
  attempt; chains the last underlying error via ``__cause__``.

This module is a leaf — it imports nothing from the rest of the
package — so ``repro.stream`` and ``repro.serve`` can raise/catch these
types without import cycles.
"""

from __future__ import annotations

__all__ = [
    "CheckpointCorrupt",
    "CircuitOpen",
    "FaultError",
    "RetryExhausted",
    "WorkerCrash",
]


class FaultError(OSError):
    """An I/O error injected by the fault harness at a named site."""


class WorkerCrash(RuntimeError):
    """A worker-thread death injected by the fault harness."""


class CheckpointCorrupt(RuntimeError):
    """A checkpoint failed validation (truncation, CRC mismatch, missing keys).

    Attributes:
        path: the offending checkpoint file.
        reason: short machine-greppable slug of what failed.
    """

    def __init__(self, path, reason: str) -> None:
        super().__init__(f"corrupt checkpoint {path}: {reason}")
        self.path = str(path)
        self.reason = reason


class CircuitOpen(RuntimeError):
    """A call rejected because its circuit breaker is open.

    Attributes:
        breaker: name of the rejecting breaker.
        retry_after: seconds until the breaker will admit a probe.
    """

    def __init__(self, breaker: str, retry_after: float) -> None:
        super().__init__(
            f"circuit breaker {breaker!r} is open; retry after "
            f"{retry_after:.3f}s"
        )
        self.breaker = breaker
        self.retry_after = float(retry_after)


class RetryExhausted(RuntimeError):
    """A retried call failed on every allowed attempt.

    The last underlying exception is chained as ``__cause__``.

    Attributes:
        site: the retry site name.
        attempts: how many attempts were made.
    """

    def __init__(self, site: str, attempts: int,
                 last_error: BaseException) -> None:
        super().__init__(
            f"retry site {site!r} exhausted after {attempts} attempts: "
            f"{type(last_error).__name__}: {last_error}"
        )
        self.site = site
        self.attempts = int(attempts)
