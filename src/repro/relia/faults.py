"""Deterministic, seedable fault injection at named sites.

The harness has three moving parts:

* a :class:`FaultPlan` — an ordered list of :class:`FaultRule` entries,
  each naming a *site* (a string like ``"stream.ingest"``), a fault
  *kind*, an optional attribute match (e.g. only a specific hour), a
  firing budget (``times``), a number of matching calls to let pass
  first (``skip``), and a firing probability drawn from the plan's own
  seeded RNG — so a given ``(plan, seed)`` replays the exact same fault
  sequence every run;
* :func:`inject` — a context manager installing the plan process-wide
  (fault sites live in worker threads, so the active plan is global,
  not thread-local);
* the *sites* — cheap calls compiled into production code paths:
  :func:`fault_point` (raises :class:`FaultError` / :class:`WorkerCrash`
  when a matching rule fires and is a no-op otherwise),
  :func:`maybe_truncate_file` (post-write checkpoint corruption), and
  :func:`perturb_hourly_stream` (duplicate / delayed-out-of-order /
  dropped hourly batches).

With no plan installed every site is a few-nanosecond attribute check,
so the hooks stay in production builds — the same property that makes
them trustworthy: chaos tests exercise the *real* code paths, not
instrumented copies.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.obs import get_logger, get_registry
from repro.relia.errors import FaultError, WorkerCrash

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "fault_point",
    "inject",
    "maybe_truncate_file",
    "perturb_hourly_stream",
]

#: Every fault kind the harness knows how to deliver.
FAULT_KINDS = (
    "io_error",   # fault_point raises FaultError (an OSError)
    "crash",      # fault_point raises WorkerCrash
    "truncate",   # maybe_truncate_file cuts the file short
    "duplicate",  # perturb_hourly_stream yields the batch twice
    "delay",      # perturb_hourly_stream holds the batch one step (reorder)
    "drop",       # perturb_hourly_stream swallows the batch
)

_log = get_logger("repro.relia.faults")


@dataclass
class FaultRule:
    """One scheduled fault: where, what, when, and how often.

    Attributes:
        site: the fault site this rule arms (exact string match).
        kind: one of :data:`FAULT_KINDS`.
        times: firing budget; ``None`` fires on every matching call.
        probability: chance a matching call fires, drawn from the plan's
            seeded RNG (1.0 = always).
        skip: matching calls to let pass before the rule may fire.
        match: attribute equality filters; every key must equal the
            string form of the site call's attribute of the same name.
        fraction: for ``truncate`` — fraction of the file to *keep*.
    """

    site: str
    kind: str
    times: Optional[int] = 1
    probability: float = 1.0
    skip: int = 0
    match: Dict[str, str] = field(default_factory=dict)
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        if self.skip < 0:
            raise ValueError(f"skip must be >= 0, got {self.skip}")
        if not 0.0 <= self.fraction < 1.0:
            raise ValueError(
                f"fraction must be in [0, 1), got {self.fraction}"
            )
        self.match = {str(k): str(v) for k, v in self.match.items()}

    def matches(self, site: str, attrs: Dict[str, str]) -> bool:
        """Site equality plus every ``match`` key equal in ``attrs``."""
        if site != self.site:
            return False
        return all(attrs.get(key) == value
                   for key, value in self.match.items())


@dataclass(frozen=True)
class Injection:
    """Record of one delivered fault (for reports and assertions)."""

    site: str
    kind: str
    attrs: Tuple[Tuple[str, str], ...]


class FaultPlan:
    """An ordered, seeded schedule of faults to deliver at named sites.

    Args:
        seed: seeds the probability RNG — identical plans with identical
            seeds deliver identical fault sequences.

    Thread-safe: sites fire from ingestion loops, worker threads, and
    HTTP handler threads concurrently.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._rules: List[FaultRule] = []
        self._fired: List[Injection] = []
        self._passes: Dict[int, int] = {}  # rule index -> matching calls seen
        self._lock = threading.Lock()

    def add(
        self,
        site: str,
        kind: str,
        times: Optional[int] = 1,
        probability: float = 1.0,
        skip: int = 0,
        fraction: float = 0.5,
        **match,
    ) -> "FaultPlan":
        """Append one rule; returns self for chaining."""
        rule = FaultRule(
            site=str(site),
            kind=str(kind),
            times=times,
            probability=float(probability),
            skip=int(skip),
            match={str(k): str(v) for k, v in match.items()},
            fraction=float(fraction),
        )
        with self._lock:
            self._rules.append(rule)
        return self

    def fire(self, site: str, kinds: Iterable[str],
             **attrs) -> Optional[FaultRule]:
        """The first armed rule matching this site call, if any fires.

        Burns the matched rule's budget, records the injection, and
        bumps the ``repro_faults_injected_total`` counter on the global
        registry.  Returns ``None`` when no rule fires.
        """
        wanted = tuple(kinds)
        str_attrs = {str(k): str(v) for k, v in attrs.items()}
        with self._lock:
            for index, rule in enumerate(self._rules):
                if rule.kind not in wanted:
                    continue
                if not rule.matches(site, str_attrs):
                    continue
                if rule.times is not None and rule.times <= 0:
                    continue
                seen = self._passes.get(index, 0)
                self._passes[index] = seen + 1
                if seen < rule.skip:
                    continue
                if rule.probability < 1.0:
                    if self._rng.random() >= rule.probability:
                        continue
                if rule.times is not None:
                    rule.times -= 1
                self._fired.append(
                    Injection(site, rule.kind, tuple(sorted(str_attrs.items())))
                )
                fired = rule
                break
            else:
                return None
        get_registry().counter(
            "repro_faults_injected_total",
            "Faults delivered by the injection harness",
            labelnames=("site", "kind"),
        ).labels(site=site, kind=fired.kind).inc()
        _log.warning("fault_injected", site=site, kind=fired.kind, **attrs)
        return fired

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def injections(self) -> List[Injection]:
        """Every fault delivered so far, in firing order."""
        with self._lock:
            return list(self._fired)

    def injected_total(self, site: Optional[str] = None,
                       kind: Optional[str] = None) -> int:
        """Count delivered faults, optionally filtered by site/kind."""
        with self._lock:
            return sum(
                1
                for injection in self._fired
                if (site is None or injection.site == site)
                and (kind is None or injection.kind == kind)
            )


# ----------------------------------------------------------------------
# Global installation
# ----------------------------------------------------------------------

_active: Optional[FaultPlan] = None
_install_lock = threading.Lock()


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, or None."""
    return _active


@contextmanager
def inject(plan: FaultPlan):
    """Install ``plan`` process-wide for the duration of the block.

    Nested installation is rejected — overlapping plans would make the
    delivered fault sequence depend on scheduling, destroying the
    determinism the harness exists for.
    """
    global _active
    with _install_lock:
        if _active is not None:
            raise RuntimeError("a fault plan is already installed")
        _active = plan
    try:
        yield plan
    finally:
        with _install_lock:
            _active = None


# ----------------------------------------------------------------------
# Sites
# ----------------------------------------------------------------------


def fault_point(site: str, **attrs) -> None:
    """A raising fault site: no-op unless an armed io_error/crash rule fires.

    Raises:
        FaultError: when an ``io_error`` rule fires here.
        WorkerCrash: when a ``crash`` rule fires here.
    """
    plan = _active
    if plan is None:
        return
    rule = plan.fire(site, ("io_error", "crash"), **attrs)
    if rule is None:
        return
    if rule.kind == "io_error":
        raise FaultError(f"injected I/O fault at {site}")
    raise WorkerCrash(f"injected worker crash at {site}")


def maybe_truncate_file(path, site: str, **attrs) -> bool:
    """A corruption site: truncate ``path`` when a ``truncate`` rule fires.

    Keeps the leading ``rule.fraction`` of the file's bytes — the shape
    of a torn write or a bad sector, which is exactly what the CRC
    validation in ``repro.stream.checkpoint`` must catch.

    Returns:
        True when the file was truncated.
    """
    plan = _active
    if plan is None:
        return False
    rule = plan.fire(site, ("truncate",), **attrs)
    if rule is None:
        return False
    from pathlib import Path

    target = Path(path)
    size = target.stat().st_size
    keep = int(size * rule.fraction)
    with open(target, "r+b") as handle:
        handle.truncate(keep)
    _log.warning("checkpoint_truncated", path=str(target),
                 kept_bytes=keep, original_bytes=size)
    return True


def perturb_hourly_stream(batches, site: str = "stream.feed") -> Iterator:
    """Replay ``batches`` with feed-level faults applied.

    Consults the active plan per batch (attribute ``hour``):

    * ``duplicate`` — the batch is yielded twice in a row (a feed that
      re-delivers an hour after an ack was lost);
    * ``delay`` — the batch is held back one step, so it arrives *after*
      its successor (a late hourly file: out-of-order delivery);
    * ``drop`` — the batch is swallowed (a gap in the feed).

    With no plan installed this is a transparent pass-through.
    """
    held = None
    for batch in batches:
        plan = _active
        rule = (
            plan.fire(site, ("duplicate", "delay", "drop"),
                      hour=str(batch.hour))
            if plan is not None
            else None
        )
        if rule is None:
            yield batch
        elif rule.kind == "duplicate":
            yield batch
            yield batch
        elif rule.kind == "drop":
            continue
        else:  # delay: hold this batch until after its successor
            if held is not None:
                yield held
            held = batch
            continue
        if held is not None:
            late, held = held, None
            yield late
    if held is not None:
        yield held
