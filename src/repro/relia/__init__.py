"""repro.relia — fault injection, retry/breakers, and graceful degradation.

The resilience layer for the streaming and serving subsystems:

* :mod:`repro.relia.faults` — deterministic, seedable fault injection at
  named sites (:class:`FaultPlan` / :func:`inject`);
* :mod:`repro.relia.retry` — exponential-backoff retry with jitter and
  deadlines (:func:`retry_call`), plus a closed/open/half-open
  :class:`CircuitBreaker`;
* :mod:`repro.relia.degrade` — skip-and-log quarantine, reorder windows,
  and duplicate/gap absorption for stream ingestion
  (:class:`ResilientStreamingProfiler`), and the serving-side
  nearest-centroid fallback contract (:class:`ServeDegradePolicy`);
* :mod:`repro.relia.errors` — the typed failure vocabulary.

The scripted end-to-end chaos scenario lives in
:mod:`repro.relia.chaos`, imported lazily by the CLI so that importing
this package never drags in ``repro.stream``/``repro.serve``.

See ``docs/RESILIENCE.md`` for fault-site names, tuning guidance, and
degradation semantics.
"""

from repro.relia.degrade import (
    QuarantinedBatch,
    ResilientStreamingProfiler,
    ServeDegradePolicy,
    StreamDegradePolicy,
)
from repro.relia.errors import (
    CheckpointCorrupt,
    CircuitOpen,
    FaultError,
    RetryExhausted,
    WorkerCrash,
)
from repro.relia.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultRule,
    active_plan,
    fault_point,
    inject,
    maybe_truncate_file,
    perturb_hourly_stream,
)
from repro.relia.retry import (
    BREAKER_STATES,
    CircuitBreaker,
    RetryPolicy,
    retry_call,
)

__all__ = [
    "BREAKER_STATES",
    "CheckpointCorrupt",
    "CircuitBreaker",
    "CircuitOpen",
    "FAULT_KINDS",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "QuarantinedBatch",
    "ResilientStreamingProfiler",
    "RetryExhausted",
    "RetryPolicy",
    "ServeDegradePolicy",
    "StreamDegradePolicy",
    "WorkerCrash",
    "active_plan",
    "fault_point",
    "inject",
    "maybe_truncate_file",
    "perturb_hourly_stream",
    "retry_call",
]
