"""The scripted end-to-end chaos scenario behind ``repro-icn chaos``.

One deterministic run exercises every resilience mechanism against the
real stream/serve stack — no mocks, no instrumented copies:

1. a small synthetic deployment is generated and profiled, and a
   fault-free **reference** ingestion (minus the hour the chaos run will
   lose) records the ground-truth accumulator state;
2. the **chaos** ingestion replays the same hours through
   :func:`~repro.relia.faults.perturb_hourly_stream` and a
   :class:`~repro.relia.degrade.ResilientStreamingProfiler` while a
   seeded :class:`~repro.relia.faults.FaultPlan` delivers a transient
   I/O-error burst (retried), a permanently poisoned hour (quarantined),
   a duplicated hour (deduplicated), and a delayed out-of-order hour
   (re-sorted) — after which the final accumulator state must match the
   reference **bit-exactly**;
3. a mid-stream checkpoint is saved cleanly, a second save is truncated
   by the harness, and restore must detect the corruption (CRC), roll
   back to the backup, and re-ingest the tail to the same final state;
4. a :class:`~repro.serve.ProfileService` with degradation enabled
   absorbs injected worker crashes: stranded requests are retried until
   the crash budget kills them, then answered from nearest centroids
   with ``degraded=true``; once the breaker's reset timeout passes, a
   probe closes it and full-fidelity answers resume.

5. an :class:`~repro.obs.slo.SLOEngine` and burn-rate
   :class:`~repro.obs.alerts.AlertManager` judge the whole storm on a
   **synthetic clock**: availability/degraded fast-burn alerts must go
   pending → firing while the worker crashes land, the firing alert
   must carry an exemplar trace id that resolves to a real span in the
   :class:`~repro.obs.trace.TraceStore`, and after recovery traffic
   every alert must resolve.  The budget report is written to the work
   directory as ``chaos_slo_report.json``.

A :class:`~repro.obs.prof.ContinuousProfiler` samples stacks for the
whole storm (its speedscope export lands in the work directory as
``chaos_prof.speedscope.json``), and the run ends with a check that the
process-wide ``/metrics`` surface shows nonzero retry / breaker /
degraded / fault counters plus the profiler's own sampling series.  Everything
is seeded — same seed, same faults, same verdicts (SLO evaluation uses
explicit synthetic timestamps, so the alert transitions are replayable
too).
"""

from __future__ import annotations

import json
import random
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs import (
    disable_tracing,
    enable_tracing,
    get_logger,
    get_registry,
    get_trace_store,
    span,
    tracing_enabled,
)
from repro.obs.alerts import AlertManager, default_rules
from repro.obs.prof import ContinuousProfiler
from repro.obs.slo import SLOEngine, default_slos
from repro.relia.degrade import (
    ResilientStreamingProfiler,
    StreamDegradePolicy,
)
from repro.relia.faults import FaultPlan, inject, perturb_hourly_stream
from repro.relia.retry import RetryPolicy

__all__ = ["ChaosCheck", "ChaosReport", "run_chaos_scenario"]

_log = get_logger("repro.relia.chaos")

#: Metric families the scenario requires to be present and nonzero.
REQUIRED_SERIES = (
    "repro_retries_total",
    "repro_breaker_state",
    "repro_degraded_answers_total",
    "repro_faults_injected_total",
    "repro_slo_error_budget_remaining",
    "repro_alert_state",
    "repro_prof_samples_total",
)


@dataclass(frozen=True)
class ChaosCheck:
    """One pass/fail verdict of the scenario."""

    name: str
    passed: bool
    detail: str


@dataclass
class ChaosReport:
    """Everything the chaos run observed, for humans and CI artifacts."""

    seed: int
    checks: List[ChaosCheck] = field(default_factory=list)
    injections: List[Dict[str, object]] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    slo: Dict[str, object] = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return all(check.passed for check in self.checks)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the ``chaos_report.json`` artifact)."""
        return {
            "seed": self.seed,
            "ok": self.ok,
            "elapsed_s": round(self.elapsed_s, 3),
            "checks": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in self.checks
            ],
            "injections": self.injections,
            "counters": self.counters,
            "slo": self.slo,
        }

    def summary(self) -> str:
        """Human-readable verdict table."""
        lines = [
            f"chaos scenario seed={self.seed}: "
            f"{'PASS' if self.ok else 'FAIL'} "
            f"({sum(c.passed for c in self.checks)}/{len(self.checks)} "
            f"checks, {len(self.injections)} faults injected, "
            f"{self.elapsed_s:.1f}s)"
        ]
        for check in self.checks:
            mark = "ok " if check.passed else "FAIL"
            lines.append(f"  [{mark}] {check.name}: {check.detail}")
        return "\n".join(lines)


def _states_equal(a: Dict[str, object], b: Dict[str, object]) -> bool:
    """Bit-exact equality of two checkpoint-style state mappings."""
    if set(a) != set(b):
        return False
    for key, left in a.items():
        right = b[key]
        if isinstance(left, np.ndarray):
            if not isinstance(right, np.ndarray):
                return False
            if left.dtype != right.dtype or left.shape != right.shape:
                return False
            if not np.array_equal(left, right):
                return False
        elif left != right:
            return False
    return True


def _accumulator_states(profiler) -> Dict[str, object]:
    """The order-sensitive numeric state (totals + window, not timers)."""
    state = {}
    for key, value in profiler.totals.state_dict().items():
        state[f"totals.{key}"] = value
    for key, value in profiler.window.state_dict().items():
        state[f"window.{key}"] = value
    return state


def _counter_sum(name: str) -> float:
    """Sum of one global counter family across all its label series."""
    family = get_registry().get(name)
    if family is None:
        return 0.0
    return float(sum(child.value for _, child in family.series()))


def run_chaos_scenario(
    seed: int = 0,
    work_dir: Optional[str] = None,
    scale: float = 0.05,
) -> ChaosReport:
    """Run the full scripted fault scenario; returns the verdict report.

    Tracing is enabled for the duration of the run (and restored to its
    prior state afterwards) so latency exemplars captured during the
    fault storm resolve to real spans in the trace store.

    Args:
        seed: seeds the dataset, the fault plan, and every jitter RNG —
            identical seeds replay identical runs.
        work_dir: directory for checkpoint files and the
            ``chaos_slo_report.json`` budget artifact (a temp dir by
            default).
        scale: deployment scale factor versus the paper's Table 1.
    """
    was_tracing = tracing_enabled()
    if not was_tracing:
        enable_tracing()
    try:
        return _run_scenario(int(seed), work_dir, float(scale))
    finally:
        if not was_tracing:
            disable_tracing()


def _run_scenario(
    seed: int, work_dir: Optional[str], scale: float
) -> ChaosReport:
    # Imports deferred so that ``import repro.relia`` stays cheap and
    # cycle-free; the scenario is the one place the whole stack meets.
    from repro.core.pipeline import ICNProfiler
    from repro.datagen.calendar import StudyCalendar
    from repro.datagen.dataset import generate_dataset
    from repro.datagen.scenarios import scaled_specs
    from repro.serve import ProfileService, ServeDegradePolicy, ServeMetrics
    from repro.stream import StreamingProfiler, replay_dataset

    started = time.perf_counter()
    report = ChaosReport(seed=int(seed))
    work = Path(work_dir) if work_dir else Path(tempfile.mkdtemp(
        prefix="repro-chaos-"
    ))
    work.mkdir(parents=True, exist_ok=True)

    _log.info("chaos_start", seed=int(seed), work_dir=str(work))

    # The continuous profiler rides along for the whole storm: a chaos
    # run is exactly the situation where an operator would pull
    # /debug/prof, so the scenario proves the sampler keeps capturing
    # (and keeps its overhead accounting) while everything else burns.
    profiler = ContinuousProfiler(hz=25.0, window_s=5.0).start()

    # SLO judging layer on a synthetic clock: the scenario passes
    # explicit timestamps to tick()/evaluate(), so alert transitions are
    # a pure function of the injected faults — replayable like the rest
    # of the run.  Windows are scaled 60x down from production (1h -> 60s
    # budget window; fast pair 60s/5s, slow pair 4320s/360s).
    engine = SLOEngine(
        default_slos(get_registry(), window_s=60.0),
        registry=get_registry(),
    )
    alerts = AlertManager(
        engine, default_rules(engine, time_scale=1.0 / 60.0),
        registry=get_registry(),
    )
    engine.tick(now=0.0)  # baseline sample before any fault lands

    # ------------------------------------------------------------------
    # Stage 0: dataset, profile, and the fault schedule
    # ------------------------------------------------------------------
    calendar = StudyCalendar(
        np.datetime64("2023-01-09T00", "h"),
        np.datetime64("2023-01-12T23", "h"),
    )
    dataset = generate_dataset(
        master_seed=int(seed),
        specs=scaled_specs(scale, minimum_per_environment=6),
        calendar=calendar,
    )
    frozen = ICNProfiler(n_clusters=6, surrogate_trees=15).fit(dataset).freeze()
    batches = list(replay_dataset(dataset))
    hours = [batch.hour for batch in batches]
    h_burst, h_poison = hours[5], hours[12]
    h_dup, h_delay = hours[20], hours[28]

    plan = (
        FaultPlan(seed=int(seed))
        # Transient I/O burst: first two ingest attempts fail, the third
        # succeeds — absorbed by retry, the hour is NOT lost.
        .add("stream.ingest", "io_error", times=2, hour=str(h_burst))
        # Poisoned hour: every attempt fails — quarantined, hour lost.
        .add("stream.ingest", "io_error", times=None, hour=str(h_poison))
        .add("stream.feed", "duplicate", hour=str(h_dup))
        .add("stream.feed", "delay", hour=str(h_delay))
        # First checkpoint save passes (skip=1); the second is truncated.
        .add("stream.checkpoint", "truncate", times=1, skip=1, fraction=0.45)
        # Two worker crashes: with max_item_retries=1 the stranded
        # request survives the first crash and dies with the second,
        # forcing the nearest-centroid fallback.
        .add("serve.worker", "crash", times=2)
    )

    # ------------------------------------------------------------------
    # Stage 1: fault-free reference (minus the hour chaos will lose)
    # ------------------------------------------------------------------
    reference = StreamingProfiler(frozen, classify_every=0)
    for batch in batches:
        if batch.hour != h_poison:
            reference.ingest(batch)
    reference_state = _accumulator_states(reference)

    checkpoint_file = work / "chaos_ckpt.npz"
    midpoint = len(batches) // 2

    with inject(plan):
        # --------------------------------------------------------------
        # Stage 2: chaos ingestion through the degradation wrapper
        # --------------------------------------------------------------
        inner = StreamingProfiler(frozen, classify_every=0)
        resilient = ResilientStreamingProfiler(
            inner,
            StreamDegradePolicy(
                reorder_window=3,
                retry=RetryPolicy(max_attempts=3, base_delay_s=0.0,
                                  jitter=0.0),
            ),
            rng=random.Random(int(seed)),
        )
        folded_hours: List[np.datetime64] = []
        checkpoint_hour = None
        for batch in perturb_hourly_stream(batches):
            for result in resilient.ingest(batch):
                if result is not None:
                    folded_hours.append(result.hour)
            if checkpoint_hour is None and len(folded_hours) >= midpoint:
                inner.checkpoint(checkpoint_file)  # clean (skip=1 passes)
                checkpoint_hour = inner.totals.last_hour
        for result in resilient.flush():
            if result is not None:
                folded_hours.append(result.hour)
        chaos_state = _accumulator_states(inner)

        quarantined = resilient.quarantined_hours()
        report.checks.append(ChaosCheck(
            "poisoned_hour_quarantined",
            quarantined == [np.datetime64(h_poison, "h")],
            f"quarantine holds {[str(h) for h in quarantined]} "
            f"(expected [{h_poison}])",
        ))
        report.checks.append(ChaosCheck(
            "stream_bit_exact",
            _states_equal(chaos_state, reference_state),
            "chaos accumulators match the fault-free reference bit-exactly "
            "over unaffected hours",
        ))
        report.checks.append(ChaosCheck(
            "transient_burst_retried",
            h_burst in [np.datetime64(h, "h") for h in folded_hours]
            and _counter_sum("repro_retries_total") > 0,
            f"hour {h_burst} survived {plan.injected_total('stream.ingest', 'io_error')} "
            f"injected I/O errors",
        ))
        report.checks.append(ChaosCheck(
            "duplicate_hour_dropped",
            plan.injected_total("stream.feed", "duplicate") == 1
            and sorted(folded_hours) == sorted(set(folded_hours)),
            f"hour {h_dup} was re-delivered and deduplicated",
        ))
        report.checks.append(ChaosCheck(
            "out_of_order_resorted",
            plan.injected_total("stream.feed", "delay") == 1
            and folded_hours == sorted(folded_hours),
            f"hour {h_delay} arrived late; folds stayed in calendar order",
        ))

        # --------------------------------------------------------------
        # Stage 3: truncated checkpoint -> CRC detection -> rollback
        # --------------------------------------------------------------
        inner.checkpoint(checkpoint_file)  # truncate rule fires here
        restored = StreamingProfiler.restore(
            checkpoint_file, frozen, classify_every=0
        )
        rolled_back_to = restored.totals.last_hour
        corrupt_kept = checkpoint_file.with_name(
            checkpoint_file.name + ".corrupt"
        ).exists()
        by_hour = {np.datetime64(b.hour, "h"): b for b in batches}
        for hour in sorted(folded_hours):
            if rolled_back_to is None or hour > rolled_back_to:
                restored.ingest(by_hour[np.datetime64(hour, "h")])
        report.checks.append(ChaosCheck(
            "checkpoint_rollback_and_catchup",
            corrupt_kept
            and checkpoint_hour is not None
            and rolled_back_to == checkpoint_hour
            and _states_equal(_accumulator_states(restored), chaos_state),
            f"truncated checkpoint detected; rolled back to {rolled_back_to} "
            f"and re-ingested the tail to an identical final state",
        ))

        # --------------------------------------------------------------
        # Stage 4: worker crashes -> degraded answers -> recovery
        # --------------------------------------------------------------
        # Synthetic-clock sample after the stream/checkpoint stages:
        # their bad events (quarantine, checkpoint corruption) are now
        # on the books, the serve storm hasn't started yet.
        engine.tick(now=5.0)
        alerts.evaluate(now=5.0)
        service = ProfileService(
            frozen,
            n_workers=2,
            cache_size=0,
            max_wait_ms=1.0,
            metrics=ServeMetrics(registry=get_registry()),
            degrade=ServeDegradePolicy(failure_threshold=1,
                                       reset_timeout_s=1.0),
            max_item_retries=1,
        )
        try:
            # Each classify runs inside a chaos.classify span, so the
            # latency histogram's exemplars (captured via
            # current_trace_id) point at spans that really exist in the
            # trace store — the linkage the alert check verifies below.
            with span("chaos.classify", phase="storm", call=1):
                first = service.classify(frozen.features[:4], timeout=30.0)
            with span("chaos.classify", phase="storm", call=2):
                second = service.classify(frozen.features[4:8], timeout=30.0)
            # The storm is on the books: sample it, see the rising edge
            # (pending), then confirm it held (firing) one evaluation
            # later.  Fast pair 60s/5s at burn > 14.4: two all-degraded,
            # all-error requests against a 99.9% objective burn ~1000x.
            engine.tick(now=10.0)
            alerts.evaluate(now=10.0)
            pending_names = sorted(
                a.rule.name for a in alerts.alerts if a.state == "pending"
            )
            engine.tick(now=12.0)
            alerts.evaluate(now=12.0)
            firing = [a for a in alerts.alerts if a.state == "firing"]
            firing_names = sorted(a.rule.name for a in firing)
            report.checks.append(ChaosCheck(
                "slo_alerts_fired_during_faults",
                "serve-availability-fast-burn" in pending_names
                and "serve-availability-fast-burn" in firing_names
                and "serve-degraded-fast-burn" in firing_names,
                f"fault storm drove fast-burn alerts pending "
                f"{pending_names} then firing {firing_names}",
            ))
            exemplar_ids = [
                a.exemplar_trace_id for a in firing
                if a.exemplar_trace_id is not None
            ]
            known_traces = {
                record.trace_id for record in get_trace_store().spans()
            }
            report.checks.append(ChaosCheck(
                "alert_exemplar_links_trace",
                bool(exemplar_ids)
                and all(tid in known_traces for tid in exemplar_ids),
                f"firing alerts carry exemplar trace ids {exemplar_ids}, "
                f"all resolvable in the trace store",
            ))
            time.sleep(1.2)  # past the breaker's reset timeout
            with span("chaos.classify", phase="recovery", call=3):
                third = service.classify(frozen.features[8:12], timeout=30.0)
            expected_first = frozen.nearest_centroids(frozen.features[:4])
            expected_third = frozen.vote(frozen.features[8:12])
            report.checks.append(ChaosCheck(
                "crashes_supervised_never_dropped",
                service._batcher.crash_count() == 2
                and service._batcher.alive_workers() == 2
                and first.n_vectors == 4,
                f"{service._batcher.crash_count()} worker crashes, pool "
                f"respawned to {service._batcher.alive_workers()} workers, "
                f"every request answered",
            ))
            report.checks.append(ChaosCheck(
                "degraded_answers_marked",
                first.degraded and second.degraded
                and np.array_equal(first.labels, expected_first),
                "crashed-batch and open-breaker answers both fell back to "
                "nearest centroids with degraded=true",
            ))
            report.checks.append(ChaosCheck(
                "breaker_recovered",
                not third.degraded
                and np.array_equal(third.labels, expected_third),
                "after the reset timeout a probe closed the breaker and "
                "full-fidelity answers resumed",
            ))
            # Recovery traffic: a run of full-fidelity answers rebuilds
            # short-window compliance so the fast alerts' recency
            # condition clears on the next evaluation.
            for call in range(4, 24):
                with span("chaos.classify", phase="recovery", call=call):
                    service.classify(frozen.features[:4], timeout=30.0)
        finally:
            service.close()

        # --------------------------------------------------------------
        # Stage 4b: alerts must resolve once the storm is over
        # --------------------------------------------------------------
        # First evaluation after recovery: the fast pairs clear (their
        # short windows now contain only good traffic).  The far-future
        # evaluation then clears the slow pairs too, once their long
        # windows anchor past the storm.
        engine.tick(now=50.0)
        alerts.evaluate(now=50.0)
        engine.tick(now=10000.0)
        alerts.evaluate(now=10000.0)
        still_active = sorted(a.rule.name for a in alerts.active())
        slo_report_path = work / "chaos_slo_report.json"
        report.slo = {
            "budget": engine.report(now=10000.0),
            "alerts": alerts.report(),
            "fired": firing_names,
        }
        slo_report_path.write_text(
            json.dumps(report.slo, indent=2) + "\n", encoding="utf-8"
        )
        report.checks.append(ChaosCheck(
            "slo_alerts_resolved_after_recovery",
            not still_active and slo_report_path.exists(),
            "no alert left pending/firing after recovery "
            f"(active: {still_active or 'none'}); budget report written "
            f"to {slo_report_path.name}",
        ))

    # ------------------------------------------------------------------
    # Stage 5: the telemetry surface must show the whole story
    # ------------------------------------------------------------------
    profiler.stop()
    prof_stats = profiler.stats()
    prof_path = work / "chaos_prof.speedscope.json"
    profiler.export_speedscope(prof_path)
    report.checks.append(ChaosCheck(
        "profiler_sampled_through_storm",
        int(prof_stats["snapshot_passes"]) > 0  # type: ignore[call-overload]
        and int(prof_stats["stacks"]) > 0  # type: ignore[call-overload]
        and prof_path.exists(),
        f"continuous profiler captured {prof_stats['stacks']} stacks over "
        f"{prof_stats['snapshot_passes']} passes at measured overhead "
        f"{float(prof_stats['overhead_ratio']):.2%}; "  # type: ignore[arg-type]
        f"speedscope written to {prof_path.name}",
    ))

    exposition = get_registry().prometheus_text()
    missing = [name for name in REQUIRED_SERIES if name not in exposition]
    nonzero = {
        "repro_retries_total": _counter_sum("repro_retries_total"),
        "repro_degraded_answers_total": _counter_sum(
            "repro_degraded_answers_total"
        ),
        "repro_faults_injected_total": _counter_sum(
            "repro_faults_injected_total"
        ),
        "repro_worker_crashes_total": _counter_sum(
            "repro_worker_crashes_total"
        ),
        "repro_quarantined_batches_total": _counter_sum(
            "repro_quarantined_batches_total"
        ),
    }
    report.checks.append(ChaosCheck(
        "metrics_exposed",
        not missing and all(value > 0 for value in nonzero.values()),
        f"/metrics shows {', '.join(REQUIRED_SERIES)}"
        + (f" (missing: {missing})" if missing else ""),
    ))

    report.counters = nonzero
    # The worker attr names whichever pool thread happened to hit the
    # crash site — pure thread-scheduling noise.  Dropping it keeps the
    # injection log (a CI artifact, and the seed-determinism test's
    # comparison key) identical across replays of the same seed.
    report.injections = [
        {
            "site": inj.site,
            "kind": inj.kind,
            "attrs": {
                key: value for key, value in dict(inj.attrs).items()
                if key != "worker"
            },
        }
        for inj in plan.injections()
    ]
    report.elapsed_s = time.perf_counter() - started
    _log.log(
        "info" if report.ok else "error",
        "chaos_done", ok=report.ok,
        checks_passed=sum(c.passed for c in report.checks),
        checks_total=len(report.checks),
        injections=len(report.injections),
        elapsed_s=round(report.elapsed_s, 3),
    )
    return report
