"""Graceful-degradation policies for stream ingestion and serving.

The batch accumulators in ``repro.stream`` are strict by design: hours
must arrive in strictly increasing order, and a poisoned batch raises.
That strictness is what makes their numerics reproducible — but a live
feed re-delivers hours after lost acks, delivers late files out of
order, and occasionally emits garbage.  :class:`ResilientStreamingProfiler`
wraps any profiler exposing ``ingest(batch)`` (duck-typed — no import of
``repro.stream`` here) and absorbs exactly that mess:

* **out-of-order arrivals** — a small reorder window holds up to
  ``reorder_window`` batches and always releases the earliest hour
  first, so a batch delayed past its successor is folded in calendar
  order and the accumulators never see a backwards hour;
* **duplicate hours** — re-delivered hours are dropped on arrival
  (``repro_duplicate_hours_total``);
* **gaps** — missing hours are counted (``repro_stream_gap_hours_total``)
  and ingestion continues; the accumulators are gap-tolerant by
  construction (hours need only increase, not be contiguous);
* **poisoned batches** — an ingest that keeps failing after retry is
  *quarantined*: the batch goes to a bounded buffer for offline autopsy,
  the failure is logged with full context, and the stream moves on
  (``repro_quarantined_batches_total``).  Skipping is explicitly
  gap-semantics: the final profile equals a fault-free run over the
  non-quarantined hours.

:class:`ServeDegradePolicy` is the serving-side contract consumed by
``repro.serve.ProfileService``: when the worker pool is unhealthy (its
circuit breaker is open), answer from the frozen profile's cheap
nearest-centroid path instead of the full forest vote, and mark the
answer ``degraded=true`` so clients can tell a best-effort label from a
full-fidelity one.
"""

from __future__ import annotations

import heapq
import random
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.obs import get_logger, get_registry
from repro.relia.errors import RetryExhausted
from repro.relia.retry import RetryPolicy, retry_call

__all__ = [
    "QuarantinedBatch",
    "ResilientStreamingProfiler",
    "ServeDegradePolicy",
    "StreamDegradePolicy",
]

# Rate-limited: a fault storm can emit thousands of duplicate/gap/
# quarantine warnings per second; 200 lines/s keeps the JSON sink
# readable while repro_logs_suppressed_total records the overflow.
_log = get_logger("repro.relia.degrade", sample=200.0)


@dataclass(frozen=True)
class StreamDegradePolicy:
    """Tolerance knobs for :class:`ResilientStreamingProfiler`.

    Attributes:
        reorder_window: batches held back to re-sort late arrivals; a
            batch delayed by up to ``reorder_window - 1`` positions is
            still folded in calendar order.  1 disables reordering
            (every arrival is released immediately).
        max_quarantine: poisoned batches kept for autopsy; beyond this
            the oldest quarantined batch is evicted (counts persist).
        retry: retry policy for transient ingest failures (I/O errors
            from a flaky feed); None disables retry.
        step_hours: nominal feed period, for gap accounting.
    """

    reorder_window: int = 4
    max_quarantine: int = 64
    retry: Optional[RetryPolicy] = RetryPolicy(
        max_attempts=3, base_delay_s=0.001, max_delay_s=0.05
    )
    step_hours: int = 1

    def __post_init__(self) -> None:
        if self.reorder_window < 1:
            raise ValueError(
                f"reorder_window must be >= 1, got {self.reorder_window}"
            )
        if self.max_quarantine < 1:
            raise ValueError(
                f"max_quarantine must be >= 1, got {self.max_quarantine}"
            )
        if self.step_hours < 1:
            raise ValueError(
                f"step_hours must be >= 1, got {self.step_hours}"
            )


@dataclass(frozen=True)
class QuarantinedBatch:
    """One poisoned batch held out of the stream, with its autopsy note."""

    batch: object
    error_type: str
    error: str
    attempts: int


@dataclass(frozen=True)
class ServeDegradePolicy:
    """When and how ``ProfileService`` degrades to nearest-centroid answers.

    Attributes:
        fallback_to_centroids: answer from the frozen profile's
            nearest-centroid path (marked ``degraded=true``) while the
            worker pool's breaker is open, instead of raising.
        failure_threshold: consecutive vote failures that open the
            breaker.
        reset_timeout_s: seconds the breaker stays open before probing
            the pool again.
    """

    fallback_to_centroids: bool = True
    failure_threshold: int = 3
    reset_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.reset_timeout_s <= 0:
            raise ValueError(
                f"reset_timeout_s must be positive, got {self.reset_timeout_s}"
            )


class ResilientStreamingProfiler:
    """Degradation wrapper folding a messy feed into a strict profiler.

    Args:
        profiler: anything exposing ``ingest(batch)`` — normally a
            :class:`repro.stream.StreamingProfiler`.
        policy: tolerance knobs (defaults throughout).
        rng: jitter RNG handed to the retry machinery; pass a seeded
            ``random.Random`` for replayable chaos runs.

    Call :meth:`ingest` per arriving batch and :meth:`flush` at end of
    stream (or use the instance as a context manager).  Because of the
    reorder window, a given ``ingest`` call may fold zero or more
    batches; both methods return the inner profiler's results for the
    batches actually folded.

    Attribute access falls through to the wrapped profiler, so
    ``classify_current()``, ``checkpoint()``, ``summary()`` etc. work
    directly on the wrapper.
    """

    def __init__(
        self,
        profiler,
        policy: Optional[StreamDegradePolicy] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.profiler = profiler
        self.policy = policy if policy is not None else StreamDegradePolicy()
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        # Heap keyed by integer hour (datetime64[h] ticks); the tie-break
        # sequence number keeps heapq away from comparing batch objects.
        self._pending: List[Tuple[int, int, object]] = []
        self._seq = 0
        self._seen_hours: set = set()
        self._max_hour: Optional[int] = None
        self._last_folded_hour: Optional[int] = None
        self._quarantine: Deque[QuarantinedBatch] = deque(
            maxlen=self.policy.max_quarantine
        )
        registry = get_registry()
        self._quarantined_total = registry.counter(
            "repro_quarantined_batches_total",
            "Poisoned batches skipped-and-held by the degradation layer",
        )
        self._duplicates_total = registry.counter(
            "repro_duplicate_hours_total",
            "Re-delivered hours dropped by the degradation layer",
        )
        self._reordered_total = registry.counter(
            "repro_reordered_batches_total",
            "Out-of-order arrivals re-sorted by the reorder window",
        )
        self._gap_hours_total = registry.counter(
            "repro_stream_gap_hours_total",
            "Missing feed hours detected between folded batches",
        )
        # Good-event count of the stream-quarantine SLO: batches the
        # degradation layer actually folded into the strict profiler.
        self._folded_total = registry.counter(
            "repro_stream_batches_folded_total",
            "Batches folded into the wrapped profiler",
        )
        # Ingest-lag SLI: arrivals currently parked in the reorder
        # window waiting for earlier hours (scrape-time read).
        registry.gauge(
            "repro_stream_reorder_lag_batches",
            "Batches held in the reorder window awaiting earlier hours",
        ).set_function(lambda: float(self.pending_count))

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    @staticmethod
    def _hour_tick(batch) -> int:
        return int(np.datetime64(batch.hour, "h").astype(np.int64))

    def ingest(self, batch) -> List[object]:
        """Accept one arrival; fold whatever the reorder window releases.

        Returns:
            The inner profiler's per-batch results for batches folded by
            this call (empty while the window is still filling).
        """
        tick = self._hour_tick(batch)
        release: List[object] = []
        with self._lock:
            if tick in self._seen_hours:
                self._duplicates_total.inc()
                _log.warning("duplicate_hour_dropped", hour=str(batch.hour))
                return []
            self._seen_hours.add(tick)
            if self._max_hour is not None and tick < self._max_hour:
                self._reordered_total.inc()
                _log.warning(
                    "out_of_order_arrival", hour=str(batch.hour),
                    latest_hour_seen=str(
                        np.int64(self._max_hour).astype("datetime64[h]")
                    ),
                )
            else:
                self._max_hour = tick
            heapq.heappush(self._pending, (tick, self._seq, batch))
            self._seq += 1
            while len(self._pending) >= self.policy.reorder_window:
                release.append(heapq.heappop(self._pending)[2])
        return [self._fold(b) for b in release]

    def flush(self) -> List[object]:
        """Drain the reorder window in calendar order (end of stream)."""
        with self._lock:
            release = [heapq.heappop(self._pending)[2]
                       for _ in range(len(self._pending))]
        return [self._fold(b) for b in release]

    def _fold(self, batch) -> object:
        tick = self._hour_tick(batch)
        if self._last_folded_hour is not None:
            gap = (tick - self._last_folded_hour) // self.policy.step_hours - 1
            if gap > 0:
                self._gap_hours_total.inc(gap)
                _log.warning(
                    "feed_gap", hour=str(batch.hour), missing_hours=int(gap),
                )
        self._last_folded_hour = tick

        def attempt():
            return self.profiler.ingest(batch)

        try:
            if self.policy.retry is not None:
                result = retry_call(
                    attempt,
                    policy=self.policy.retry,
                    site="stream.ingest",
                    rng=self._rng,
                )
            else:
                result = attempt()
        except (RetryExhausted, ValueError, OSError) as exc:
            cause = exc.__cause__ if isinstance(exc, RetryExhausted) else exc
            attempts = (
                exc.attempts if isinstance(exc, RetryExhausted) else 1
            )
            entry = QuarantinedBatch(
                batch=batch,
                error_type=type(cause).__name__,
                error=str(cause),
                attempts=attempts,
            )
            with self._lock:
                self._quarantine.append(entry)
            self._quarantined_total.inc()
            _log.error(
                "batch_quarantined", hour=str(batch.hour),
                n_rows=int(batch.n_rows), error_type=entry.error_type,
                error=entry.error, attempts=attempts,
            )
            return None
        self._folded_total.inc()
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def quarantine(self) -> List[QuarantinedBatch]:
        """Poisoned batches currently held (oldest evicted past the cap)."""
        with self._lock:
            return list(self._quarantine)

    def quarantined_hours(self) -> List[np.datetime64]:
        """Hours of every batch currently in quarantine, sorted."""
        with self._lock:
            hours = [
                np.datetime64(entry.batch.hour, "h")
                for entry in self._quarantine
            ]
        return sorted(hours)

    @property
    def pending_count(self) -> int:
        """Batches currently held in the reorder window."""
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def __getattr__(self, name: str):
        # Fall through to the wrapped profiler (classify_current,
        # checkpoint, occupancy, summary, totals, ...).
        return getattr(self.profiler, name)

    def __enter__(self) -> "ResilientStreamingProfiler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.flush()
