"""Continuous sampling profiler: always-on, bounded-overhead CPU visibility.

``repro-icn serve --profile`` answers "where is this node spending its
time *right now*" without restarting anything: a daemon thread snapshots
every Python thread's stack via :func:`sys._current_frames` at a
configurable rate, folds the stacks into collapsed form (``root;...;leaf
count`` — the flamegraph interchange format), and aggregates them into a
ring of rotating time windows so queries see the trailing N seconds, not
the process lifetime.

The profiler polices its own cost.  ``max_overhead`` is a hard duty-
cycle budget (default 2%): each snapshot pass is timed, and when the
exponentially-weighted duty cycle (sample time / wall time) would exceed
the budget the next tick is stretched until the ratio falls back under
it.  A node drowning in threads therefore degrades to a *coarser*
profile, never to a slower service.  The measured ratio is exported as
``repro_prof_overhead_ratio`` alongside ``repro_prof_samples_total``,
``repro_prof_stacks_total``, ``repro_prof_throttled_ticks_total``, and
the ``repro_prof_sample_seconds`` histogram, so the profiler's own cost
is visible on the same scrape surface it helps debug.

Exports: :meth:`ContinuousProfiler.collapsed_text` (pipe straight into
``flamegraph.pl``) and :meth:`~ContinuousProfiler.speedscope` /
:meth:`~ContinuousProfiler.export_speedscope` (drop onto
https://www.speedscope.app).  Serve nodes expose both at
``GET /debug/prof?seconds=N[&format=collapsed]``.

Tests drive :meth:`~ContinuousProfiler.sample_once` with synthetic
timestamps for bit-reproducible aggregation; the background thread is
only the scheduler around it.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["ContinuousProfiler"]

#: Frames from these files are the profiler's own machinery and the
#: scheduler idle loop — noise in every profile, so they are dropped.
_SELF_FILE = os.path.abspath(__file__)


def _frame_label(code) -> str:
    """``function (file.py:line)`` — stable, greppable frame naming."""
    return (
        f"{code.co_name} "
        f"({os.path.basename(code.co_filename)}:{code.co_firstlineno})"
    )


class _Window:
    """One rotation of aggregated stacks: ``stack tuple -> samples``."""

    __slots__ = ("start", "counts", "n_samples")

    def __init__(self, start: float) -> None:
        self.start = start
        self.counts: Dict[Tuple[str, ...], int] = {}
        self.n_samples = 0


class ContinuousProfiler:
    """Samples all thread stacks into rotating collapsed-stack windows.

    Args:
        hz: target sampling frequency (snapshot passes per second).
        window_s: width of one aggregation window; queries merge whole
            windows, so this is the granularity of "the last N seconds".
        n_windows: ring length — total retained history is
            ``window_s * n_windows``.
        max_overhead: hard duty-cycle budget in [0, 1); the sampler
            stretches its tick interval whenever the EWMA of
            (sample time / wall time) would exceed it.
        registry: destination for the ``repro_prof_*`` self-metrics
            (process-wide default when None).
        clock: time source for window rotation (monotonic by default).

    Use as a context manager (``with ContinuousProfiler() as prof:``) or
    via explicit :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        hz: float = 50.0,
        window_s: float = 10.0,
        n_windows: int = 6,
        max_overhead: float = 0.02,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz}")
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if n_windows < 1:
            raise ValueError(f"n_windows must be >= 1, got {n_windows}")
        if not 0.0 < max_overhead < 1.0:
            raise ValueError(
                f"max_overhead must be in (0, 1), got {max_overhead}"
            )
        self.hz = float(hz)
        self.window_s = float(window_s)
        self.n_windows = int(n_windows)
        self.max_overhead = float(max_overhead)
        self._clock = clock
        self._lock = threading.Lock()
        self._windows: List[_Window] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._duty_ewma = 0.0

        reg = registry if registry is not None else get_registry()
        self._samples_total = reg.counter(
            "repro_prof_samples_total",
            "Stack snapshot passes taken by the continuous profiler",
        )
        self._stacks_total = reg.counter(
            "repro_prof_stacks_total",
            "Individual thread stacks captured by the continuous profiler",
        )
        self._throttled_total = reg.counter(
            "repro_prof_throttled_ticks_total",
            "Profiler ticks stretched to respect the overhead budget",
        )
        self._overhead_gauge = reg.gauge(
            "repro_prof_overhead_ratio",
            "EWMA of profiler duty cycle (sample time / wall time)",
        )
        self._sample_seconds = reg.histogram(
            "repro_prof_sample_seconds",
            "Duration of one profiler snapshot pass",
            buckets=(0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                     0.01, 0.025, 0.05),
        )

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample_once(self, now: Optional[float] = None) -> int:
        """Capture one snapshot of every thread; returns stacks folded.

        The profiler's own sampler thread and any stack consisting
        purely of profiler-internal frames are excluded — a profile of
        the profiler is exactly the overhead the budget already
        reports.
        """
        t = float(now) if now is not None else self._clock()
        names = {
            thread.ident: thread.name for thread in threading.enumerate()
        }
        me = threading.get_ident()
        frames = sys._current_frames()
        folded = 0
        window = self._current_window(t)
        for ident, frame in frames.items():
            if ident == me:
                continue
            stack: List[str] = []
            while frame is not None:
                code = frame.f_code
                if os.path.abspath(code.co_filename) != _SELF_FILE:
                    stack.append(_frame_label(code))
                frame = frame.f_back
            if not stack:
                continue
            stack.append(f"thread:{names.get(ident, ident)}")
            key = tuple(reversed(stack))  # root-first
            with self._lock:
                window.counts[key] = window.counts.get(key, 0) + 1
            folded += 1
        with self._lock:
            window.n_samples += 1
        self._samples_total.inc()
        self._stacks_total.inc(folded)
        return folded

    def _current_window(self, t: float) -> _Window:
        with self._lock:
            if not self._windows or t - self._windows[-1].start >= self.window_s:
                self._windows.append(_Window(t))
                while len(self._windows) > self.n_windows:
                    del self._windows[0]
            return self._windows[-1]

    def _run(self) -> None:
        base_interval = 1.0 / self.hz
        while not self._stop.is_set():
            started = self._clock()
            self.sample_once(now=started)
            cost = self._clock() - started
            self._sample_seconds.observe(cost)
            # Stretch the next tick whenever sampling at the base rate
            # would push the duty cycle past the budget: an interval of
            # cost / max_overhead holds the cycle exactly at the budget.
            interval = base_interval
            budget_interval = cost / self.max_overhead
            if budget_interval > base_interval:
                interval = budget_interval
                self._throttled_total.inc()
            self._duty_ewma = 0.8 * self._duty_ewma + 0.2 * (
                cost / max(interval, 1e-9)
            )
            self._overhead_gauge.set(self._duty_ewma)
            self._stop.wait(interval)

    def start(self) -> "ContinuousProfiler":
        """Launch the daemon sampler thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-prof-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout_s: float = 2.0) -> None:
        """Stop the sampler thread and join it."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout_s)
        self._thread = None

    @property
    def running(self) -> bool:
        """True while the sampler thread is alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def __enter__(self) -> "ContinuousProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def overhead_ratio(self) -> float:
        """EWMA of the measured duty cycle (0.0 before any tick)."""
        return self._duty_ewma

    # ------------------------------------------------------------------
    # Aggregation and export
    # ------------------------------------------------------------------

    def _merged(self, seconds: Optional[float] = None,
                now: Optional[float] = None) -> Tuple[
                    Dict[Tuple[str, ...], int], int]:
        """``(stack -> count, snapshot passes)`` over the trailing window.

        Whole windows are merged: every window whose *start* lies
        inside the trailing ``seconds`` contributes (plus the window
        straddling the boundary), so the result covers at least the
        requested span.  ``seconds=None`` merges all retained windows.
        """
        t = float(now) if now is not None else self._clock()
        merged: Dict[Tuple[str, ...], int] = {}
        passes = 0
        with self._lock:
            windows = list(self._windows)
        for index, window in enumerate(windows):
            if seconds is not None:
                window_end = (
                    windows[index + 1].start
                    if index + 1 < len(windows) else t
                )
                if window_end < t - float(seconds):
                    continue
            with self._lock:
                items = list(window.counts.items())
                passes += window.n_samples
            for stack, count in items:
                merged[stack] = merged.get(stack, 0) + count
        return merged, passes

    def collapsed(self, seconds: Optional[float] = None,
                  now: Optional[float] = None) -> Dict[str, int]:
        """Folded-stack counts: ``"root;child;leaf" -> samples``."""
        merged, _ = self._merged(seconds=seconds, now=now)
        return {
            ";".join(stack): count
            for stack, count in sorted(merged.items())
        }

    def collapsed_text(self, seconds: Optional[float] = None,
                       now: Optional[float] = None) -> str:
        """Collapsed stacks, one ``stack count`` line each (flamegraph.pl)."""
        lines = [
            f"{stack} {count}"
            for stack, count in self.collapsed(
                seconds=seconds, now=now
            ).items()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(self, seconds: Optional[float] = None,
                   now: Optional[float] = None,
                   name: str = "repro-icn continuous profile") -> Dict[
                       str, object]:
        """The merged window as a speedscope *sampled* profile document.

        Each distinct collapsed stack becomes one sample whose weight is
        its share of wall time (``count / hz`` seconds) — open the
        returned JSON directly at https://www.speedscope.app.
        """
        merged, _ = self._merged(seconds=seconds, now=now)
        frame_index: Dict[str, int] = {}
        frames: List[Dict[str, object]] = []
        samples: List[List[int]] = []
        weights: List[float] = []
        for stack, count in sorted(merged.items()):
            indices = []
            for label in stack:
                index = frame_index.get(label)
                if index is None:
                    index = len(frames)
                    frame_index[label] = index
                    frames.append({"name": label})
                indices.append(index)
            samples.append(indices)
            weights.append(count / self.hz)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "exporter": "repro-icn",
            "name": name,
            "activeProfileIndex": 0,
            "shared": {"frames": frames},
            "profiles": [{
                "type": "sampled",
                "name": name,
                "unit": "seconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }],
        }

    def export_speedscope(self, path: Union[str, "os.PathLike[str]"],
                          seconds: Optional[float] = None) -> int:
        """Write the speedscope document to ``path``; returns samples."""
        document = self.speedscope(seconds=seconds)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        profiles = document["profiles"]
        assert isinstance(profiles, list)
        samples = profiles[0]["samples"]
        assert isinstance(samples, list)
        return len(samples)

    def export_collapsed(self, path: Union[str, "os.PathLike[str]"],
                         seconds: Optional[float] = None) -> int:
        """Write collapsed-stack text to ``path``; returns stack lines."""
        text = self.collapsed_text(seconds=seconds)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return 0 if not text else text.count("\n")

    def stats(self) -> Dict[str, object]:
        """Snapshot of the profiler's own accounting (for reports)."""
        with self._lock:
            windows = len(self._windows)
            passes = sum(w.n_samples for w in self._windows)
            stacks = sum(
                sum(w.counts.values()) for w in self._windows
            )
        return {
            "running": self.running,
            "hz": self.hz,
            "window_s": self.window_s,
            "n_windows": windows,
            "snapshot_passes": passes,
            "stacks": stacks,
            "overhead_ratio": self._duty_ewma,
            "max_overhead": self.max_overhead,
        }
