"""Liveness/readiness checks composed from the serving and SLO state.

A :class:`HealthCheck` is a named probe returning ``(ok, detail)``; a
:class:`HealthReport` aggregates a batch of probe results into one
verdict: the report is healthy when every **critical** check passes
(non-critical checks appear in the report but cannot flip the verdict —
they are warnings, not outages).  The serve HTTP layer maps the verdict
onto status codes: ``GET /healthz`` answers 200 while healthy and 503
otherwise, which is what load balancers, the chaos CI job, and
``kubectl``-style probes key off.

:func:`service_health_checks` builds the standard probe set for a
:class:`~repro.serve.service.ProfileService`:

* ``profile_loaded`` (critical) — a profile version is installed;
* ``queue_headroom`` (critical) — the admission queue is below its shed
  watermark;
* ``breaker`` (critical) — the worker-health circuit breaker is not
  open (half-open counts as recovering, hence ready);
* ``error_budget`` (warning) — no tracked SLO has overspent its error
  budget.  Budget exhaustion means objectives are being missed, not
  that the process should be pulled from rotation, so it degrades the
  report without failing it.

Probes never raise out of :func:`run_checks`: a probe that throws is
recorded as a failed check with the exception text as its detail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

__all__ = [
    "HealthCheck",
    "HealthReport",
    "run_checks",
    "service_health_checks",
]


@dataclass(frozen=True)
class HealthCheck:
    """One named health probe.

    Attributes:
        name: stable check identifier.
        probe: callable returning ``(ok, detail)``; ``detail`` is a
            short human-readable status string either way.
        critical: whether a failure makes the whole report unhealthy.
    """

    name: str
    probe: Callable[[], Tuple[bool, str]]
    critical: bool = True


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one executed probe."""

    name: str
    ok: bool
    critical: bool
    detail: str


@dataclass(frozen=True)
class HealthReport:
    """Aggregated verdict over one batch of executed checks."""

    ok: bool
    checks: Tuple[CheckResult, ...]

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable body (the ``GET /healthz`` payload)."""
        return {
            "status": "ok" if self.ok else "unhealthy",
            "checks": [
                {
                    "name": check.name,
                    "ok": check.ok,
                    "critical": check.critical,
                    "detail": check.detail,
                }
                for check in self.checks
            ],
        }


def run_checks(checks: Sequence[HealthCheck]) -> HealthReport:
    """Execute every probe; unhealthy iff any critical check fails.

    A probe that raises is treated as a failed check (with the
    exception text as detail) rather than propagating — health
    endpoints must answer, not crash.
    """
    results: List[CheckResult] = []
    ok = True
    for check in checks:
        try:
            passed, detail = check.probe()
        except Exception as exc:  # noqa: BLE001 - probe faults are results
            passed, detail = False, f"probe raised {type(exc).__name__}: {exc}"
        passed = bool(passed)
        results.append(CheckResult(
            name=check.name, ok=passed, critical=check.critical,
            detail=str(detail),
        ))
        if check.critical and not passed:
            ok = False
    return HealthReport(ok=ok, checks=tuple(results))


def service_health_checks(service, engine=None) -> List[HealthCheck]:
    """The standard probe set for a :class:`ProfileService`.

    Args:
        service: the :class:`~repro.serve.service.ProfileService` to
            probe (duck-typed; tests pass lightweight stands-ins).
        engine: optional :class:`~repro.obs.slo.SLOEngine` — when given,
            adds the (non-critical) error-budget check.
    """
    def profile_loaded() -> Tuple[bool, str]:
        version = service.registry.current_version()
        if version is None:
            return False, "no profile loaded"
        return True, f"serving profile version {version}"

    def queue_headroom() -> Tuple[bool, str]:
        depth = service._batcher.queue_depth()
        limit = service._batcher.max_queue_depth
        if depth >= limit:
            return False, f"queue saturated ({depth}/{limit})"
        return True, f"queue {depth}/{limit}"

    def breaker_closed() -> Tuple[bool, str]:
        breaker = getattr(service, "_breaker", None)
        if breaker is None:
            return True, "no breaker configured"
        state = breaker.state
        if state == "open":
            return False, "worker breaker open (degraded answers only)"
        return True, f"worker breaker {state}"

    checks = [
        HealthCheck("profile_loaded", profile_loaded, critical=True),
        HealthCheck("queue_headroom", queue_headroom, critical=True),
        HealthCheck("breaker", breaker_closed, critical=True),
    ]
    if engine is not None:
        def budget_ok() -> Tuple[bool, str]:
            overspent = [
                slo.name for slo in engine.slos
                if engine.budget_remaining(slo.name) < 0.0
            ]
            if overspent:
                return False, f"error budget overspent: {overspent}"
            return True, "all error budgets within bounds"

        checks.append(HealthCheck("error_budget", budget_ok, critical=False))
    return checks
