"""Multi-window, multi-burn-rate alerting over the SLO engine.

Implements the Google-SRE-workbook alerting recipe: an alert on an SLO
pairs a **long** window (significance — enough budget actually burned)
with a **short** window (recency — the burn is still happening), and
fires only when *both* exceed the same burn-rate threshold.  Two such
rules per SLO cover the spectrum:

* the **fast** pair (1 h / 5 m at burn 14.4) pages on incidents that
  would exhaust a 30-day budget in about two days — it fires within
  minutes of a hard outage and resolves within minutes of recovery;
* the **slow** pair (3 d / 6 h at burn 1.0) tickets on slow leaks that
  would exactly exhaust the budget — too gentle to page on, too
  expensive to ignore.

Each :class:`Alert` runs a small state machine —

    inactive → pending → firing → resolved → (pending … )

— where *pending* means the condition was just met (rising edge),
*firing* means it held for the rule's ``for_s`` grace on a subsequent
evaluation, and *resolved* is the sticky post-firing state until the
condition returns.  Every transition is exported three ways: the
``repro_alert_state{alert=...}`` gauge (0/1/2/3 per
:data:`ALERT_STATES`), the ``repro_alert_transitions_total{alert,to}``
counter, and a structured log event (``alert_pending`` /
``alert_firing`` / ``alert_resolved``).  When an alert fires on an SLO
that declares an ``exemplar_metric``, the manager captures the worst
retained exemplar of that histogram — so the alert carries the trace id
of a recent worst-case request, resolvable in the
:class:`~repro.obs.trace.TraceStore`.

Like the engine, evaluation takes explicit ``now`` timestamps, so chaos
scenarios and tests drive the full pending → firing → resolved cycle on
a synthetic clock with bit-identical transitions every run.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.obs.logs import get_logger
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLOEngine
from repro.obs.trace import get_trace_store, tracing_enabled

__all__ = [
    "ALERT_STATES",
    "Alert",
    "AlertManager",
    "BurnRateRule",
    "default_rules",
]

#: Alert state machine states, encoded for the state gauge.
ALERT_STATES: Dict[str, int] = {
    "inactive": 0,
    "pending": 1,
    "firing": 2,
    "resolved": 3,
}

_log = get_logger("repro.obs.alerts")


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate alerting rule on one SLO.

    The condition is ``burn(long) > threshold AND burn(short) >
    threshold``: the long window proves enough budget burned to matter,
    the short window proves the burn is still in progress (and clears
    the alert quickly after recovery).

    Attributes:
        name: stable alert identifier (the ``alert`` label).
        slo: name of the SLO this rule judges.
        long_window_s / short_window_s: the window pair, seconds.
        burn_threshold: burn rate both windows must exceed.
        for_s: grace period — the condition must hold this long (across
            evaluations) before pending escalates to firing.  0 still
            requires one further evaluation, so *pending* is always an
            observable state.
        severity: ``page`` (fast pairs) or ``ticket`` (slow pairs),
            carried into logs and reports.
    """

    name: str
    slo: str
    long_window_s: float
    short_window_s: float
    burn_threshold: float
    for_s: float = 0.0
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.short_window_s >= self.long_window_s:
            raise ValueError(
                f"rule {self.name!r}: short window "
                f"({self.short_window_s}s) must be shorter than long "
                f"({self.long_window_s}s)"
            )
        if self.burn_threshold <= 0:
            raise ValueError(
                f"rule {self.name!r}: burn_threshold must be positive"
            )


@dataclass
class Alert:
    """Mutable runtime state of one rule (owned by the manager).

    Attributes:
        rule: the rule being evaluated.
        state: one of :data:`ALERT_STATES`.
        since: timestamp the condition first held (pending onset), or
            None while inactive/resolved.
        last_change: timestamp of the latest state transition.
        burn_long / burn_short: burn rates at the latest evaluation.
        exemplar_trace_id / exemplar_value: worst-case trace correlation
            captured when the alert fired (None otherwise).
        fired_count: lifetime number of pending→firing escalations.
    """

    rule: BurnRateRule
    state: str = "inactive"
    since: Optional[float] = None
    last_change: float = 0.0
    burn_long: float = 0.0
    burn_short: float = 0.0
    exemplar_trace_id: Optional[str] = None
    exemplar_value: Optional[float] = None
    fired_count: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (for reports and ``GET /slo``)."""
        return {
            "name": self.rule.name,
            "slo": self.rule.slo,
            "severity": self.rule.severity,
            "state": self.state,
            "burn_threshold": self.rule.burn_threshold,
            "long_window_s": self.rule.long_window_s,
            "short_window_s": self.rule.short_window_s,
            "burn_long": self.burn_long,
            "burn_short": self.burn_short,
            "since": self.since,
            "last_change": self.last_change,
            "fired_count": self.fired_count,
            "exemplar_trace_id": self.exemplar_trace_id,
            "exemplar_value": self.exemplar_value,
        }


class AlertManager:
    """Evaluates burn-rate rules and runs each alert's state machine.

    Call :meth:`evaluate` after each engine :meth:`~SLOEngine.tick`
    (the serve HTTP layer does both per scrape).  Rules referencing
    unknown SLOs are rejected at construction, not at evaluation.

    Args:
        engine: the :class:`SLOEngine` providing burn rates.
        rules: rules to run (alert names must be unique).
        registry: registry for ``repro_alert_*`` / ``repro_slo_burn_rate``
            series (defaults to the engine's registry).
        clock: fallback time source when ``evaluate()`` gets no ``now``.
    """

    def __init__(
        self,
        engine: SLOEngine,
        rules: Sequence[BurnRateRule],
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate alert names in {names}")
        known = {slo.name for slo in engine.slos}
        for rule in rules:
            if rule.slo not in known:
                raise ValueError(
                    f"rule {rule.name!r} references unknown SLO "
                    f"{rule.slo!r} (have {sorted(known)})"
                )
        self.engine = engine
        self.registry = registry if registry is not None else engine.registry
        self._clock = clock
        # One evaluation's read-modify-write of every alert's state
        # machine must be atomic: evaluate() runs on every scrape of a
        # threaded HTTP server, and two unlocked evaluations can both
        # see "pending" and both escalate — double-counting fired_count
        # and the transition counter, and duplicating firing logs.
        self._lock = threading.Lock()
        self._alerts: Dict[str, Alert] = {
            rule.name: Alert(rule=rule) for rule in rules
        }
        self._state_gauge = self.registry.gauge(
            "repro_alert_state",
            "Alert state (0=inactive 1=pending 2=firing 3=resolved)",
            labelnames=("alert",),
        )
        self._transitions = self.registry.counter(
            "repro_alert_transitions_total",
            "Alert state-machine transitions by destination state",
            labelnames=("alert", "to"),
        )
        self._burn_gauge = self.registry.gauge(
            "repro_slo_burn_rate",
            "Error-budget burn rate per SLO and rule window",
            labelnames=("slo", "window"),
        )
        for alert in self._alerts.values():
            self._state_gauge.labels(alert=alert.rule.name).set(
                ALERT_STATES[alert.state]
            )

    @property
    def alerts(self) -> List[Alert]:
        """All alerts in rule-declaration order."""
        return list(self._alerts.values())

    def get(self, name: str) -> Alert:
        """The alert for rule ``name`` (KeyError when unknown)."""
        return self._alerts[name]

    def active(self) -> List[Alert]:
        """Alerts currently pending or firing."""
        with self._lock:
            return [
                a for a in self._alerts.values()
                if a.state in ("pending", "firing")
            ]

    def _transition(self, alert: Alert, to: str, t: float,
                    **log_fields) -> None:
        alert.state = to
        alert.last_change = t
        self._state_gauge.labels(alert=alert.rule.name).set(ALERT_STATES[to])
        self._transitions.labels(alert=alert.rule.name, to=to).inc()
        _log.warning(
            f"alert_{to}",
            alert=alert.rule.name,
            slo=alert.rule.slo,
            severity=alert.rule.severity,
            burn_long=round(alert.burn_long, 4),
            burn_short=round(alert.burn_short, 4),
            burn_threshold=alert.rule.burn_threshold,
            **log_fields,
        )

    def _capture_exemplar(self, alert: Alert) -> None:
        """Attach a *fresh, resolvable* worst-case exemplar, or none.

        Histogram exemplar slots keep the latest observation per bucket
        indefinitely, so a quiet bucket can hold a trace from long
        before the incident — one the bounded :class:`TraceStore` ring
        may already have evicted.  Only exemplars observed within the
        rule's short window (measured on the real monotonic clock the
        registry stamps, regardless of any synthetic evaluation
        timeline) are eligible, and when tracing is live the trace id
        must still resolve in the store.  When nothing qualifies the
        alert carries no exemplar rather than a stale or dangling one.
        """
        alert.exemplar_trace_id = None
        alert.exemplar_value = None
        slo = self.engine.get(alert.rule.slo)
        if slo.exemplar_metric is None:
            return
        family = self.registry.get(slo.exemplar_metric)
        if family is None or family.kind != "histogram":
            return
        cutoff = time.monotonic() - max(alert.rule.short_window_s, 1.0)
        known: Optional[Set[str]] = None
        if tracing_enabled():
            known = {
                record.trace_id for record in get_trace_store().spans()
            }
        worst = None
        for _, child in family.series():
            for hit in child.exemplars():
                if hit.ts < cutoff:
                    continue
                if known is not None and hit.trace_id not in known:
                    continue
                if worst is None or hit.bucket_le > worst.bucket_le or (
                    hit.bucket_le == worst.bucket_le
                    and hit.value > worst.value
                ):
                    worst = hit
        if worst is not None:
            alert.exemplar_trace_id = worst.trace_id
            alert.exemplar_value = worst.value

    def evaluate(self, now: Optional[float] = None) -> List[Alert]:
        """Re-judge every rule at ``now``; returns alerts that changed state.

        One evaluation advances each alert's state machine at most one
        step, so the pending → firing escalation always happens on a
        *later* evaluation than the rising edge — both states are
        observable regardless of ``for_s``.

        Evaluations are serialized on a manager-level lock (every
        scrape of a threaded server triggers one), so each alert's
        read-modify-write is atomic and a transition is counted and
        logged exactly once.
        """
        with self._lock:
            return self._evaluate_locked(now)

    def _evaluate_locked(self, now: Optional[float]) -> List[Alert]:
        t = float(now) if now is not None else self._clock()
        changed: List[Alert] = []
        for alert in self._alerts.values():
            rule = alert.rule
            alert.burn_long = self.engine.burn_rate(
                rule.slo, rule.long_window_s, now=t
            )
            alert.burn_short = self.engine.burn_rate(
                rule.slo, rule.short_window_s, now=t
            )
            self._burn_gauge.labels(
                slo=rule.slo, window=f"{int(rule.long_window_s)}s"
            ).set(alert.burn_long)
            self._burn_gauge.labels(
                slo=rule.slo, window=f"{int(rule.short_window_s)}s"
            ).set(alert.burn_short)
            condition = (
                alert.burn_long > rule.burn_threshold
                and alert.burn_short > rule.burn_threshold
            )
            previous = alert.state
            if condition:
                if alert.state in ("inactive", "resolved"):
                    alert.since = t
                    self._transition(alert, "pending", t)
                elif alert.state == "pending":
                    held = t - (alert.since if alert.since is not None else t)
                    if held >= rule.for_s:
                        alert.fired_count += 1
                        self._capture_exemplar(alert)
                        self._transition(
                            alert, "firing", t,
                            exemplar_trace_id=alert.exemplar_trace_id,
                            exemplar_value=alert.exemplar_value,
                        )
                # firing stays firing while the condition holds.
            else:
                if alert.state in ("pending", "firing"):
                    was_firing = alert.state == "firing"
                    alert.since = None
                    if was_firing:
                        self._transition(alert, "resolved", t)
                    else:
                        # A pending alert whose condition lapses never
                        # mattered; return to inactive quietly.
                        self._transition(alert, "inactive", t)
            if alert.state != previous:
                changed.append(alert)
        return changed

    def report(self) -> List[Dict[str, object]]:
        """JSON-serializable snapshot of every alert."""
        with self._lock:
            return [alert.to_dict() for alert in self._alerts.values()]


def default_rules(engine: SLOEngine,
                  time_scale: float = 1.0) -> List[BurnRateRule]:
    """Fast + slow burn-rate pairs for every SLO the engine tracks.

    ``time_scale`` shrinks the canonical production windows (1h/5m fast,
    3d/6h slow) for replay scenarios: the chaos scenario runs at
    ``time_scale=1/60`` so a sixty-second synthetic storm exercises the
    same machinery as an hour-long production incident.
    """
    scale = float(time_scale)
    if scale <= 0:
        raise ValueError(f"time_scale must be positive, got {scale}")
    rules: List[BurnRateRule] = []
    for slo in engine.slos:
        rules.append(BurnRateRule(
            name=f"{slo.name}-fast-burn",
            slo=slo.name,
            long_window_s=3600.0 * scale,
            short_window_s=300.0 * scale,
            burn_threshold=14.4,
            for_s=0.0,
            severity="page",
        ))
        rules.append(BurnRateRule(
            name=f"{slo.name}-slow-burn",
            slo=slo.name,
            long_window_s=259200.0 * scale,
            short_window_s=21600.0 * scale,
            burn_threshold=1.0,
            for_s=0.0,
            severity="ticket",
        ))
    return rules
