"""Lightweight per-stage profiling hooks: wall/CPU time and peak memory.

Two attachment points:

* :func:`timed_stage` — the instrumentation primitive the pipeline,
  stream, and serve layers wrap their hot stages in.  It opens a tracing
  span (a no-op when tracing is off) and folds the stage's wall-clock
  into the shared registry's ``repro_stage_seconds{stage=...}``
  histogram.  Cheap enough to leave on permanently
  (``benchmarks/test_perf_obs.py`` bounds the overhead below 5%).
* :func:`profile_stage` — the heavyweight on-demand profiler: wall
  seconds, CPU seconds (:func:`time.process_time`), peak RSS
  (``resource.getrusage``), and optionally peak *traced* allocation via
  :mod:`tracemalloc`.  Use it from notebooks, the ``obs`` CLI, or a
  one-off investigation, not from steady-state hot paths (tracemalloc
  slows allocation-heavy code substantially).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.trace import span

try:  # resource is POSIX-only; profile records degrade gracefully without it.
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

__all__ = ["StageStats", "profile_stage", "timed_stage"]

#: Bucket bounds for the shared per-stage wall-clock histogram: the
#: pipeline stages span ~1 ms (RCA) to tens of seconds (SHAP at scale).
STAGE_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)


def _peak_rss_bytes() -> Optional[int]:
    """Process peak resident set size, or None where unavailable."""
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    import sys

    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


@dataclass
class StageStats:
    """Resource usage of one profiled stage.

    Attributes:
        name: stage name.
        wall_seconds: elapsed wall-clock.
        cpu_seconds: process CPU time consumed (user + system).
        peak_rss_bytes: process-wide peak RSS at stage exit (None on
            platforms without :mod:`resource`).  Note this is a process
            high-water mark, not a per-stage delta — it can only grow.
        peak_traced_bytes: peak tracemalloc allocation during the stage
            (None unless ``trace_memory=True``).
    """

    name: str
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    peak_rss_bytes: Optional[int] = None
    peak_traced_bytes: Optional[int] = None

    def summary(self) -> str:
        """One-line human-readable report."""
        parts = [
            f"{self.name}: {self.wall_seconds * 1e3:.1f} ms wall, "
            f"{self.cpu_seconds * 1e3:.1f} ms cpu"
        ]
        if self.peak_rss_bytes is not None:
            parts.append(f"peak rss {self.peak_rss_bytes / 2**20:.1f} MiB")
        if self.peak_traced_bytes is not None:
            parts.append(
                f"peak traced {self.peak_traced_bytes / 2**20:.1f} MiB"
            )
        return ", ".join(parts)


@contextmanager
def profile_stage(name: str, registry: Optional[MetricsRegistry] = None,
                  trace_memory: bool = False):
    """Profile one stage; yields a :class:`StageStats` filled at exit.

    Opens a span named ``name`` around the body, so profiled stages also
    appear in exported traces.  When ``registry`` is given (or the
    default registry otherwise), the wall-clock lands in
    ``repro_stage_seconds{stage=name}`` like :func:`timed_stage`.

    Args:
        name: stage name (also the span name and metric label).
        registry: registry to record into; defaults to the process one.
        trace_memory: measure peak allocation via :mod:`tracemalloc`
            (slow; only for investigations).
    """
    import tracemalloc

    stats = StageStats(name=name)
    started_tracemalloc = False
    if trace_memory and not tracemalloc.is_tracing():
        tracemalloc.start()
        started_tracemalloc = True
    if trace_memory:
        tracemalloc.reset_peak()
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    stage_span = span(name, profiled=True)
    try:
        with stage_span:
            yield stats
    finally:
        stats.wall_seconds = time.perf_counter() - wall0
        stats.cpu_seconds = time.process_time() - cpu0
        stats.peak_rss_bytes = _peak_rss_bytes()
        if trace_memory:
            _, stats.peak_traced_bytes = tracemalloc.get_traced_memory()
            if started_tracemalloc:
                tracemalloc.stop()
        reg = registry if registry is not None else get_registry()
        record = stage_span.record
        reg.histogram(
            "repro_stage_seconds",
            "Wall-clock seconds per instrumented stage",
            labelnames=("stage",),
            buckets=STAGE_BUCKETS,
        ).labels(stage=name).observe(
            stats.wall_seconds,
            exemplar=record.trace_id if record is not None else None,
        )


class timed_stage:
    """Span + stage-seconds histogram around one hot-path stage.

    The permanent instrumentation wrapper: ``with
    timed_stage("pipeline.rca", rows=n):`` is what
    :class:`~repro.core.pipeline.ICNProfiler` and friends use.  Records
    a span when tracing is on and always folds the wall-clock into
    ``repro_stage_seconds{stage=...}`` on the default registry (or an
    explicit one).  Class-based for the same reason as
    :class:`repro.obs.trace.span`: no generator frame on the hot path.
    """

    __slots__ = ("_span", "_name", "_registry", "_start")

    def __init__(self, name: str,
                 registry: Optional[MetricsRegistry] = None,
                 **attributes) -> None:
        self._name = name
        self._registry = registry
        self._span = span(name, **attributes)
        self._start = 0.0

    def __enter__(self):
        record = self._span.__enter__()
        self._start = time.perf_counter()
        return record

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._start
        self._span.__exit__(exc_type, exc, tb)
        reg = self._registry if self._registry is not None else get_registry()
        # When tracing is on, the closed span's trace id rides along as
        # the histogram exemplar — a slow stage points at its own trace.
        record = self._span.record
        reg.histogram(
            "repro_stage_seconds",
            "Wall-clock seconds per instrumented stage",
            labelnames=("stage",),
            buckets=STAGE_BUCKETS,
        ).labels(stage=self._name).observe(
            elapsed, exemplar=record.trace_id if record is not None else None
        )
        return False
