"""In-process metrics time series: ring buffers, rate/delta/quantile queries.

The :class:`~repro.obs.registry.MetricsRegistry` answers "what is the
cumulative value *now*"; this module remembers what the answer was.  A
:class:`MetricsTSDB` walks the registry on every :meth:`~MetricsTSDB.record`
call (the serve HTTP layer records on every scrape, exactly like it
ticks the SLO engine — no background thread) and appends one
``(t, value)`` sample per concrete series into a fixed-capacity
:class:`SeriesRing`.  Histograms fan out into ``<name>_count``,
``<name>_sum``, and per-bound ``<name>_bucket`` rings so distribution
quantiles can be computed *over a trailing window* instead of over the
process lifetime.

On top of the rings sits a deliberately small query language — the
subset of PromQL the dashboards actually need::

    repro_serve_requests_total                 # latest recorded value
    rate(repro_serve_requests_total[60s])      # per-second increase
    delta(repro_serve_queue_depth[30s])        # last - first over window
    quantile(0.99, repro_serve_request_latency_seconds[60s])

Selectors accept an optional ``{label=value,...}`` filter.  ``rate`` and
``delta`` anchor on the recorded samples inside the window (at least two
samples required) and handle counter resets by summing positive
per-interval increases, so the evaluated number is a pure function of
the recorded samples — tests hand-compute it.  ``quantile`` applies the
standard Prometheus linear interpolation to the *windowed* bucket
increases of a histogram family.

:class:`SeriesRing` is also the storage primitive behind the SLO
engine's sample windows (:mod:`repro.obs.slo`) — one ring
implementation, two consumers.

``GET /query?expr=...&range=...`` on a serve node exposes
:meth:`MetricsTSDB.query` verbatim, and ``repro-icn obs watch`` paints
its ``samples`` arrays as sparklines.
"""

from __future__ import annotations

import math
import re
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    _format_value,
    get_registry,
)

__all__ = [
    "MetricsTSDB",
    "QueryError",
    "SeriesRing",
    "sparkline",
]


class QueryError(ValueError):
    """A query expression that cannot be parsed or evaluated."""


class SeriesRing:
    """Fixed-capacity append-only ring of ``(t, value)`` samples.

    Appends must arrive in non-decreasing time order (writers serialize
    on their own tick/record locks); a clock that slips backwards is
    clamped to the newest recorded time rather than corrupting the
    order invariant.  All reads return copies, so callers never hold
    the lock while iterating.
    """

    __slots__ = ("capacity", "_times", "_values", "_lock")

    def __init__(self, capacity: int = 720) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.capacity = int(capacity)
        self._times: List[float] = []
        self._values: List[float] = []
        self._lock = threading.Lock()

    def append(self, t: float, value: float) -> float:
        """Record one sample; returns the (possibly clamped) time used."""
        t = float(t)
        with self._lock:
            if self._times and t < self._times[-1]:
                t = self._times[-1]
            self._times.append(t)
            self._values.append(float(value))
            if len(self._times) > self.capacity:
                del self._times[0]
                del self._values[0]
        return t

    def __len__(self) -> int:
        with self._lock:
            return len(self._times)

    def latest(self) -> Optional[Tuple[float, float]]:
        """Newest ``(t, value)`` sample, or None when empty."""
        with self._lock:
            if not self._times:
                return None
            return self._times[-1], self._values[-1]

    def samples(self, range_s: Optional[float] = None,
                now: Optional[float] = None) -> List[Tuple[float, float]]:
        """Samples with ``t >= now - range_s`` (all samples when None)."""
        with self._lock:
            times = list(self._times)
            values = list(self._values)
        if range_s is None or not times:
            return list(zip(times, values))
        end = float(now) if now is not None else times[-1]
        start = end - float(range_s)
        return [
            (t, v) for t, v in zip(times, values)
            if start <= t <= end
        ]

    def bounds(self, range_s: float, now: Optional[float] = None) -> Tuple[
        Optional[Tuple[float, float]], Optional[Tuple[float, float]]
    ]:
        """``(anchor, end)`` samples delimiting the trailing window.

        ``anchor`` is the latest sample at or before ``now - range_s``
        (the oldest sample when history is shorter than the window, so
        short histories still produce honest deltas), ``end`` the latest
        sample at or before ``now``.  ``(None, None)`` when the ring is
        empty or every sample is newer than ``now``.
        """
        import bisect

        with self._lock:
            if not self._times:
                return None, None
            times = list(self._times)
            values = list(self._values)
        t = float(now) if now is not None else times[-1]
        end_index = bisect.bisect_right(times, t) - 1
        if end_index < 0:
            return None, None
        anchor_index = bisect.bisect_right(times, t - float(range_s)) - 1
        anchor_index = max(0, anchor_index)
        return (
            (times[anchor_index], values[anchor_index]),
            (times[end_index], values[end_index]),
        )

    def delta(self, range_s: float, now: Optional[float] = None) -> float:
        """``end - anchor`` over the trailing window (0.0 when empty)."""
        anchor, end = self.bounds(range_s, now=now)
        if anchor is None or end is None:
            return 0.0
        return end[1] - anchor[1]

    def increase(self, range_s: float,
                 now: Optional[float] = None) -> Tuple[float, float]:
        """``(total_increase, elapsed_s)`` over the trailing window.

        Counter-reset aware: sums only the positive per-interval
        increments, so a process restart mid-window contributes the
        post-restart growth instead of a huge negative delta.  Elapsed
        is the time between the first and last in-window samples.
        """
        window = self.samples(range_s=range_s, now=now)
        if len(window) < 2:
            return 0.0, 0.0
        total = 0.0
        for (_, prev), (_, curr) in zip(window, window[1:]):
            if curr > prev:
                total += curr - prev
            elif curr < prev:
                # Reset: the counter restarted from ~0 and climbed to
                # `curr`; count the visible post-reset growth.
                total += curr
        return total, window[-1][0] - window[0][0]


#: ``name`` or ``name{label=value,...}`` with a trailing ``[Ns]`` range.
_SELECTOR_RE = re.compile(
    r"^\s*(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"(?:\[(?P<range>[0-9]*\.?[0-9]+)s\])?\s*$"
)
_FUNC_RE = re.compile(
    r"^\s*(?P<fn>rate|delta|quantile)\s*\((?P<body>.*)\)\s*$", re.DOTALL
)

#: A fully resolved series key: (series name, sorted label items).
_SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _parse_labels(text: Optional[str]) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    if not text or not text.strip():
        return labels
    for part in text.split(","):
        if "=" not in part:
            raise QueryError(
                f"malformed label matcher {part.strip()!r} (want key=value)"
            )
        key, _, value = part.partition("=")
        labels[key.strip()] = value.strip().strip('"')
    return labels


class MetricsTSDB:
    """Rolling history of a :class:`MetricsRegistry`'s families.

    Args:
        registry: source of truth to snapshot (process-wide default
            registry when None).
        capacity: per-series ring size.  At one scrape per 2 s the
            default 720 samples hold ~24 minutes of history — plenty
            for rate windows and dashboard sparklines.
        min_interval_s: :meth:`record` calls closer together than this
            are coalesced into no-ops, so a scrape storm (every
            ``/metrics``, ``/query``, and ``/healthz`` hit records)
            cannot flush the ring with near-duplicate samples.
        clock: time source (monotonic by default; tests inject a
            synthetic one).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        capacity: int = 720,
        min_interval_s: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = registry if registry is not None else get_registry()
        self.capacity = int(capacity)
        self.min_interval_s = float(min_interval_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._series: Dict[_SeriesKey, SeriesRing] = {}
        self._kinds: Dict[str, str] = {}
        self._last_record: Optional[float] = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def _ring(self, name: str,
              labels: Tuple[Tuple[str, str], ...]) -> SeriesRing:
        key = (name, labels)
        ring = self._series.get(key)
        if ring is None:
            ring = SeriesRing(self.capacity)
            self._series[key] = ring
        return ring

    def record(self, now: Optional[float] = None) -> int:
        """Snapshot every registry family; returns series touched.

        Records are serialized and rate-limited by ``min_interval_s``
        (explicit ``now`` values bypass the limiter so scripted
        scenarios can record densely).
        """
        with self._lock:
            t = float(now) if now is not None else self._clock()
            if (
                now is None
                and self._last_record is not None
                and t - self._last_record < self.min_interval_s
            ):
                return 0
            if self._last_record is not None and t < self._last_record:
                t = self._last_record
            self._last_record = t
            touched = 0
            for family in self.registry.families():
                self._kinds[family.name] = family.kind
                for label_values, child in family.series():
                    labels = tuple(
                        zip(family.labelnames,
                            tuple(str(v) for v in label_values))
                    )
                    if family.kind == "histogram":
                        assert isinstance(child, Histogram)
                        _, total, count = child.snapshot()
                        self._ring(f"{family.name}_count", labels).append(
                            t, float(count)
                        )
                        self._ring(f"{family.name}_sum", labels).append(
                            t, float(total)
                        )
                        for bound, cumulative in child.cumulative_buckets():
                            le = labels + (("le", _format_value(bound)),)
                            self._ring(
                                f"{family.name}_bucket", le
                            ).append(t, float(cumulative))
                            touched += 1
                        touched += 2
                    else:
                        self._ring(family.name, labels).append(
                            t, float(child.value)
                        )
                        touched += 1
            return touched

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def series_names(self) -> List[str]:
        """Distinct recorded series names, sorted."""
        with self._lock:
            return sorted({name for name, _ in self._series})

    def select(self, name: str,
               labels: Optional[Dict[str, str]] = None) -> List[
                   Tuple[Dict[str, str], SeriesRing]]:
        """Rings recorded under ``name`` whose labels match the filter."""
        wanted = labels or {}
        with self._lock:
            items = [
                (dict(key_labels), ring)
                for (key_name, key_labels), ring in sorted(
                    self._series.items()
                )
                if key_name == name
            ]
        return [
            (series_labels, ring) for series_labels, ring in items
            if all(series_labels.get(k) == v for k, v in wanted.items())
        ]

    def samples(self, name: str,
                labels: Optional[Dict[str, str]] = None,
                range_s: Optional[float] = None,
                now: Optional[float] = None) -> List[Tuple[float, float]]:
        """Merged in-window samples of every matching series.

        With one matching series this is its sample list verbatim; with
        several, samples are concatenated in time order (sparkline
        consumers sum per-series rates instead via :meth:`query`).
        """
        merged: List[Tuple[float, float]] = []
        for _, ring in self.select(name, labels):
            merged.extend(ring.samples(range_s=range_s, now=now))
        merged.sort(key=lambda sample: sample[0])
        return merged

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def rate(self, name: str, range_s: float,
             labels: Optional[Dict[str, str]] = None,
             now: Optional[float] = None) -> Optional[float]:
        """Summed per-second increase across matching series.

        None when no matching series holds two in-window samples (a
        rate over a single point is undefined, not zero).
        """
        total = 0.0
        defined = False
        for _, ring in self.select(name, labels):
            increase, elapsed = ring.increase(range_s, now=now)
            if elapsed > 0:
                total += increase / elapsed
                defined = True
        return total if defined else None

    def delta(self, name: str, range_s: float,
              labels: Optional[Dict[str, str]] = None,
              now: Optional[float] = None) -> Optional[float]:
        """Summed ``end - anchor`` across matching series (None if none)."""
        total = 0.0
        defined = False
        for _, ring in self.select(name, labels):
            anchor, end = ring.bounds(range_s, now=now)
            if anchor is not None and end is not None:
                total += end[1] - anchor[1]
                defined = True
        return total if defined else None

    def quantile_over_time(self, q: float, name: str, range_s: float,
                           labels: Optional[Dict[str, str]] = None,
                           now: Optional[float] = None) -> Optional[float]:
        """Quantile of a histogram family's *windowed* distribution.

        Computes the per-bucket count increase over the trailing window
        (summed across matching label sets), then applies the standard
        Prometheus linear interpolation inside the target bucket.  None
        when the family recorded no bucket series or saw no
        observations inside the window.
        """
        if not 0.0 <= q <= 1.0:
            raise QueryError(f"quantile must be in [0, 1], got {q}")
        by_bound: Dict[float, float] = {}
        for series_labels, ring in self.select(f"{name}_bucket", labels):
            le = series_labels.get("le")
            if le is None:
                continue
            bound = math.inf if le == "+Inf" else float(le)
            by_bound[bound] = by_bound.get(bound, 0.0) + max(
                0.0, ring.delta(range_s, now=now)
            )
        if not by_bound:
            return None
        bounds = sorted(by_bound)
        cumulative = [by_bound[b] for b in bounds]
        total = cumulative[-1]
        if total <= 0:
            return None
        target = q * total
        previous_bound = 0.0
        previous_count = 0.0
        for bound, count in zip(bounds, cumulative):
            if count >= target:
                if math.isinf(bound):
                    return previous_bound
                if count == previous_count:
                    return bound
                fraction = (target - previous_count) / (
                    count - previous_count
                )
                return previous_bound + fraction * (bound - previous_bound)
            previous_bound = 0.0 if math.isinf(bound) else bound
            previous_count = count
        return bounds[-2] if len(bounds) > 1 else bounds[-1]

    def latest(self, name: str,
               labels: Optional[Dict[str, str]] = None) -> Optional[float]:
        """Sum of the newest sample of every matching series."""
        total = 0.0
        defined = False
        for _, ring in self.select(name, labels):
            newest = ring.latest()
            if newest is not None:
                total += newest[1]
                defined = True
        return total if defined else None

    # ------------------------------------------------------------------
    # The query endpoint
    # ------------------------------------------------------------------

    def query(self, expr: str, range_s: Optional[float] = None,
              now: Optional[float] = None) -> Dict[str, object]:
        """Evaluate one expression; the ``GET /query`` response body.

        Args:
            expr: ``name``, ``rate(name[Ns])``, ``delta(name[Ns])``, or
                ``quantile(q, name[Ns])``; selectors accept a
                ``{label=value}`` filter.
            range_s: overrides (or supplies) the ``[Ns]`` window.
            now: window end (newest recorded sample when None).

        Returns a dict with the evaluated ``value`` (None when
        undefined), the parsed ``fn``/``metric``/``range_s``, and a
        ``series`` list carrying each matching ring's in-window
        ``samples`` for sparklines.  Raises :class:`QueryError` on a
        malformed expression or an unknown series.
        """
        fn, q, name, labels, parsed_range = _parse_expr(expr)
        window = range_s if range_s is not None else parsed_range
        if fn != "latest" and window is None:
            raise QueryError(
                f"{fn}() needs a range: {fn}({name}[60s]) or &range=60"
            )
        lookup = f"{name}_bucket" if fn == "quantile" else name
        matched = self.select(lookup, labels)
        if not matched:
            known = ", ".join(self.series_names()) or "<none recorded yet>"
            raise QueryError(
                f"no recorded series matches {name!r}"
                + (f" with labels {labels}" if labels else "")
                + f"; recorded series: {known}"
            )
        value: Optional[float]
        if fn == "rate":
            assert window is not None
            value = self.rate(name, window, labels=labels, now=now)
        elif fn == "delta":
            assert window is not None
            value = self.delta(name, window, labels=labels, now=now)
        elif fn == "quantile":
            assert q is not None and window is not None
            value = self.quantile_over_time(
                q, name, window, labels=labels, now=now
            )
        else:
            value = self.latest(name, labels=labels)
        series = [
            {
                "labels": series_labels,
                "samples": [
                    [t, v] for t, v in ring.samples(range_s=window, now=now)
                ],
            }
            for series_labels, ring in matched
        ]
        return {
            "expr": expr,
            "fn": fn,
            "metric": name,
            "labels": labels,
            "quantile": q,
            "range_s": window,
            "value": value,
            "series": series,
        }


def _parse_selector(text: str) -> Tuple[str, Dict[str, str],
                                        Optional[float]]:
    match = _SELECTOR_RE.match(text)
    if match is None:
        raise QueryError(
            f"malformed selector {text.strip()!r} "
            "(want name, name{label=value}, or name[60s])"
        )
    range_s = match.group("range")
    return (
        match.group("name"),
        _parse_labels(match.group("labels")),
        float(range_s) if range_s is not None else None,
    )


def _parse_expr(expr: str) -> Tuple[
    str, Optional[float], str, Dict[str, str], Optional[float]
]:
    """``(fn, quantile, name, labels, range_s)`` of one expression."""
    if not expr or not expr.strip():
        raise QueryError("empty expression")
    match = _FUNC_RE.match(expr)
    if match is None:
        name, labels, range_s = _parse_selector(expr)
        return "latest", None, name, labels, range_s
    fn = match.group("fn")
    body = match.group("body").strip()
    if fn == "quantile":
        head, sep, tail = body.partition(",")
        if not sep:
            raise QueryError(
                "quantile() takes two arguments: quantile(0.99, name[60s])"
            )
        try:
            q = float(head.strip())
        except ValueError:
            raise QueryError(
                f"invalid quantile {head.strip()!r}"
            ) from None
        if not 0.0 <= q <= 1.0:
            raise QueryError(f"quantile must be in [0, 1], got {q}")
        name, labels, range_s = _parse_selector(tail)
        return fn, q, name, labels, range_s
    name, labels, range_s = _parse_selector(body)
    return fn, None, name, labels, range_s


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """Render values as a unicode sparkline (``▁▂▃▄▅▆▇█``).

    The newest ``width`` values are kept; NaNs render as spaces; a flat
    series paints the mid-level glyph so "steady" and "empty" look
    different.
    """
    glyphs = "▁▂▃▄▅▆▇█"
    tail = [float(v) for v in values][-max(1, int(width)):]
    finite = [v for v in tail if math.isfinite(v)]
    if not finite:
        return ""
    low, high = min(finite), max(finite)
    span = high - low
    out = []
    for v in tail:
        if not math.isfinite(v):
            out.append(" ")
        elif span <= 0:
            out.append(glyphs[3])
        else:
            index = int((v - low) / span * (len(glyphs) - 1))
            out.append(glyphs[index])
    return "".join(out)
