"""Declarative SLIs/SLOs with rolling windows and error-budget accounting.

The metrics registry *emits* signals; this module *judges* them.  An
:class:`SLO` declares a service-level objective — "99.9% of requests
succeed", "99% of requests finish under 250 ms" — as a pair of
cumulative event sources (``good`` and ``total``) read from the
existing counter/histogram families, a target fraction, and a budget
window.  The :class:`SLOEngine` samples those sources over time
(``tick()``), and from the sample ring derives the three quantities an
operator actually acts on:

* **compliance** — the good/total ratio over a rolling window;
* **burn rate** — how many times faster than "exactly on target" the
  error budget is being consumed over a window (burn 1.0 spends the
  whole budget in exactly the budget window; burn 14.4 spends a 30-day
  budget in ~2 days — the classic fast-page threshold);
* **error-budget remaining** — the fraction of the window's allowed
  bad events still unspent (negative when overspent).

Event sources are plain callables returning cumulative counts, so any
family combination works; the helpers below cover the common shapes:

* :func:`counter_source` — sum of one counter family across its label
  series;
* :func:`difference_source` — ``total - bad`` (for error-rate SLIs);
* :func:`histogram_count_source` / :func:`histogram_under_source` — a
  histogram's total observation count, and the cumulative count at or
  under a latency threshold (bucket-aligned), which together form a
  latency SLI.

:func:`default_slos` wires the standard set over the live serving /
streaming / resilience families — availability, p99 latency,
degraded-answer rate, shed rate, stream quarantine rate, and
checkpoint-failure rate — which is what ``repro-icn serve`` exposes at
``GET /slo`` and what the chaos scenario asserts against.

Everything takes explicit ``now`` timestamps (seconds on any monotonic
timeline), so scripted scenarios and tests drive the engine through a
synthetic clock and get bit-identical verdicts on every run.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.tsdb import SeriesRing

__all__ = [
    "SLO",
    "SLOEngine",
    "SLOSample",
    "counter_source",
    "default_slos",
    "difference_source",
    "histogram_count_source",
    "histogram_under_source",
]

#: An event source: returns a cumulative (non-decreasing) event count.
EventSource = Callable[[], float]


def counter_source(name: str,
                   registry: Optional[MetricsRegistry] = None) -> EventSource:
    """Cumulative sum of one counter family across all its label series.

    Missing families read as 0.0, so SLOs can be declared before the
    component that owns the family has started.
    """
    def read() -> float:
        reg = registry if registry is not None else get_registry()
        family = reg.get(name)
        if family is None:
            return 0.0
        return float(sum(child.value for _, child in family.series()))

    return read


def difference_source(total: EventSource, bad: EventSource) -> EventSource:
    """``good = total - bad`` for error-rate SLIs (clamped at zero)."""
    def read() -> float:
        return max(0.0, float(total()) - float(bad()))

    return read


def histogram_count_source(
    name: str, registry: Optional[MetricsRegistry] = None
) -> EventSource:
    """Total observation count of one histogram family (all series)."""
    def read() -> float:
        reg = registry if registry is not None else get_registry()
        family = reg.get(name)
        if family is None or family.kind != "histogram":
            return 0.0
        return float(sum(child.count for _, child in family.series()))

    return read


def histogram_under_source(
    name: str,
    threshold: float,
    registry: Optional[MetricsRegistry] = None,
) -> EventSource:
    """Cumulative observations at or under ``threshold`` seconds.

    The threshold is aligned to the smallest histogram bucket bound that
    is >= ``threshold`` (cumulative bucket counts only exist at bucket
    bounds); declare latency SLOs on bucket boundaries to avoid
    surprise.  Missing families read as 0.0.
    """
    threshold = float(threshold)

    def read() -> float:
        reg = registry if registry is not None else get_registry()
        family = reg.get(name)
        if family is None or family.kind != "histogram":
            return 0.0
        good = 0.0
        for _, child in family.series():
            for bound, cumulative in child.cumulative_buckets():
                if bound >= threshold:
                    good += cumulative
                    break
        return good

    return read


@dataclass(frozen=True)
class SLO:
    """One declarative service-level objective.

    Attributes:
        name: stable identifier (the ``slo`` label of every exported
            series).
        objective: target good/total fraction in (0, 1), e.g. 0.999.
        window_s: error-budget window in seconds (the period the budget
            is spread over).
        good: cumulative count of good events.
        total: cumulative count of all events.
        kind: informational category (``availability`` / ``latency`` /
            ``quality``) carried into reports.
        description: human-readable one-liner.
        exemplar_metric: histogram family whose worst exemplars explain
            violations of this SLO (e.g. the request-latency histogram)
            — alerts attach its trace ids when they fire.
    """

    name: str
    objective: float
    window_s: float
    good: EventSource
    total: EventSource
    kind: str = "availability"
    description: str = ""
    exemplar_metric: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.window_s <= 0:
            raise ValueError(
                f"window_s must be positive, got {self.window_s}"
            )


@dataclass(frozen=True)
class SLOSample:
    """One (time, good, total) reading of an SLO's event sources."""

    t: float
    good: float
    total: float


@dataclass
class _Track:
    """Sample history of one SLO (engine-internal).

    Two parallel :class:`~repro.obs.tsdb.SeriesRing` buffers — the same
    bounded-ring primitive the metrics TSDB records into — appended
    together under the engine lock, so the good/total readings at any
    index share one timestamp.
    """

    slo: SLO
    good: SeriesRing
    total: SeriesRing


class SLOEngine:
    """Samples SLO event sources and derives compliance / burn / budget.

    Call :meth:`tick` periodically (the serve HTTP layer ticks on every
    ``/metrics`` and ``/slo`` scrape; scripted scenarios tick with
    explicit synthetic timestamps).  Between two samples the engine
    interpolates nothing — window queries anchor on the latest sample at
    or before the window start (or the oldest sample available), which
    makes every derived value a pure function of the recorded samples.

    Args:
        slos: objectives to track.
        registry: registry for the exported ``repro_slo_*`` gauges
            (process-wide by default).
        clock: time source used when ``tick()``/queries get no explicit
            ``now`` (monotonic by default).
        max_samples: per-SLO ring capacity; at one scrape per 15 s the
            default holds ~3.5 days — enough for a 3-day burn window.
    """

    def __init__(
        self,
        slos: Sequence[SLO],
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        max_samples: int = 20000,
    ) -> None:
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in {names}")
        self.registry = registry if registry is not None else get_registry()
        self._clock = clock
        self._lock = threading.Lock()
        # Serializes whole ticks (clock read + source reads + appends);
        # `_lock` alone only protects individual ring operations, which
        # is not enough when concurrent scrape threads each read the
        # clock and then race to append (the loser would be out of
        # order).  Separate from `_lock` because tick() calls
        # compliance()/budget_remaining(), which take `_lock` themselves.
        self._tick_lock = threading.Lock()
        self.max_samples = int(max_samples)
        capacity = max(2, self.max_samples)
        self._tracks: Dict[str, _Track] = {
            slo.name: _Track(
                slo, good=SeriesRing(capacity), total=SeriesRing(capacity)
            )
            for slo in slos
        }
        objective_gauge = self.registry.gauge(
            "repro_slo_objective", "Declared SLO target fraction",
            labelnames=("slo",),
        )
        self._compliance_gauge = self.registry.gauge(
            "repro_slo_compliance",
            "Good-event fraction over the SLO's budget window",
            labelnames=("slo",),
        )
        self._budget_gauge = self.registry.gauge(
            "repro_slo_error_budget_remaining",
            "Unspent fraction of the SLO's error budget "
            "(negative when overspent)",
            labelnames=("slo",),
        )
        for slo in slos:
            objective_gauge.labels(slo=slo.name).set(slo.objective)

    @property
    def slos(self) -> List[SLO]:
        """The tracked objectives, in declaration order."""
        return [track.slo for track in self._tracks.values()]

    def get(self, name: str) -> SLO:
        """The SLO registered under ``name`` (KeyError when unknown)."""
        return self._tracks[name].slo

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> Dict[str, SLOSample]:
        """Read every SLO's sources once; returns the new samples.

        Also refreshes the exported compliance / budget gauges, so any
        scrape that triggers a tick sees self-consistent SLO series.

        Ticks are serialized on an engine-level lock and the implicit
        clock is read under it, so concurrent scrape-driven ticks (a
        threaded HTTP server ticks on every ``/metrics``, ``/slo``, and
        ``/healthz`` request) always append in timeline order — no
        scrape can fail another.  An implicit tick that still lands
        behind the newest sample (the clock racing an explicit-``now``
        caller) clamps to that sample's time instead of erroring.  An
        *explicit* out-of-order ``now`` is a caller bug and raises —
        before any track is touched, so a rejected tick never leaves a
        partial update behind.
        """
        with self._tick_lock:
            t = float(now) if now is not None else self._clock()
            with self._lock:
                latest = [
                    track.good.latest() for track in self._tracks.values()
                ]
                newest = max(
                    (sample[0] for sample in latest if sample is not None),
                    default=None,
                )
            if newest is not None and t < newest:
                if now is not None:
                    raise ValueError(
                        f"tick time {t} precedes last sample {newest}"
                    )
                t = newest
            fresh: Dict[str, SLOSample] = {}
            for name, track in self._tracks.items():
                sample = SLOSample(
                    t=t, good=float(track.slo.good()),
                    total=float(track.slo.total()),
                )
                with self._lock:
                    track.good.append(t, sample.good)
                    track.total.append(t, sample.total)
                fresh[name] = sample
                self._compliance_gauge.labels(slo=name).set(
                    self.compliance(name, track.slo.window_s, now=t)
                )
                self._budget_gauge.labels(slo=name).set(
                    self.budget_remaining(name, now=t)
                )
            return fresh

    def _window_delta(self, name: str, window_s: float,
                      now: Optional[float]) -> Tuple[float, float]:
        """``(good, total)`` event deltas over the trailing window."""
        track = self._tracks[name]
        t = float(now) if now is not None else self._clock()
        with self._lock:
            # SeriesRing.bounds anchors on the latest sample at or
            # before the window start (the oldest sample for short
            # histories, so early storms still burn) and ends on the
            # latest sample at or before `now`; both rings share
            # timestamps, so the two windows are aligned.
            good_anchor, good_end = track.good.bounds(
                float(window_s), now=t
            )
            total_anchor, total_end = track.total.bounds(
                float(window_s), now=t
            )
        if good_anchor is None or good_end is None:
            return 0.0, 0.0
        assert total_anchor is not None and total_end is not None
        d_good = max(0.0, good_end[1] - good_anchor[1])
        d_total = max(0.0, total_end[1] - total_anchor[1])
        return d_good, d_total

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    def compliance(self, name: str, window_s: Optional[float] = None,
                   now: Optional[float] = None) -> float:
        """Good fraction over the trailing window (1.0 with no events)."""
        slo = self._tracks[name].slo
        d_good, d_total = self._window_delta(
            name, window_s if window_s is not None else slo.window_s, now
        )
        if d_total <= 0:
            return 1.0
        return min(1.0, d_good / d_total)

    def burn_rate(self, name: str, window_s: float,
                  now: Optional[float] = None) -> float:
        """Budget consumption speed over the window, in budgets-per-window.

        1.0 means "errors arriving exactly at the rate the objective
        allows"; N means the budget is being spent N times too fast.
        """
        slo = self._tracks[name].slo
        error_fraction = 1.0 - self.compliance(name, window_s, now)
        allowed = 1.0 - slo.objective
        if allowed <= 0:
            return math.inf if error_fraction > 0 else 0.0
        return error_fraction / allowed

    def budget_remaining(self, name: str,
                         now: Optional[float] = None) -> float:
        """Unspent error-budget fraction over the SLO's own window.

        1.0 with no bad events, 0.0 exactly at the objective, negative
        when overspent.  With no traffic in the window the budget is
        untouched (1.0).
        """
        slo = self._tracks[name].slo
        d_good, d_total = self._window_delta(name, slo.window_s, now)
        if d_total <= 0:
            return 1.0
        bad = d_total - d_good
        allowed = (1.0 - slo.objective) * d_total
        if allowed <= 0:
            return 1.0 if bad <= 0 else -math.inf
        return 1.0 - bad / allowed

    def n_samples(self, name: str) -> int:
        """Recorded samples for one SLO."""
        with self._lock:
            return len(self._tracks[name].good)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self, now: Optional[float] = None,
               burn_windows: Sequence[float] = ()) -> Dict[str, object]:
        """JSON-serializable budget report (the ``GET /slo`` body)."""
        t = float(now) if now is not None else self._clock()
        slos = []
        for name, track in self._tracks.items():
            slo = track.slo
            entry: Dict[str, object] = {
                "name": name,
                "kind": slo.kind,
                "description": slo.description,
                "objective": slo.objective,
                "window_s": slo.window_s,
                "compliance": self.compliance(name, slo.window_s, now=t),
                "error_budget_remaining": self.budget_remaining(name, now=t),
                "n_samples": self.n_samples(name),
            }
            if burn_windows:
                entry["burn_rates"] = {
                    f"{int(w)}s": self.burn_rate(name, w, now=t)
                    for w in burn_windows
                }
            slos.append(entry)
        return {"slos": slos}


def default_slos(
    registry: Optional[MetricsRegistry] = None,
    latency_threshold_s: float = 0.25,
    window_s: float = 3600.0,
) -> List[SLO]:
    """The standard objective set over the live metric families.

    Covers the serving path (availability, p99-style latency, degraded
    answers, shed rate), the streaming path (quarantine rate), and the
    checkpoint path (corruption rate).  ``window_s`` defaults to one
    hour — long enough to smooth scrape noise, short enough that a
    replay scenario exercises a full budget cycle.
    """
    reg = registry if registry is not None else get_registry()
    requests = counter_source("repro_serve_requests_total", reg)
    errors = counter_source("repro_serve_errors_total", reg)
    shed = counter_source("repro_serve_shed_requests_total", reg)
    degraded = counter_source("repro_degraded_answers_total", reg)
    quarantined = counter_source("repro_quarantined_batches_total", reg)
    folded = counter_source("repro_stream_batches_folded_total", reg)
    ckpt_loads = counter_source("repro_checkpoint_loads_total", reg)
    ckpt_corrupt = counter_source("repro_checkpoint_corruptions_total", reg)

    def _sum(a: EventSource, b: EventSource) -> EventSource:
        return lambda: float(a()) + float(b())

    latency_total = histogram_count_source(
        "repro_serve_request_latency_seconds", reg
    )
    latency_good = histogram_under_source(
        "repro_serve_request_latency_seconds", latency_threshold_s, reg
    )
    return [
        SLO(
            name="serve-availability",
            objective=0.999,
            window_s=window_s,
            good=difference_source(requests, errors),
            total=requests,
            kind="availability",
            description="Requests answered without server-side error",
            exemplar_metric="repro_serve_request_latency_seconds",
        ),
        SLO(
            name="serve-latency",
            objective=0.99,
            window_s=window_s,
            good=latency_good,
            total=latency_total,
            kind="latency",
            description=(
                f"Requests finishing within {latency_threshold_s * 1e3:.0f} ms"
            ),
            exemplar_metric="repro_serve_request_latency_seconds",
        ),
        SLO(
            name="serve-degraded",
            objective=0.95,
            window_s=window_s,
            good=difference_source(requests, degraded),
            total=requests,
            kind="quality",
            description="Requests answered at full fidelity (not the "
                        "nearest-centroid fallback)",
            exemplar_metric="repro_serve_request_latency_seconds",
        ),
        SLO(
            name="serve-shed",
            objective=0.99,
            window_s=window_s,
            good=_sum(requests, lambda: 0.0),
            total=_sum(requests, shed),
            kind="availability",
            description="Requests admitted past load shedding",
        ),
        SLO(
            name="stream-quarantine",
            objective=0.99,
            window_s=window_s,
            good=folded,
            total=_sum(folded, quarantined),
            kind="quality",
            description="Ingested batches folded (not quarantined)",
        ),
        SLO(
            name="checkpoint-integrity",
            objective=0.95,
            window_s=window_s,
            # Per load *attempt*, not per save: corruptions increment on
            # every failed load, so a retry loop hammering one corrupt
            # file would otherwise push corruptions past saves and clamp
            # compliance to 0% off a single bad checkpoint.  Each retry
            # now adds one attempt and one corruption, so the ratio
            # stays an honest failure rate.
            good=difference_source(ckpt_loads, ckpt_corrupt),
            total=ckpt_loads,
            kind="quality",
            description="Checkpoint load attempts that validate without "
                        "corruption",
        ),
    ]
