"""Process-wide metrics registry: counters, gauges, histograms, exposition.

A zero-dependency miniature of the Prometheus client-library data model.
A :class:`MetricsRegistry` owns named metric *families*; a family owns
one child time-series per label-value combination (an unlabeled family
owns exactly one child).  Families are get-or-create: asking twice for
``registry.counter("requests_total")`` returns the same object, which is
what lets independently constructed components (the stream profiler, the
serving facade, the pipeline stages) share one exposition surface
without passing handles around.

Exposition comes in two shapes:

* :meth:`MetricsRegistry.prometheus_text` — the Prometheus text format
  (``# HELP`` / ``# TYPE`` headers, cumulative histogram buckets with an
  ``+Inf`` bound, escaped label values), scrapeable by any Prometheus-
  compatible collector via the serve endpoint's ``GET /metrics``;
* :meth:`MetricsRegistry.to_dict` — a JSON-serializable snapshot for
  dashboards, tests, and the ``repro-icn obs dump`` CLI.

Histograms additionally retain **exemplars**: ``observe(value,
exemplar=trace_id)`` keeps the trace id of the latest observation per
bucket, so a latency spike visible in the exposition links straight to a
replayable trace in the :class:`~repro.obs.trace.TraceStore` (rendered
in the OpenMetrics ``# {trace_id="..."} value`` suffix of bucket lines
and as an ``exemplars`` list in the JSON snapshot).

Every mutation takes the owning family's lock, so the registry is safe
under the serving layer's worker/handler thread mix.
"""

from __future__ import annotations

import math
import re
import threading
import time
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Exemplar",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

#: Default histogram bucket upper bounds (seconds-flavoured, like
#: Prometheus' defaults), spanning sub-millisecond to ten seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Child:
    """One concrete time-series (a family member with fixed label values)."""

    __slots__ = ("_lock",)

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock


class Counter(_Child):
    """Monotonically increasing value."""

    __slots__ = ("_value",)

    def __init__(self, lock: threading.Lock) -> None:
        super().__init__(lock)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters can only increase, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current cumulative value."""
        with self._lock:
            return self._value


class Gauge(_Child):
    """Value that can go up, down, or be computed at scrape time."""

    __slots__ = ("_value", "_fn")

    def __init__(self, lock: threading.Lock) -> None:
        super().__init__(lock)
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        """Pin the gauge to ``value``."""
        with self._lock:
            self._value = float(value)
            self._fn = None

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount
            self._fn = None

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Compute the gauge by calling ``fn`` at every scrape."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        """Current value (calls the scrape function if one is set)."""
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        return float(fn())


class Exemplar(NamedTuple):
    """One retained worst-case observation with its trace correlation.

    Attributes:
        value: the observed value (e.g. request latency in seconds).
        trace_id: trace id active when the observation was made — the
            join key into the :class:`~repro.obs.trace.TraceStore`.
        bucket_le: upper bound of the histogram bucket the observation
            fell into (``math.inf`` for the overflow bucket).
        ts: ``time.monotonic()`` at observation time — exemplar slots
            keep the latest observation per bucket indefinitely, so
            consumers that need *recent* worst cases (alert exemplar
            capture) filter on this instead of trusting slot contents.
    """

    value: float
    trace_id: str
    bucket_le: float
    ts: float = 0.0


class Histogram(_Child):
    """Bucketed distribution with sum, count, and per-bucket exemplars.

    Passing ``exemplar=<trace_id>`` to :meth:`observe` retains that
    trace id in the slot of the bucket the value fell into (latest
    observation wins per bucket).  Because high-latency observations
    land in high buckets, the retained exemplars of the top non-empty
    buckets *are* the recent worst-case observations —
    :meth:`worst_exemplars` walks them bound-descending so a p99 spike
    on a dashboard points at a replayable trace.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_exemplars")

    def __init__(self, lock: threading.Lock,
                 buckets: Sequence[float]) -> None:
        super().__init__(lock)
        self.buckets = tuple(buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0
        self._exemplars: List[Optional[Exemplar]] = (
            [None] * (len(self.buckets) + 1)
        )

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        """Fold one observation into the distribution.

        Args:
            value: the observed value.
            exemplar: optional trace id to retain for this observation's
                bucket (the hot-path cost when None is a single branch).
        """
        value = float(value)
        slot = len(self.buckets)
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                slot = index
                break
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1
            if exemplar is not None:
                bound = (
                    self.buckets[slot] if slot < len(self.buckets)
                    else math.inf
                )
                self._exemplars[slot] = Exemplar(
                    value, str(exemplar), bound, time.monotonic()
                )

    def exemplars(self) -> List[Exemplar]:
        """Retained exemplars in bucket order (empty slots skipped)."""
        with self._lock:
            return [e for e in self._exemplars if e is not None]

    def worst_exemplars(self, k: int = 1) -> List[Exemplar]:
        """Up to ``k`` retained exemplars, highest bucket first.

        The first entry is the most recent observation in the worst
        non-empty bucket — the trace to open when a latency quantile
        spikes.
        """
        with self._lock:
            worst = [e for e in reversed(self._exemplars) if e is not None]
        return worst[:max(0, int(k))]

    @property
    def count(self) -> int:
        """Total observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def snapshot(self) -> Tuple[List[int], float, int]:
        """Consistent ``(per-bucket counts, sum, count)`` triple."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at ``+Inf``."""
        counts, _, _ = self.snapshot()
        bounds = list(self.buckets) + [math.inf]
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(bounds, counts):
            running += count
            cumulative.append((bound, running))
        return cumulative


class _Family:
    """A named metric with a fixed type, help string, and label schema."""

    def __init__(self, name: str, help_text: str, kind: str,
                 labelnames: Sequence[str],
                 buckets: Optional[Sequence[float]] = None) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help_text = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], _Child] = {}

    def _make_child(self) -> _Child:
        if self.kind == "counter":
            return Counter(self._lock)
        if self.kind == "gauge":
            return Gauge(self._lock)
        assert self.buckets is not None
        return Histogram(self._lock, self.buckets)

    def labels(self, *values, **kwargs):
        """The child series for one label-value combination (created lazily)."""
        if values and kwargs:
            raise ValueError("pass label values positionally or by name, not both")
        if kwargs:
            try:
                values = tuple(str(kwargs[name]) for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(
                    f"metric {self.name!r} is missing label {exc.args[0]!r}"
                ) from None
            if len(kwargs) != len(self.labelnames):
                extra = set(kwargs) - set(self.labelnames)
                raise ValueError(
                    f"metric {self.name!r} got unexpected labels {sorted(extra)}"
                )
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {len(values)} values"
            )
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._make_child()
                self._children[values] = child
            return child

    def _default_child(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} is labeled {self.labelnames}; "
                f"call .labels(...) first"
            )
        return self.labels()

    # Unlabeled convenience: family.inc() / .set() / .observe() delegate
    # to the single implicit child.

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._default_child().set_function(fn)

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        self._default_child().observe(value, exemplar=exemplar)

    def exemplars(self) -> List["Exemplar"]:
        return self._default_child().exemplars()

    def worst_exemplars(self, k: int = 1) -> List["Exemplar"]:
        return self._default_child().worst_exemplars(k)

    @property
    def value(self) -> float:
        return self._default_child().value

    @property
    def count(self) -> int:
        return self._default_child().count

    @property
    def sum(self) -> float:
        return self._default_child().sum

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        return self._default_child().cumulative_buckets()

    def series(self) -> List[Tuple[Tuple[str, ...], _Child]]:
        """All ``(label_values, child)`` pairs, label-sorted for stable output."""
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """Thread-safe collection of metric families with exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # Family constructors (get-or-create)
    # ------------------------------------------------------------------

    def _family(self, name: str, help_text: str, kind: str,
                labelnames: Sequence[str],
                buckets: Optional[Sequence[float]] = None) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, help_text, kind, labelnames, buckets)
                self._families[name] = family
                return family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"requested {kind}"
            )
        if family.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{family.labelnames}, requested {tuple(labelnames)}"
            )
        return family

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> _Family:
        """Get or create a counter family."""
        return self._family(name, help_text, "counter", labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> _Family:
        """Get or create a gauge family."""
        return self._family(name, help_text, "gauge", labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> _Family:
        """Get or create a histogram family with the given bucket bounds."""
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        family = self._family(name, help_text, "histogram", labelnames,
                              buckets=bounds)
        if family.buckets != bounds:
            raise ValueError(
                f"metric {name!r} already registered with buckets "
                f"{family.buckets}"
            )
        return family

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def families(self) -> List[_Family]:
        """All registered families in name order."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[_Family]:
        """The family registered under ``name``, or None."""
        with self._lock:
            return self._families.get(name)

    def unregister(self, name: str) -> None:
        """Drop one family (missing names are ignored)."""
        with self._lock:
            self._families.pop(name, None)

    def reset(self) -> None:
        """Drop every family (test isolation helper)."""
        with self._lock:
            self._families.clear()

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------

    def prometheus_text(self) -> str:
        """Render every family in the Prometheus text exposition format."""
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help_text}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for label_values, child in family.series():
                base = _label_string(family.labelnames, label_values)
                if family.kind == "histogram":
                    assert isinstance(child, Histogram)
                    _, total, count = child.snapshot()
                    by_bound = {e.bucket_le: e for e in child.exemplars()}
                    for bound, cumulative in child.cumulative_buckets():
                        le = _label_string(
                            family.labelnames + ("le",),
                            label_values + (_format_value(bound),),
                        )
                        line = f"{family.name}_bucket{le} {cumulative}"
                        hit = by_bound.get(bound)
                        if hit is not None:
                            # OpenMetrics exemplar syntax; scrapers that
                            # speak only the classic text format should
                            # strip everything after " # ".
                            line += (
                                f' # {{trace_id="{hit.trace_id}"}}'
                                f" {_format_value(hit.value)}"
                            )
                        lines.append(line)
                    lines.append(
                        f"{family.name}_sum{base} {_format_value(total)}"
                    )
                    lines.append(f"{family.name}_count{base} {count}")
                else:
                    lines.append(
                        f"{family.name}{base} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot of every family."""
        out: Dict[str, object] = {}
        for family in self.families():
            entry: Dict[str, object] = {
                "type": family.kind,
                "help": family.help_text,
            }
            series = []
            for label_values, child in family.series():
                labels = dict(zip(family.labelnames, label_values))
                if family.kind == "histogram":
                    assert isinstance(child, Histogram)
                    counts, total, count = child.snapshot()
                    series.append({
                        "labels": labels,
                        "buckets": {
                            _format_value(bound): cumulative
                            for bound, cumulative
                            in child.cumulative_buckets()
                        },
                        "sum": total,
                        "count": count,
                        "exemplars": [
                            {
                                "bucket": _format_value(e.bucket_le),
                                "value": e.value,
                                "trace_id": e.trace_id,
                            }
                            for e in child.exemplars()
                        ],
                    })
                else:
                    series.append({"labels": labels, "value": child.value})
            entry["series"] = series
            out[family.name] = entry
        return out


def _label_string(names: Iterable[str], values: Iterable[str]) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    return "{" + ",".join(pairs) + "}" if pairs else ""


#: The process-wide default registry shared by all instrumented layers.
_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous
