"""Hierarchical tracing spans with a ring-buffer store and Chrome export.

The tracing layer answers "where did the time go" for one run of any
execution mode — batch pipeline, stream ingestion, or query serving —
without external dependencies.  ``with span("cluster.fit"):`` opens a
timed span; spans opened inside it become children (a per-thread stack
tracks the active span), a span whose body raises still closes and is
recorded with ``error=true``, and finished spans land in a bounded
:class:`TraceStore` ring buffer so a long-running server never grows
its trace memory unboundedly.

Tracing is **off by default** and the disabled fast path is a couple of
attribute loads, so instrumentation can stay in hot paths permanently
(see ``benchmarks/test_perf_obs.py`` for the overhead bound).  Turn it
on with :func:`enable_tracing`, then export with
:meth:`TraceStore.export_chrome` — the output is Chrome
``trace_event`` JSON that loads directly into ``chrome://tracing`` /
Perfetto for flamegraph viewing.

Correlation: :func:`current_trace_id` / :func:`current_span_id` expose
the active ids so structured log lines (:mod:`repro.obs.logs`) and HTTP
error bodies can be joined back to their trace.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "DEFAULT_TRACE_CAPACITY",
    "SpanRecord",
    "TraceStore",
    "current_span",
    "current_span_id",
    "current_trace_id",
    "disable_tracing",
    "enable_tracing",
    "get_trace_store",
    "span",
    "tracing_enabled",
]

#: Default ring-buffer capacity (finished spans retained).
DEFAULT_TRACE_CAPACITY = 8192

# Monotonic id source; next() on itertools.count is atomic under the GIL.
_ids = itertools.count(1)


def _new_id() -> str:
    return f"{next(_ids):012x}"


@dataclass
class SpanRecord:
    """One finished (or still-open) span.

    Attributes:
        name: the stage name, e.g. ``"pipeline.cluster"``.
        trace_id: id shared by every span of one root-to-leaf tree.
        span_id: this span's unique id.
        parent_id: enclosing span's id (None for roots).
        thread_id: OS thread ident the span ran on.
        start_s: start offset in seconds on the store's monotonic clock.
        duration_s: wall-clock seconds (0.0 while still open).
        attributes: user attributes; ``error``/``error_type`` are set
            automatically when the span body raises.
        error: True when the span closed by exception.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    thread_id: int
    start_s: float
    duration_s: float = 0.0
    attributes: Dict[str, object] = field(default_factory=dict)
    error: bool = False

    def to_chrome_event(self) -> Dict[str, object]:
        """This span as one Chrome ``trace_event`` complete ("X") event."""
        args = dict(self.attributes)
        args["trace_id"] = self.trace_id
        args["span_id"] = self.span_id
        if self.parent_id is not None:
            args["parent_id"] = self.parent_id
        return {
            "name": self.name,
            "cat": "repro" + (",error" if self.error else ""),
            "ph": "X",
            "ts": self.start_s * 1e6,
            "dur": self.duration_s * 1e6,
            "pid": os.getpid(),
            "tid": self.thread_id,
            "args": args,
        }


class TraceStore:
    """Bounded ring buffer of finished spans."""

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._spans: deque = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()

    def now(self) -> float:
        """Seconds since this store's epoch (the trace timeline)."""
        return time.perf_counter() - self._epoch

    def add(self, record: SpanRecord) -> None:
        """Append one finished span (oldest spans fall off at capacity)."""
        with self._lock:
            self._spans.append(record)

    def spans(self) -> List[SpanRecord]:
        """Retained spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Drop every retained span."""
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_chrome(self) -> Dict[str, object]:
        """The retained spans as a Chrome ``trace_event`` JSON object."""
        return {
            "traceEvents": [s.to_chrome_event() for s in self.spans()],
            "displayTimeUnit": "ms",
        }

    def export_chrome(self, path) -> int:
        """Write Chrome trace JSON to ``path``; returns the span count."""
        trace = self.to_chrome()
        with open(path, "w") as handle:
            json.dump(trace, handle, indent=2, default=str)
            handle.write("\n")
        return len(trace["traceEvents"])


class _TraceState:
    """Module-global tracing switches (one per process)."""

    __slots__ = ("enabled", "store")

    def __init__(self) -> None:
        self.enabled = False
        self.store = TraceStore()


_state = _TraceState()
_local = threading.local()


def _stack() -> List[SpanRecord]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def enable_tracing(capacity: Optional[int] = None,
                   clear: bool = False) -> TraceStore:
    """Turn span recording on; returns the active :class:`TraceStore`.

    Args:
        capacity: replace the store with a fresh one of this capacity.
        clear: drop previously retained spans (implied by ``capacity``).
    """
    if capacity is not None:
        _state.store = TraceStore(capacity)
    elif clear:
        _state.store.clear()
    _state.enabled = True
    return _state.store


def disable_tracing() -> None:
    """Turn span recording off (retained spans stay exportable)."""
    _state.enabled = False


def tracing_enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _state.enabled


def get_trace_store() -> TraceStore:
    """The active span ring buffer."""
    return _state.store


def current_span() -> Optional[SpanRecord]:
    """The innermost open span on this thread, or None."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


def current_trace_id() -> Optional[str]:
    """Trace id of the active span tree on this thread, or None."""
    active = current_span()
    return active.trace_id if active is not None else None


def current_span_id() -> Optional[str]:
    """Span id of the innermost open span on this thread, or None."""
    active = current_span()
    return active.span_id if active is not None else None


class span:
    """Context manager timing one named stage as a hierarchical span.

    ``with span("pipeline.rca", rows=n):`` records a
    :class:`SpanRecord` into the active store when tracing is enabled
    (and is a near-free no-op otherwise).  Nesting is automatic: spans
    opened inside the body become children.  If the body raises, the
    span still closes, gains ``error=true`` plus an ``error_type``
    attribute, and the exception propagates unchanged.

    Implemented as a plain class rather than ``@contextmanager`` so the
    disabled path costs no generator frame.
    """

    __slots__ = ("name", "attributes", "record")

    def __init__(self, name: str, **attributes) -> None:
        self.name = name
        self.attributes = attributes
        self.record: Optional[SpanRecord] = None

    def __enter__(self) -> Optional[SpanRecord]:
        if not _state.enabled:
            return None
        stack = _stack()
        parent = stack[-1] if stack else None
        record = SpanRecord(
            name=self.name,
            trace_id=parent.trace_id if parent else _new_id(),
            span_id=_new_id(),
            parent_id=parent.span_id if parent else None,
            thread_id=threading.get_ident(),
            start_s=_state.store.now(),
            attributes=dict(self.attributes),
        )
        stack.append(record)
        self.record = record
        return record

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self.record
        if record is None:
            return False
        stack = _stack()
        # The record may not be stack-top if the body leaked spans across
        # threads; remove defensively rather than corrupting siblings.
        if stack and stack[-1] is record:
            stack.pop()
        elif record in stack:
            stack.remove(record)
        record.duration_s = _state.store.now() - record.start_s
        if exc_type is not None:
            record.error = True
            record.attributes["error"] = True
            record.attributes["error_type"] = exc_type.__name__
        _state.store.add(record)
        return False
