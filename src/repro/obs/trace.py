"""Hierarchical tracing spans with a ring-buffer store and Chrome export.

The tracing layer answers "where did the time go" for one run of any
execution mode — batch pipeline, stream ingestion, or query serving —
without external dependencies.  ``with span("cluster.fit"):`` opens a
timed span; spans opened inside it become children (a per-thread stack
tracks the active span), a span whose body raises still closes and is
recorded with ``error=true``, and finished spans land in a bounded
:class:`TraceStore` ring buffer so a long-running server never grows
its trace memory unboundedly.

Tracing is **off by default** and the disabled fast path is a couple of
attribute loads, so instrumentation can stay in hot paths permanently
(see ``benchmarks/test_perf_obs.py`` for the overhead bound).  Turn it
on with :func:`enable_tracing`, then export with
:meth:`TraceStore.export_chrome` — the output is Chrome
``trace_event`` JSON that loads directly into ``chrome://tracing`` /
Perfetto for flamegraph viewing.

Correlation: :func:`current_trace_id` / :func:`current_span_id` expose
the active ids so structured log lines (:mod:`repro.obs.logs`) and HTTP
error bodies can be joined back to their trace.

Propagation: a trace no longer ends at a process or socket boundary.
:func:`current_context` captures the active span as a serializable
:class:`TraceContext`; :func:`inject` writes it into a headers mapping
as a W3C ``traceparent`` value and :func:`extract` reads it back on the
far side, where ``span(..., parent=ctx)`` parents the local span tree
onto the caller's trace.  Spans recorded in a child process travel back
via :meth:`TraceStore.export_spans` / :meth:`TraceStore.merge`, so one
Chrome/Perfetto export shows the request crossing every boundary with
parent links intact.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, MutableMapping, Optional, Union

__all__ = [
    "DEFAULT_TRACE_CAPACITY",
    "SpanRecord",
    "TraceContext",
    "TraceStore",
    "current_context",
    "current_span",
    "current_span_id",
    "current_trace_id",
    "disable_tracing",
    "enable_tracing",
    "extract",
    "get_trace_store",
    "inject",
    "span",
    "tracing_enabled",
]

#: Default ring-buffer capacity (finished spans retained).
DEFAULT_TRACE_CAPACITY = 8192

# Monotonic id source; next() on itertools.count is atomic under the GIL.
_ids = itertools.count(1)


def _new_id() -> str:
    return f"{next(_ids):012x}"


#: Native id width — ids are lowercase hex, at least this many chars.
_ID_WIDTH = 12

#: ``traceparent`` header grammar (W3C Trace Context, version 00).
_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)

#: Canonical header name (HTTP header lookup is case-insensitive).
TRACEPARENT_HEADER = "traceparent"


def _canonical_id(hex_id: str) -> str:
    """Strip zero-padding back to the native width (>= ``_ID_WIDTH``).

    :meth:`TraceContext.to_traceparent` left-pads ids with zeros to the
    W3C field widths; canonicalizing on extraction makes the round trip
    exact, so a server-side span carries byte-identical ids to the
    client span that caused it.  Foreign ids wider than the native
    width are kept verbatim.
    """
    stripped = hex_id.lstrip("0") or "0"
    return stripped.rjust(_ID_WIDTH, "0")


@dataclass(frozen=True)
class TraceContext:
    """A serializable reference to one span, for crossing boundaries.

    Attributes:
        trace_id: the trace the span belongs to (lowercase hex).
        span_id: the span itself (lowercase hex) — the parent of
            whatever the receiving side opens with ``span(parent=...)``.
        sampled: W3C sampled flag; carried through verbatim.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def __post_init__(self) -> None:
        for name, value in (("trace_id", self.trace_id),
                            ("span_id", self.span_id)):
            if not value or not re.fullmatch(r"[0-9a-f]+", value):
                raise ValueError(
                    f"{name} must be non-empty lowercase hex, got {value!r}"
                )

    def to_traceparent(self) -> str:
        """This context as a W3C ``traceparent`` header value.

        Ids are left-padded with zeros to the mandated widths (32 hex
        chars for the trace id, 16 for the span id); ids wider than a
        field keep their low-order chars.
        """
        trace = self.trace_id.rjust(32, "0")[-32:]
        parent = self.span_id.rjust(16, "0")[-16:]
        flags = "01" if self.sampled else "00"
        return f"00-{trace}-{parent}-{flags}"

    @classmethod
    def from_traceparent(cls, header: str) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` value; None when malformed.

        Per the W3C spec: version ``ff`` and all-zero trace or span ids
        are invalid.  Unknown (forward-compatible) versions are accepted
        as long as the version-00 prefix shape parses.
        """
        match = _TRACEPARENT_RE.match(header.strip().lower())
        if match is None:
            return None
        version, trace, parent, flags = match.groups()
        if version == "ff":
            return None
        if set(trace) == {"0"} or set(parent) == {"0"}:
            return None
        return cls(
            trace_id=_canonical_id(trace),
            span_id=_canonical_id(parent),
            sampled=bool(int(flags, 16) & 0x01),
        )


def current_context() -> Optional["TraceContext"]:
    """The innermost open span on this thread as a :class:`TraceContext`."""
    active = current_span()
    if active is None:
        return None
    return TraceContext(trace_id=active.trace_id, span_id=active.span_id)


def inject(
    headers: MutableMapping[str, str],
    context: Optional[TraceContext] = None,
) -> MutableMapping[str, str]:
    """Write ``context`` (or the active span's) into a headers mapping.

    A no-op when there is no context to propagate — callers can inject
    unconditionally and pay nothing while tracing is off.  Returns the
    mapping for chaining.
    """
    ctx = context if context is not None else current_context()
    if ctx is not None:
        headers[TRACEPARENT_HEADER] = ctx.to_traceparent()
    return headers


def extract(headers: Mapping[str, str]) -> Optional[TraceContext]:
    """Read a :class:`TraceContext` from a headers mapping, or None.

    Header-name lookup is case-insensitive (HTTP headers arrive in
    arbitrary casing); malformed values are ignored rather than raised,
    because a propagation bug in a caller must never fail the request.
    """
    value = headers.get(TRACEPARENT_HEADER)
    if value is None:
        for name in headers:
            if name.lower() == TRACEPARENT_HEADER:
                value = headers[name]
                break
    if value is None:
        return None
    return TraceContext.from_traceparent(value)


@dataclass
class SpanRecord:
    """One finished (or still-open) span.

    Attributes:
        name: the stage name, e.g. ``"pipeline.cluster"``.
        trace_id: id shared by every span of one root-to-leaf tree.
        span_id: this span's unique id.
        parent_id: enclosing span's id (None for roots).
        thread_id: OS thread ident the span ran on.
        start_s: start offset in seconds on the store's monotonic clock.
        duration_s: wall-clock seconds (0.0 while still open).
        attributes: user attributes; ``error``/``error_type`` are set
            automatically when the span body raises.
        error: True when the span closed by exception.
        pid: OS process id the span ran in — preserved through
            :meth:`to_dict` / :meth:`from_dict` so spans merged from a
            child process keep their own Chrome/Perfetto process lane.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    thread_id: int
    start_s: float
    duration_s: float = 0.0
    attributes: Dict[str, object] = field(default_factory=dict)
    error: bool = False
    pid: int = field(default_factory=os.getpid)

    def to_chrome_event(self) -> Dict[str, object]:
        """This span as one Chrome ``trace_event`` complete ("X") event.

        Every event's ``args`` carries ``trace_id`` / ``span_id`` (and
        ``parent_id`` for non-roots), so an exported trace file is
        greppable by the ids that appear in logs, alert payloads, and
        histogram exemplars.
        """
        args = dict(self.attributes)
        args["trace_id"] = self.trace_id
        args["span_id"] = self.span_id
        if self.parent_id is not None:
            args["parent_id"] = self.parent_id
        return {
            "name": self.name,
            "cat": "repro" + (",error" if self.error else ""),
            "ph": "X",
            "ts": self.start_s * 1e6,
            "dur": self.duration_s * 1e6,
            "pid": self.pid,
            "tid": self.thread_id,
            "args": args,
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the cross-process wire format)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "error": self.error,
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SpanRecord":
        """Rebuild a span from :meth:`to_dict` output.

        Raises:
            ValueError: when a required field is missing or mistyped.
        """
        try:
            attributes = payload.get("attributes") or {}
            if not isinstance(attributes, dict):
                raise TypeError("attributes must be a mapping")
            parent = payload.get("parent_id")
            return cls(
                name=str(payload["name"]),
                trace_id=str(payload["trace_id"]),
                span_id=str(payload["span_id"]),
                parent_id=None if parent is None else str(parent),
                thread_id=int(payload.get("thread_id", 0)),  # type: ignore[arg-type]
                start_s=float(payload.get("start_s", 0.0)),  # type: ignore[arg-type]
                duration_s=float(payload.get("duration_s", 0.0)),  # type: ignore[arg-type]
                attributes=dict(attributes),
                error=bool(payload.get("error", False)),
                pid=int(payload.get("pid", 0)),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"not a serialized span: {exc}") from None


class TraceStore:
    """Bounded ring buffer of finished spans."""

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._spans: deque = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()

    def now(self) -> float:
        """Seconds since this store's epoch (the trace timeline)."""
        return time.perf_counter() - self._epoch

    def add(self, record: SpanRecord) -> None:
        """Append one finished span (oldest spans fall off at capacity)."""
        with self._lock:
            self._spans.append(record)

    def spans(self) -> List[SpanRecord]:
        """Retained spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Drop every retained span."""
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_chrome(self) -> Dict[str, object]:
        """The retained spans as a Chrome ``trace_event`` JSON object."""
        return {
            "traceEvents": [s.to_chrome_event() for s in self.spans()],
            "displayTimeUnit": "ms",
        }

    def export_chrome(self, path: Union[str, "os.PathLike[str]"]) -> int:
        """Write Chrome trace JSON to ``path``; returns the span count."""
        trace = self.to_chrome()
        events = trace["traceEvents"]
        assert isinstance(events, list)
        with open(path, "w") as handle:
            json.dump(trace, handle, indent=2, default=str)
            handle.write("\n")
        return len(events)

    # ------------------------------------------------------------------
    # Cross-process assembly
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """Retained spans as a JSON-serializable transfer payload."""
        return {"spans": [record.to_dict() for record in self.spans()]}

    def export_spans(self, path: Union[str, "os.PathLike[str]"]) -> int:
        """Write the transfer payload to ``path``; returns the span count.

        The complement of :meth:`merge_file`: a child process (a future
        shared-memory serve worker, a subprocess in a test) exports its
        spans on exit and the parent folds them into its own store, so
        one Chrome export covers the whole process tree.
        """
        payload = self.to_payload()
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        spans = payload["spans"]
        assert isinstance(spans, list)
        return len(spans)

    def merge(
        self,
        spans: Union[Mapping[str, object], Iterable[Mapping[str, object]],
                     Iterable[SpanRecord]],
    ) -> int:
        """Fold spans exported elsewhere into this store; returns count added.

        Accepts a :meth:`to_payload` mapping, an iterable of serialized
        span dicts, or :class:`SpanRecord` objects directly.  Spans
        whose ``span_id`` is already retained are skipped, so merging
        the same child export twice is idempotent.  Merged spans keep
        their ids verbatim — parent links that cross the process
        boundary (a child span parented on this process's trace via
        ``span(parent=...)``) stay intact in the Chrome export.
        """
        if isinstance(spans, Mapping):
            listed = spans.get("spans", [])
            if not isinstance(listed, list):
                raise ValueError("payload 'spans' must be a list")
            entries: List[object] = list(listed)
        else:
            entries = list(spans)
        with self._lock:
            known = {record.span_id for record in self._spans}
        added = 0
        for entry in entries:
            record = (
                entry if isinstance(entry, SpanRecord)
                else SpanRecord.from_dict(entry)  # type: ignore[arg-type]
            )
            if record.span_id in known:
                continue
            known.add(record.span_id)
            self.add(record)
            added += 1
        return added

    def merge_file(self, path: Union[str, "os.PathLike[str]"]) -> int:
        """Merge a :meth:`export_spans` file; returns spans added."""
        with open(path) as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: not a span export payload")
        return self.merge(payload)


class _TraceState:
    """Module-global tracing switches (one per process)."""

    __slots__ = ("enabled", "store")

    def __init__(self) -> None:
        self.enabled = False
        self.store = TraceStore()


_state = _TraceState()
_local = threading.local()


def _stack() -> List[SpanRecord]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def enable_tracing(capacity: Optional[int] = None,
                   clear: bool = False) -> TraceStore:
    """Turn span recording on; returns the active :class:`TraceStore`.

    Args:
        capacity: replace the store with a fresh one of this capacity.
        clear: drop previously retained spans (implied by ``capacity``).
    """
    if capacity is not None:
        _state.store = TraceStore(capacity)
    elif clear:
        _state.store.clear()
    _state.enabled = True
    return _state.store


def disable_tracing() -> None:
    """Turn span recording off (retained spans stay exportable)."""
    _state.enabled = False


def tracing_enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _state.enabled


def get_trace_store() -> TraceStore:
    """The active span ring buffer."""
    return _state.store


def current_span() -> Optional[SpanRecord]:
    """The innermost open span on this thread, or None."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


def current_trace_id() -> Optional[str]:
    """Trace id of the active span tree on this thread, or None."""
    active = current_span()
    return active.trace_id if active is not None else None


def current_span_id() -> Optional[str]:
    """Span id of the innermost open span on this thread, or None."""
    active = current_span()
    return active.span_id if active is not None else None


class span:
    """Context manager timing one named stage as a hierarchical span.

    ``with span("pipeline.rca", rows=n):`` records a
    :class:`SpanRecord` into the active store when tracing is enabled
    (and is a near-free no-op otherwise).  Nesting is automatic: spans
    opened inside the body become children.  If the body raises, the
    span still closes, gains ``error=true`` plus an ``error_type``
    attribute, and the exception propagates unchanged.

    ``parent`` accepts an explicit :class:`TraceContext` — extracted
    from an incoming HTTP header, handed across a thread pool, or
    shipped to a worker process — and overrides the thread-local stack,
    so the opened span joins the caller's trace instead of rooting a
    new one.  Spans opened *inside* the body still nest normally.

    Implemented as a plain class rather than ``@contextmanager`` so the
    disabled path costs no generator frame.
    """

    __slots__ = ("name", "attributes", "record", "parent")

    def __init__(self, name: str, parent: Optional[TraceContext] = None,
                 **attributes) -> None:
        self.name = name
        self.attributes = attributes
        self.parent = parent
        self.record: Optional[SpanRecord] = None

    def __enter__(self) -> Optional[SpanRecord]:
        if not _state.enabled:
            return None
        stack = _stack()
        if self.parent is not None:
            trace_id = self.parent.trace_id
            parent_id: Optional[str] = self.parent.span_id
        else:
            parent = stack[-1] if stack else None
            trace_id = parent.trace_id if parent else _new_id()
            parent_id = parent.span_id if parent else None
        record = SpanRecord(
            name=self.name,
            trace_id=trace_id,
            span_id=_new_id(),
            parent_id=parent_id,
            thread_id=threading.get_ident(),
            start_s=_state.store.now(),
            attributes=dict(self.attributes),
        )
        stack.append(record)
        self.record = record
        return record

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self.record
        if record is None:
            return False
        stack = _stack()
        # The record may not be stack-top if the body leaked spans across
        # threads; remove defensively rather than corrupting siblings.
        if stack and stack[-1] is record:
            stack.pop()
        elif record in stack:
            stack.remove(record)
        record.duration_s = _state.store.now() - record.start_s
        if exc_type is not None:
            record.error = True
            record.attributes["error"] = True
            record.attributes["error_type"] = exc_type.__name__
        _state.store.add(record)
        return False
