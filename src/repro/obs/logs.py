"""Structured JSON-lines logging with trace/span correlation.

``get_logger("repro.serve")`` returns a tiny structured logger whose
methods emit one JSON object per line::

    {"ts": "2026-08-06T12:00:00.123456+00:00", "level": "info",
     "logger": "repro.serve", "event": "request_shed",
     "queue_depth": 256, "trace_id": "0000000000a1", "span_id": "...b2"}

Every line carries the emitting logger's name, the event (a short
machine-greppable slug), any keyword fields, and — when emitted inside
an open :func:`repro.obs.trace.span` — the active trace/span ids, so a
log line found in production joins back to its flamegraph.

The sink is a plain text stream (``sys.stderr`` by default; swap with
:func:`set_log_stream` — tests point it at a ``StringIO``).  Severity
filtering is global and process-wide (:func:`set_log_level`); the
default level is ``"info"``.  No stdlib-``logging`` handlers, no
formatter classes, no configuration files — the JSON line *is* the
format.

Hot-path loggers can be **rate-limited**: ``get_logger("repro.relia.retry",
sample=100.0)`` attaches a token bucket (100 lines/s sustained, equal
burst) so a fault storm emitting thousands of retry/quarantine/shed
events per second cannot flood the JSON-lines sink or slow the path
that logs.  Suppressed lines are counted in
``repro_logs_suppressed_total{logger=...}`` on the process registry, so
the exposition still shows *that* (and how hard) a logger was throttled
even when the lines themselves are gone.
"""

from __future__ import annotations

import datetime as _dt
import json
import sys
import threading
import time
from typing import Dict, Optional, TextIO, Union

from repro.obs.trace import current_span_id, current_trace_id

__all__ = [
    "LEVELS",
    "StructLogger",
    "TokenBucket",
    "get_logger",
    "set_log_level",
    "set_log_stream",
]

#: Severity order, least to most severe.
LEVELS = ("debug", "info", "warning", "error")
_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}

_lock = threading.Lock()
_stream: Optional[TextIO] = None  # None -> sys.stderr at emit time
_threshold = _LEVEL_RANK["info"]
_loggers: Dict[str, "StructLogger"] = {}


def set_log_stream(stream: Optional[TextIO]) -> Optional[TextIO]:
    """Redirect log lines to ``stream`` (None -> stderr); returns the old one."""
    global _stream
    with _lock:
        previous = _stream
        _stream = stream
    return previous


def set_log_level(level: str) -> str:
    """Set the global severity threshold; returns the previous level."""
    if level not in _LEVEL_RANK:
        raise ValueError(f"unknown log level {level!r}; choose from {LEVELS}")
    global _threshold
    with _lock:
        previous = LEVELS[_threshold]
        _threshold = _LEVEL_RANK[level]
    return previous


class TokenBucket:
    """Thread-safe token bucket: ``rate_per_s`` sustained, ``burst`` peak.

    ``allow()`` costs one token and returns False when the bucket is
    empty.  Refill is continuous (fractional tokens accrue between
    calls), so a steady stream just under the rate is never throttled.
    The clock is injectable for deterministic tests.
    """

    __slots__ = ("rate_per_s", "burst", "_tokens", "_last", "_clock",
                 "_lock")

    def __init__(self, rate_per_s: float, burst: Optional[float] = None,
                 clock=time.monotonic) -> None:
        if rate_per_s <= 0:
            raise ValueError(
                f"rate_per_s must be positive, got {rate_per_s}"
            )
        self.rate_per_s = float(rate_per_s)
        # Fractional sustained rates are legitimate (sample=0.5 means
        # one line every two seconds), but a bucket that can never hold
        # a whole token would suppress everything — floor the default
        # burst at one token so sub-1/s rates still emit.
        self.burst = (
            float(burst) if burst is not None
            else max(1.0, self.rate_per_s)
        )
        if self.burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        self._tokens = self.burst
        self._clock = clock
        self._last = clock()
        self._lock = threading.Lock()

    def allow(self) -> bool:
        """Take one token if available; False means "suppress this"."""
        now = self._clock()
        with self._lock:
            elapsed = now - self._last
            if elapsed > 0:
                self._tokens = min(
                    self.burst, self._tokens + elapsed * self.rate_per_s
                )
                self._last = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


def _suppressed_counter(logger_name: str):
    # Imported lazily: registry -> (nothing), logs -> registry is fine,
    # but doing it at call time keeps module import order irrelevant.
    from repro.obs.registry import get_registry

    return get_registry().counter(
        "repro_logs_suppressed_total",
        "Log lines dropped by per-logger rate limiting",
        labelnames=("logger",),
    ).labels(logger=logger_name)


class StructLogger:
    """Named emitter of structured JSON log lines.

    An attached :class:`TokenBucket` (see :func:`get_logger`'s
    ``sample=``) gates every line regardless of severity; suppressed
    lines bump ``repro_logs_suppressed_total{logger=...}`` instead of
    reaching the sink.
    """

    __slots__ = ("name", "_bucket")

    def __init__(self, name: str,
                 bucket: Optional[TokenBucket] = None) -> None:
        self.name = name
        self._bucket = bucket

    def set_sampler(self, bucket: Optional[TokenBucket]) -> None:
        """Attach (or with None, detach) the rate-limiting bucket."""
        self._bucket = bucket

    def log(self, level: str, event: str, **fields) -> None:
        """Emit one line at ``level`` (dropped when below the threshold)."""
        rank = _LEVEL_RANK.get(level)
        if rank is None:
            raise ValueError(
                f"unknown log level {level!r}; choose from {LEVELS}"
            )
        if rank < _threshold:
            return
        bucket = self._bucket
        if bucket is not None and not bucket.allow():
            _suppressed_counter(self.name).inc()
            return
        record: Dict[str, object] = {
            "ts": _dt.datetime.now(_dt.timezone.utc).isoformat(),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        record.update(fields)
        trace_id = current_trace_id()
        if trace_id is not None:
            record.setdefault("trace_id", trace_id)
            record.setdefault("span_id", current_span_id())
        line = json.dumps(record, default=str)
        with _lock:
            stream = _stream if _stream is not None else sys.stderr
            try:
                stream.write(line + "\n")
                stream.flush()
            except ValueError:
                # Sink closed under us (interpreter teardown, test stream
                # lifetime) — losing a log line beats crashing the caller.
                pass

    def debug(self, event: str, **fields) -> None:
        """Emit at ``debug`` severity."""
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        """Emit at ``info`` severity."""
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        """Emit at ``warning`` severity."""
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        """Emit at ``error`` severity."""
        self.log("error", event, **fields)


def get_logger(
    name: str,
    sample: Optional[Union[float, TokenBucket]] = None,
) -> StructLogger:
    """The process-wide :class:`StructLogger` registered under ``name``.

    Args:
        name: logger name (one shared instance per name).
        sample: optional rate limit for this logger's lines — a float is
            shorthand for ``TokenBucket(rate_per_s=sample)`` (sustained
            rate with a burst of ``max(1, rate)``, so fractional rates
            like 0.5 lines/s work); pass a :class:`TokenBucket` for
            full control.  Re-calling with ``sample`` replaces the
            existing bucket; calling without leaves it untouched.
    """
    with _lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = StructLogger(name)
            _loggers[name] = logger
    if sample is not None:
        bucket = (
            sample if isinstance(sample, TokenBucket)
            else TokenBucket(float(sample))
        )
        logger.set_sampler(bucket)
    return logger
