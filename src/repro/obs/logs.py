"""Structured JSON-lines logging with trace/span correlation.

``get_logger("repro.serve")`` returns a tiny structured logger whose
methods emit one JSON object per line::

    {"ts": "2026-08-06T12:00:00.123456+00:00", "level": "info",
     "logger": "repro.serve", "event": "request_shed",
     "queue_depth": 256, "trace_id": "0000000000a1", "span_id": "...b2"}

Every line carries the emitting logger's name, the event (a short
machine-greppable slug), any keyword fields, and — when emitted inside
an open :func:`repro.obs.trace.span` — the active trace/span ids, so a
log line found in production joins back to its flamegraph.

The sink is a plain text stream (``sys.stderr`` by default; swap with
:func:`set_log_stream` — tests point it at a ``StringIO``).  Severity
filtering is global and process-wide (:func:`set_log_level`); the
default level is ``"info"``.  No stdlib-``logging`` handlers, no
formatter classes, no configuration files — the JSON line *is* the
format.
"""

from __future__ import annotations

import datetime as _dt
import json
import sys
import threading
from typing import Dict, Optional, TextIO

from repro.obs.trace import current_span_id, current_trace_id

__all__ = [
    "LEVELS",
    "StructLogger",
    "get_logger",
    "set_log_level",
    "set_log_stream",
]

#: Severity order, least to most severe.
LEVELS = ("debug", "info", "warning", "error")
_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}

_lock = threading.Lock()
_stream: Optional[TextIO] = None  # None -> sys.stderr at emit time
_threshold = _LEVEL_RANK["info"]
_loggers: Dict[str, "StructLogger"] = {}


def set_log_stream(stream: Optional[TextIO]) -> Optional[TextIO]:
    """Redirect log lines to ``stream`` (None -> stderr); returns the old one."""
    global _stream
    with _lock:
        previous = _stream
        _stream = stream
    return previous


def set_log_level(level: str) -> str:
    """Set the global severity threshold; returns the previous level."""
    if level not in _LEVEL_RANK:
        raise ValueError(f"unknown log level {level!r}; choose from {LEVELS}")
    global _threshold
    with _lock:
        previous = LEVELS[_threshold]
        _threshold = _LEVEL_RANK[level]
    return previous


class StructLogger:
    """Named emitter of structured JSON log lines."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def log(self, level: str, event: str, **fields) -> None:
        """Emit one line at ``level`` (dropped when below the threshold)."""
        rank = _LEVEL_RANK.get(level)
        if rank is None:
            raise ValueError(
                f"unknown log level {level!r}; choose from {LEVELS}"
            )
        if rank < _threshold:
            return
        record: Dict[str, object] = {
            "ts": _dt.datetime.now(_dt.timezone.utc).isoformat(),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        record.update(fields)
        trace_id = current_trace_id()
        if trace_id is not None:
            record.setdefault("trace_id", trace_id)
            record.setdefault("span_id", current_span_id())
        line = json.dumps(record, default=str)
        with _lock:
            stream = _stream if _stream is not None else sys.stderr
            try:
                stream.write(line + "\n")
                stream.flush()
            except ValueError:
                # Sink closed under us (interpreter teardown, test stream
                # lifetime) — losing a log line beats crashing the caller.
                pass

    def debug(self, event: str, **fields) -> None:
        """Emit at ``debug`` severity."""
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        """Emit at ``info`` severity."""
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        """Emit at ``warning`` severity."""
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        """Emit at ``error`` severity."""
        self.log("error", event, **fields)


def get_logger(name: str) -> StructLogger:
    """The process-wide :class:`StructLogger` registered under ``name``."""
    with _lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = StructLogger(name)
            _loggers[name] = logger
        return logger
