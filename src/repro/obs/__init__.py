"""Unified telemetry: metrics registry, tracing spans, logs, profiling.

Every execution mode of the reproduction — the batch pipeline
(:mod:`repro.core.pipeline`), online ingestion (:mod:`repro.stream`),
and concurrent serving (:mod:`repro.serve`) — reports through this one
zero-dependency layer:

* :class:`MetricsRegistry` — process-wide counter/gauge/histogram
  families with labels, exposed as Prometheus text (the serve
  endpoint's ``GET /metrics``) or JSON (``repro-icn obs dump``);
* :func:`span` / :class:`TraceStore` — hierarchical timed spans with a
  ring-buffer store and Chrome ``trace_event`` export for flamegraphs
  (``repro-icn obs trace-export``);
* :func:`get_logger` — structured JSON-lines logging carrying the
  active trace/span ids;
* :func:`timed_stage` / :func:`profile_stage` — stage instrumentation
  (span + stage-seconds histogram) and on-demand wall/CPU/RSS profiles;
* :class:`SLOEngine` / :class:`AlertManager` — declarative SLOs with
  rolling-window error-budget accounting and multi-window burn-rate
  alerting (the judging layer over the emitted signals);
* :func:`run_checks` / :func:`service_health_checks` — liveness and
  readiness probes behind the serve endpoint's ``GET /healthz``.

Quickstart::

    from repro import generate_dataset, ICNProfiler
    from repro.obs import enable_tracing, get_registry, get_trace_store

    store = enable_tracing()
    dataset = generate_dataset(master_seed=0)
    profile = ICNProfiler(n_clusters=9).fit(dataset)
    profile.explain(samples_per_cluster=10)

    store.export_chrome("trace.json")          # chrome://tracing
    print(get_registry().prometheus_text())    # scrape-able metrics
"""

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Exemplar,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.trace import (
    DEFAULT_TRACE_CAPACITY,
    SpanRecord,
    TraceStore,
    current_span,
    current_span_id,
    current_trace_id,
    disable_tracing,
    enable_tracing,
    get_trace_store,
    span,
    tracing_enabled,
)
from repro.obs.logs import (
    LEVELS,
    StructLogger,
    TokenBucket,
    get_logger,
    set_log_level,
    set_log_stream,
)
from repro.obs.profiling import StageStats, profile_stage, timed_stage
from repro.obs.slo import (
    SLO,
    SLOEngine,
    counter_source,
    default_slos,
    histogram_count_source,
    histogram_under_source,
)
from repro.obs.alerts import (
    ALERT_STATES,
    Alert,
    AlertManager,
    BurnRateRule,
    default_rules,
)
from repro.obs.health import (
    HealthCheck,
    HealthReport,
    run_checks,
    service_health_checks,
)

__all__ = [
    "ALERT_STATES",
    "Alert",
    "AlertManager",
    "BurnRateRule",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_TRACE_CAPACITY",
    "Exemplar",
    "Gauge",
    "HealthCheck",
    "HealthReport",
    "Histogram",
    "LEVELS",
    "MetricsRegistry",
    "SLO",
    "SLOEngine",
    "SpanRecord",
    "StageStats",
    "StructLogger",
    "TokenBucket",
    "TraceStore",
    "counter_source",
    "current_span",
    "current_span_id",
    "current_trace_id",
    "default_rules",
    "default_slos",
    "disable_tracing",
    "enable_tracing",
    "get_logger",
    "get_registry",
    "get_trace_store",
    "histogram_count_source",
    "histogram_under_source",
    "profile_stage",
    "run_checks",
    "service_health_checks",
    "set_log_level",
    "set_log_stream",
    "set_registry",
    "span",
    "tracing_enabled",
    "timed_stage",
]
