"""Unified telemetry: metrics registry, tracing spans, logs, profiling.

Every execution mode of the reproduction — the batch pipeline
(:mod:`repro.core.pipeline`), online ingestion (:mod:`repro.stream`),
and concurrent serving (:mod:`repro.serve`) — reports through this one
zero-dependency layer:

* :class:`MetricsRegistry` — process-wide counter/gauge/histogram
  families with labels, exposed as Prometheus text (the serve
  endpoint's ``GET /metrics``) or JSON (``repro-icn obs dump``);
* :func:`span` / :class:`TraceStore` — hierarchical timed spans with a
  ring-buffer store and Chrome ``trace_event`` export for flamegraphs
  (``repro-icn obs trace-export``);
* :func:`get_logger` — structured JSON-lines logging carrying the
  active trace/span ids;
* :func:`timed_stage` / :func:`profile_stage` — stage instrumentation
  (span + stage-seconds histogram) and on-demand wall/CPU/RSS profiles;
* :class:`SLOEngine` / :class:`AlertManager` — declarative SLOs with
  rolling-window error-budget accounting and multi-window burn-rate
  alerting (the judging layer over the emitted signals);
* :func:`run_checks` / :func:`service_health_checks` — liveness and
  readiness probes behind the serve endpoint's ``GET /healthz``;
* :class:`TraceContext` / :func:`inject` / :func:`extract` — W3C
  ``traceparent`` propagation so spans on both sides of an HTTP (or
  process) boundary assemble into one trace;
* :class:`ContinuousProfiler` — always-on stack sampling with a hard
  overhead budget, served at ``GET /debug/prof`` (speedscope /
  collapsed stacks);
* :class:`MetricsTSDB` — rolling metric history with
  ``rate()``/``delta()``/``quantile()`` queries behind ``GET /query``
  and the ``repro-icn obs watch`` sparklines.

Quickstart::

    from repro import generate_dataset, ICNProfiler
    from repro.obs import enable_tracing, get_registry, get_trace_store

    store = enable_tracing()
    dataset = generate_dataset(master_seed=0)
    profile = ICNProfiler(n_clusters=9).fit(dataset)
    profile.explain(samples_per_cluster=10)

    store.export_chrome("trace.json")          # chrome://tracing
    print(get_registry().prometheus_text())    # scrape-able metrics
"""

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Exemplar,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.trace import (
    DEFAULT_TRACE_CAPACITY,
    SpanRecord,
    TraceContext,
    TraceStore,
    current_context,
    current_span,
    current_span_id,
    current_trace_id,
    disable_tracing,
    enable_tracing,
    extract,
    get_trace_store,
    inject,
    span,
    tracing_enabled,
)
from repro.obs.logs import (
    LEVELS,
    StructLogger,
    TokenBucket,
    get_logger,
    set_log_level,
    set_log_stream,
)
from repro.obs.profiling import StageStats, profile_stage, timed_stage
from repro.obs.slo import (
    SLO,
    SLOEngine,
    counter_source,
    default_slos,
    histogram_count_source,
    histogram_under_source,
)
from repro.obs.alerts import (
    ALERT_STATES,
    Alert,
    AlertManager,
    BurnRateRule,
    default_rules,
)
from repro.obs.health import (
    HealthCheck,
    HealthReport,
    run_checks,
    service_health_checks,
)
from repro.obs.prof import ContinuousProfiler
from repro.obs.tsdb import MetricsTSDB, QueryError, SeriesRing, sparkline

__all__ = [
    "ALERT_STATES",
    "Alert",
    "AlertManager",
    "BurnRateRule",
    "ContinuousProfiler",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_TRACE_CAPACITY",
    "Exemplar",
    "Gauge",
    "HealthCheck",
    "HealthReport",
    "Histogram",
    "LEVELS",
    "MetricsRegistry",
    "MetricsTSDB",
    "QueryError",
    "SLO",
    "SLOEngine",
    "SeriesRing",
    "SpanRecord",
    "StageStats",
    "StructLogger",
    "TokenBucket",
    "TraceContext",
    "TraceStore",
    "counter_source",
    "current_context",
    "current_span",
    "current_span_id",
    "current_trace_id",
    "default_rules",
    "default_slos",
    "disable_tracing",
    "enable_tracing",
    "extract",
    "get_logger",
    "get_registry",
    "get_trace_store",
    "histogram_count_source",
    "histogram_under_source",
    "inject",
    "profile_stage",
    "run_checks",
    "service_health_checks",
    "set_log_level",
    "set_log_stream",
    "set_registry",
    "span",
    "sparkline",
    "tracing_enabled",
    "timed_stage",
]
