"""``repro-icn obs watch`` — a live ANSI terminal dashboard for one node.

Polls a serving node's ``GET /metrics.json`` (plus, when available,
``GET /slo``, ``GET /healthz``, and ``GET /query``) and renders an
operator view in the terminal: traffic (qps, requests, errors, shed),
the p50/p95/p99 latency trio, cache and queue pressure, profile
version, SLO error-budget bars, any pending/firing alerts, and — when
the node records history into a :class:`~repro.obs.tsdb.MetricsTSDB` —
unicode sparklines of request rate, error rate, and queue depth backed
by the node's real sample rings rather than client-side guesswork.
Pure stdlib — :mod:`urllib` for the polling, ANSI escape codes for the
paint.

The renderer (:func:`render_dashboard`) is a pure function from the
three JSON payloads to a string, so tests exercise layout and
colour-threshold logic without sockets or timing; :func:`watch` is the
thin poll-clear-paint loop the CLI drives.  Colours degrade gracefully:
pass ``color=False`` (or pipe to a non-TTY via the CLI) for plain text.
"""

from __future__ import annotations

import json
import math
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Callable, Dict, List, Optional, TextIO

from repro.obs.tsdb import sparkline

__all__ = [
    "DEFAULT_HISTORY_EXPRS",
    "fetch_history",
    "fetch_json",
    "render_dashboard",
    "watch",
]

#: Sparkline panes painted by default: label -> /query expression.
DEFAULT_HISTORY_EXPRS: Dict[str, str] = {
    "req/s": "rate(repro_serve_requests_total[120s])",
    "err/s": "rate(repro_serve_errors_total[120s])",
    "queue": "repro_serve_queue_depth[120s]",
}

#: ANSI escape codes used by the renderer.
_RESET = "\x1b[0m"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RED = "\x1b[31m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"
_CLEAR = "\x1b[2J\x1b[H"

#: Width of the error-budget bar, characters.
_BAR_WIDTH = 24


def fetch_json(url: str, timeout_s: float = 2.0) -> Optional[dict]:
    """GET ``url`` and parse the JSON body; None on any failure.

    Health endpoints answer 503 with a JSON body when unhealthy — that
    body is still returned (the dashboard wants the failing checks, not
    just the status code).
    """
    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as response:
            payload = json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
        except (ValueError, OSError):
            return None
    except (urllib.error.URLError, OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def _paint(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{_RESET}" if color else text


def _budget_bar(remaining: float, color: bool) -> str:
    """``[######----] 62%`` — clamped to [0, 1] for the bar itself."""
    clamped = max(0.0, min(1.0, remaining))
    filled = int(round(clamped * _BAR_WIDTH))
    bar = "#" * filled + "-" * (_BAR_WIDTH - filled)
    if remaining < 0.0:
        code = _RED
    elif remaining < 0.25:
        code = _YELLOW
    else:
        code = _GREEN
    return f"[{_paint(bar, code, color)}] {remaining * 100:6.1f}%"


def _fmt(value: object, spec: str = "", fallback: str = "n/a") -> str:
    if value is None:
        return fallback
    # NaN formats "successfully" as the string "nan", which reads like a
    # metric named nan rather than an absent value — treat it as n/a
    # (quantiles of an empty histogram arrive as NaN, not None).
    if isinstance(value, float) and math.isnan(value):
        return fallback
    try:
        return format(value, spec) if spec else str(value)
    except (TypeError, ValueError):
        return fallback


def _history_values(payload: dict) -> List[float]:
    """Sparkline-able values from one ``/query`` response body.

    ``rate()`` responses carry the raw cumulative counter samples; the
    painted history is the per-interval rate between consecutive
    samples (what an operator means by "qps over time").  Everything
    else paints the sample values as-is.
    """
    series = payload.get("series") or []
    if not series:
        return []
    samples = series[0].get("samples") or []
    pairs = [
        (float(t), float(v)) for t, v in samples
        if isinstance(t, (int, float)) and isinstance(v, (int, float))
    ]
    if payload.get("fn") == "rate":
        values = []
        for (t0, v0), (t1, v1) in zip(pairs, pairs[1:]):
            dt = t1 - t0
            if dt > 0:
                values.append(max(0.0, v1 - v0) / dt)
        return values
    return [v for _, v in pairs]


def fetch_history(
    base_url: str,
    exprs: Optional[Dict[str, str]] = None,
    timeout_s: float = 2.0,
) -> Dict[str, List[float]]:
    """Poll ``GET /query`` once per expression; label -> value history.

    Nodes without a TSDB answer 404 (an ``error`` JSON body) — those
    panes are silently absent rather than painted empty.
    """
    base = base_url.rstrip("/")
    history: Dict[str, List[float]] = {}
    for label, expr in (exprs or DEFAULT_HISTORY_EXPRS).items():
        url = f"{base}/query?expr={urllib.parse.quote(expr)}"
        payload = fetch_json(url, timeout_s=timeout_s)
        if payload is None or payload.get("error") is not None:
            continue
        values = _history_values(payload)
        if values:
            history[label] = values
    return history


def render_dashboard(
    metrics: Optional[dict],
    slo: Optional[dict] = None,
    health: Optional[dict] = None,
    color: bool = True,
    url: str = "",
    history: Optional[Dict[str, List[float]]] = None,
) -> str:
    """Render one dashboard frame from the polled JSON payloads.

    Args:
        metrics: the ``/metrics.json`` body (None paints an unreachable
            banner instead of panes).
        slo: the ``/slo`` body (``slos`` + ``alerts`` lists), optional.
        health: the ``/healthz`` body, optional.
        color: emit ANSI colour codes.
        url: node URL shown in the header.
        history: label -> value series (see :func:`fetch_history`),
            painted as unicode sparklines when non-empty.
    """
    lines: List[str] = []
    title = "repro-icn serving node"
    if url:
        title += f" @ {url}"
    lines.append(_paint(title, _BOLD, color))
    if metrics is None:
        lines.append(_paint("  node unreachable", _RED, color))
        return "\n".join(lines) + "\n"

    counters = metrics.get("counters", {}) or {}
    derived = metrics.get("derived", {}) or {}
    cache = metrics.get("cache", {}) or {}

    status = None
    if health is not None:
        healthy = health.get("status") == "ok"
        status = _paint(
            "HEALTHY" if healthy else "UNHEALTHY",
            _GREEN if healthy else _RED, color,
        )
    version = metrics.get("profile_version")
    lines.append(
        f"  profile v{_fmt(version)}"
        + (f"  ·  {status}" if status is not None else "")
    )
    lines.append("")

    lines.append(_paint("traffic", _BOLD, color))
    lines.append(
        f"  qps {_fmt(derived.get('qps'), '8.1f')}"
        f"   requests {_fmt(counters.get('requests'), '>10')}"
        f"   errors {_fmt(counters.get('errors'), '>8')}"
        f"   shed {_fmt(counters.get('shed_requests'), '>8')}"
    )
    lines.append(
        f"  latency ms   p50 {_fmt(derived.get('p50_ms'), '7.2f')}"
        f"   p95 {_fmt(derived.get('p95_ms'), '7.2f')}"
        f"   p99 {_fmt(derived.get('p99_ms'), '7.2f')}"
    )
    hit_rate = derived.get("cache_hit_rate")
    lines.append(
        f"  cache hit {_fmt(hit_rate, '6.1%')}"
        f"   entries {_fmt(cache.get('size'), '>8')}"
        f"   queue {_fmt(metrics.get('queue_depth'), '>4')}"
        f"/{_fmt(metrics.get('max_queue_depth'))}"
        f"   mean batch {_fmt(derived.get('mean_batch_size'), '5.1f')}"
    )
    lines.append("")

    if history:
        lines.append(_paint("history", _BOLD, color))
        width = max(len(label) for label in history)
        for label, values in history.items():
            spark = sparkline(values)
            latest = values[-1] if values else None
            lines.append(
                f"  {label:<{width}}  {spark:<32}  {_fmt(latest, '10.2f')}"
            )
        lines.append("")

    if health is not None:
        failing = [
            check for check in health.get("checks", [])
            if not check.get("ok", True)
        ]
        if failing:
            lines.append(_paint("failing checks", _BOLD, color))
            for check in failing:
                code = _RED if check.get("critical") else _YELLOW
                lines.append(
                    "  "
                    + _paint(f"{check.get('name')}: {check.get('detail')}",
                             code, color)
                )
            lines.append("")

    if slo is not None:
        entries = slo.get("slos", []) or []
        if entries:
            lines.append(_paint("error budgets", _BOLD, color))
            width = max(len(str(e.get("name", ""))) for e in entries)
            for entry in entries:
                remaining = float(
                    entry.get("error_budget_remaining", 1.0) or 0.0
                )
                lines.append(
                    f"  {str(entry.get('name', '')):<{width}}  "
                    + _budget_bar(remaining, color)
                    + f"  compliance {_fmt(entry.get('compliance'), '8.4%')}"
                )
            lines.append("")
        alerts = slo.get("alerts", []) or []
        noisy = [
            a for a in alerts if a.get("state") in ("pending", "firing")
        ]
        lines.append(_paint("alerts", _BOLD, color))
        if not noisy:
            lines.append(
                "  " + _paint("none pending or firing", _DIM, color)
            )
        for alert in noisy:
            code = _RED if alert.get("state") == "firing" else _YELLOW
            line = (
                f"{alert.get('state', '?').upper():>7}  "
                f"{alert.get('name')}  "
                f"burn {_fmt(alert.get('burn_long'), '.1f')}"
                f"/{_fmt(alert.get('burn_short'), '.1f')}"
                f" > {_fmt(alert.get('burn_threshold'), '.1f')}"
            )
            trace_id = alert.get("exemplar_trace_id")
            if trace_id:
                line += f"  trace {trace_id}"
            lines.append("  " + _paint(line, code, color))
        lines.append("")

    return "\n".join(lines) + "\n"


def watch(
    base_url: str,
    interval_s: float = 2.0,
    iterations: Optional[int] = None,
    stream: Optional[TextIO] = None,
    color: bool = True,
    clear: bool = True,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Poll the node and repaint until interrupted; returns frames painted.

    Args:
        base_url: node root, e.g. ``http://127.0.0.1:8080``.
        interval_s: seconds between polls.
        iterations: stop after this many frames (None runs until
            Ctrl-C).
        stream: output stream (``sys.stdout`` when None).
        color / clear: ANSI colour codes and screen-clear between
            frames.
        sleep: injectable pause for tests.
    """
    import sys

    out = stream if stream is not None else sys.stdout
    base = base_url.rstrip("/")
    frames = 0
    endpoints: Dict[str, str] = {
        "metrics": f"{base}/metrics.json",
        "slo": f"{base}/slo",
        "health": f"{base}/healthz",
    }
    try:
        while iterations is None or frames < iterations:
            metrics = fetch_json(endpoints["metrics"])
            slo = fetch_json(endpoints["slo"])
            health = fetch_json(endpoints["health"])
            history = fetch_history(base)
            frame = render_dashboard(
                metrics, slo=slo, health=health, color=color, url=base,
                history=history,
            )
            if clear:
                out.write(_CLEAR)
            out.write(frame)
            out.flush()
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return frames
