"""CSV ingestion and export for operator-style traffic data.

The pipeline is data-source agnostic: anyone holding real per-antenna
traffic (in the aggregated, GDPR-compliant form the paper uses) can load
it here and run the identical analysis.  Two schemas are supported:

* **wide totals** — one row per antenna, one column per service, plus
  ``antenna_id`` / ``name`` metadata columns.  This is the matrix the
  clustering consumes.
* **long hourly** — one row per (antenna, service, hour) measurement:
  ``antenna_id,service,timestamp,traffic_mb`` — the shape an hourly
  export from a measurement platform naturally takes; it aggregates into
  the wide totals matrix.

Only the standard library's ``csv`` is used — no pandas dependency.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: Metadata columns of the wide-totals schema, in order.
WIDE_META_COLUMNS = ("antenna_id", "name")


def export_totals_csv(
    path,
    totals: np.ndarray,
    antenna_names: Sequence[str],
    service_names: Sequence[str],
) -> None:
    """Write a wide-totals CSV (one antenna per row, one service per column)."""
    matrix = np.asarray(totals, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"totals must be 2-D, got shape {matrix.shape}")
    if matrix.shape[0] != len(antenna_names):
        raise ValueError(
            f"{len(antenna_names)} antenna names for {matrix.shape[0]} rows"
        )
    if matrix.shape[1] != len(service_names):
        raise ValueError(
            f"{len(service_names)} service names for {matrix.shape[1]} columns"
        )
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(WIDE_META_COLUMNS) + list(service_names))
        for i, name in enumerate(antenna_names):
            writer.writerow([i, name] + [f"{v:.6f}" for v in matrix[i]])


def load_totals_csv(path) -> Tuple[List[str], List[str], np.ndarray]:
    """Read a wide-totals CSV.

    Returns:
        ``(antenna_names, service_names, totals)`` with totals as a float
        matrix in file row/column order.

    Raises:
        ValueError: on a malformed header, ragged rows, or non-numeric
            traffic cells.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        if tuple(header[: len(WIDE_META_COLUMNS)]) != WIDE_META_COLUMNS:
            raise ValueError(
                f"expected header to start with {WIDE_META_COLUMNS}, "
                f"got {header[:2]}"
            )
        service_names = header[len(WIDE_META_COLUMNS):]
        if not service_names:
            raise ValueError("no service columns in header")
        antenna_names: List[str] = []
        rows: List[List[float]] = []
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise ValueError(
                    f"{path}:{line_no}: expected {len(header)} cells, "
                    f"got {len(row)}"
                )
            antenna_names.append(row[1])
            try:
                rows.append([float(cell) for cell in row[2:]])
            except ValueError:
                raise ValueError(
                    f"{path}:{line_no}: non-numeric traffic value"
                ) from None
    if not rows:
        raise ValueError(f"{path} contains no antenna rows")
    return antenna_names, service_names, np.asarray(rows, dtype=float)


def export_hourly_csv(
    path,
    hourly: np.ndarray,
    hours: np.ndarray,
    antenna_ids: Sequence[int],
    service: str,
) -> None:
    """Write one service's hourly series in the long schema.

    Args:
        hourly: (n_antennas, n_hours) traffic in MB.
        hours: the n_hours timestamps (``datetime64[h]``).
        antenna_ids: ids matching the rows of ``hourly``.
        service: service name stamped on every row.
    """
    matrix = np.asarray(hourly, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"hourly must be 2-D, got {matrix.shape}")
    if matrix.shape != (len(antenna_ids), len(hours)):
        raise ValueError(
            f"hourly shape {matrix.shape} does not match "
            f"{len(antenna_ids)} antennas x {len(hours)} hours"
        )
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["antenna_id", "service", "timestamp", "traffic_mb"])
        for row, antenna_id in enumerate(antenna_ids):
            for col, stamp in enumerate(hours):
                writer.writerow(
                    [antenna_id, service, str(stamp), f"{matrix[row, col]:.6f}"]
                )


def load_hourly_csv(
    path,
) -> Tuple[np.ndarray, List[str], np.ndarray, np.ndarray]:
    """Read a long-schema hourly CSV and aggregate it.

    Returns:
        ``(antenna_ids, service_names, hours, tensor)`` where ``tensor``
        has shape (n_antennas, n_services, n_hours), with axes sorted by
        id / name / timestamp.  Duplicate measurements for the same cell
        are summed (measurement platforms emit partial records).
    """
    path = Path(path)
    records: List[Tuple[int, str, np.datetime64, float]] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        expected = ["antenna_id", "service", "timestamp", "traffic_mb"]
        if header != expected:
            raise ValueError(f"expected header {expected}, got {header}")
        for line_no, row in enumerate(reader, start=2):
            if len(row) != 4:
                raise ValueError(f"{path}:{line_no}: expected 4 cells")
            try:
                records.append(
                    (
                        int(row[0]),
                        row[1],
                        np.datetime64(row[2], "h"),
                        float(row[3]),
                    )
                )
            except ValueError:
                raise ValueError(f"{path}:{line_no}: malformed record") from None
    if not records:
        raise ValueError(f"{path} contains no measurements")
    antenna_ids = np.array(sorted({r[0] for r in records}))
    service_names = sorted({r[1] for r in records})
    hours = np.array(sorted({r[2] for r in records}))
    a_index = {a: i for i, a in enumerate(antenna_ids.tolist())}
    s_index = {s: i for i, s in enumerate(service_names)}
    h_index = {h: i for i, h in enumerate(hours.tolist())}
    tensor = np.zeros((antenna_ids.size, len(service_names), hours.size))
    for antenna, service, stamp, value in records:
        tensor[a_index[antenna], s_index[service], h_index[stamp]] += value
    return antenna_ids, service_names, hours, tensor


def iter_hourly_csv(
    path, service_names: Sequence[str]
) -> Iterator[Tuple[np.datetime64, np.ndarray, np.ndarray]]:
    """Stream a long-schema hourly CSV one hour at a time (chunked read).

    Unlike :func:`load_hourly_csv`, which materializes the full tensor,
    this reads the file sequentially and holds only the current hour's
    rows in memory — the ingestion path for traces longer than RAM.  It
    requires the file to be *hour-ordered*: rows grouped by timestamp,
    timestamps strictly ascending (the natural order of a rolling
    measurement-platform export).  Duplicate (antenna, service) cells
    within an hour are summed.

    Args:
        path: CSV path with the ``antenna_id,service,timestamp,traffic_mb``
            schema.
        service_names: the output column order; every service appearing
            in the file must be listed here.

    Yields:
        ``(hour, antenna_ids, matrix)`` per hour — antenna ids sorted
        ascending, matrix of shape (n_reporting_antennas, n_services).

    Raises:
        ValueError: on malformed rows, unknown services, or timestamps
            that go backwards (sort the export first, or use
            :func:`load_hourly_csv`).
    """
    path = Path(path)
    names = [str(s) for s in service_names]
    s_index = {name: j for j, name in enumerate(names)}
    if len(s_index) != len(names):
        raise ValueError("service_names must be unique")

    def flush(hour, cells: Dict[int, np.ndarray]):
        ids = np.array(sorted(cells), dtype=np.int64)
        matrix = np.vstack([cells[a] for a in ids.tolist()])
        return hour, ids, matrix

    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        expected = ["antenna_id", "service", "timestamp", "traffic_mb"]
        if header != expected:
            raise ValueError(f"expected header {expected}, got {header}")
        current_hour: Optional[np.datetime64] = None
        cells: Dict[int, np.ndarray] = {}
        for line_no, row in enumerate(reader, start=2):
            if len(row) != 4:
                raise ValueError(f"{path}:{line_no}: expected 4 cells")
            try:
                antenna = int(row[0])
                stamp = np.datetime64(row[2], "h")
                value = float(row[3])
            except ValueError:
                raise ValueError(f"{path}:{line_no}: malformed record") from None
            column = s_index.get(row[1])
            if column is None:
                raise ValueError(
                    f"{path}:{line_no}: service {row[1]!r} not in "
                    f"service_names"
                )
            if current_hour is None:
                current_hour = stamp
            elif stamp != current_hour:
                if stamp < current_hour:
                    raise ValueError(
                        f"{path}:{line_no}: timestamp {stamp} goes backwards "
                        f"(file must be hour-ordered; see load_hourly_csv "
                        f"for unordered files)"
                    )
                yield flush(current_hour, cells)
                current_hour = stamp
                cells = {}
            cell_row = cells.get(antenna)
            if cell_row is None:
                cell_row = np.zeros(len(names))
                cells[antenna] = cell_row
            cell_row[column] += value
        if current_hour is None:
            raise ValueError(f"{path} contains no measurements")
        yield flush(current_hour, cells)


def totals_from_hourly(tensor: np.ndarray) -> np.ndarray:
    """Collapse an (antennas, services, hours) tensor to the totals matrix."""
    cube = np.asarray(tensor, dtype=float)
    if cube.ndim != 3:
        raise ValueError(f"tensor must be 3-D, got shape {cube.shape}")
    return cube.sum(axis=2)
