"""CSV ingestion/export for operator-style traffic data."""

from repro.io.plans import (
    export_operations_json,
    load_operations_json,
    profile_to_dict,
    schedules_from_dict,
    schedules_to_dict,
    slices_from_dict,
    slices_to_dict,
)
from repro.io.csvio import (
    export_hourly_csv,
    export_totals_csv,
    iter_hourly_csv,
    load_hourly_csv,
    load_totals_csv,
    totals_from_hourly,
)

__all__ = [
    "export_totals_csv",
    "load_totals_csv",
    "export_hourly_csv",
    "iter_hourly_csv",
    "load_hourly_csv",
    "totals_from_hourly",
    "profile_to_dict",
    "slices_to_dict",
    "slices_from_dict",
    "schedules_to_dict",
    "schedules_from_dict",
    "export_operations_json",
    "load_operations_json",
]
