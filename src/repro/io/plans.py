"""JSON export of profiles and operational plans.

Downstream orchestration systems (slice controllers, cache managers,
energy schedulers) consume machine-readable plans, not markdown.  This
module serializes the profiling output and the Section 7 planners to
plain JSON and loads them back, with schema validation on the way in.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.apps.energy import SleepSchedule
from repro.apps.slicing import SliceTemplate


def profile_to_dict(profile) -> Dict:
    """Serializable summary of a fitted :class:`ICNProfile`."""
    sizes = profile.cluster_sizes()
    out = {
        "n_antennas": int(profile.features.shape[0]),
        "n_services": int(profile.features.shape[1]),
        "n_clusters": int(profile.n_clusters),
        "surrogate_accuracy": float(profile.surrogate_accuracy),
        "cluster_sizes": {str(c): int(n) for c, n in sizes.items()},
        "groups": {str(c): int(g) for c, g in profile.groups(3).items()},
        "labels": [int(l) for l in profile.labels],
        "service_names": list(profile.service_names),
    }
    return out


def slices_to_dict(slices: Dict[int, SliceTemplate]) -> Dict:
    """Serializable form of a slice plan."""
    return {
        str(cluster): {
            "n_antennas": template.n_antennas,
            "busy_hours": list(template.busy_hours),
            "peak_to_mean": template.peak_to_mean,
            "weekend_factor": template.weekend_factor,
            "priority_services": list(template.priority_services),
            "event_driven": template.event_driven,
        }
        for cluster, template in slices.items()
    }


def slices_from_dict(payload: Dict) -> Dict[int, SliceTemplate]:
    """Rebuild slice templates from their JSON form (validating)."""
    out: Dict[int, SliceTemplate] = {}
    for key, entry in payload.items():
        try:
            out[int(key)] = SliceTemplate(
                cluster=int(key),
                n_antennas=int(entry["n_antennas"]),
                busy_hours=tuple(int(h) for h in entry["busy_hours"]),
                peak_to_mean=float(entry["peak_to_mean"]),
                weekend_factor=float(entry["weekend_factor"]),
                priority_services=tuple(entry["priority_services"]),
                event_driven=bool(entry["event_driven"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed slice entry {key!r}: {exc}") from exc
    return out


def schedules_to_dict(schedules: Dict[int, SleepSchedule]) -> Dict:
    """Serializable form of an energy plan."""
    return {
        str(cluster): {
            "weekday_sleep_hours": list(schedule.weekday_sleep_hours),
            "weekend_sleep_hours": list(schedule.weekend_sleep_hours),
            "energy_saving": schedule.energy_saving,
            "traffic_at_risk": schedule.traffic_at_risk,
        }
        for cluster, schedule in schedules.items()
    }


def schedules_from_dict(payload: Dict) -> Dict[int, SleepSchedule]:
    """Rebuild sleep schedules from their JSON form (validating)."""
    out: Dict[int, SleepSchedule] = {}
    for key, entry in payload.items():
        try:
            out[int(key)] = SleepSchedule(
                cluster=int(key),
                weekday_sleep_hours=tuple(
                    int(h) for h in entry["weekday_sleep_hours"]
                ),
                weekend_sleep_hours=tuple(
                    int(h) for h in entry["weekend_sleep_hours"]
                ),
                energy_saving=float(entry["energy_saving"]),
                traffic_at_risk=float(entry["traffic_at_risk"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"malformed schedule entry {key!r}: {exc}"
            ) from exc
    return out


def export_operations_json(
    path,
    profile,
    slices: Dict[int, SliceTemplate],
    schedules: Dict[int, SleepSchedule],
) -> None:
    """Write the full operations bundle (profile + plans) to one file."""
    payload = {
        "profile": profile_to_dict(profile),
        "slices": slices_to_dict(slices),
        "energy": schedules_to_dict(schedules),
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_operations_json(path) -> Dict:
    """Load an operations bundle; plans come back as typed objects."""
    payload = json.loads(Path(path).read_text())
    for key in ("profile", "slices", "energy"):
        if key not in payload:
            raise ValueError(f"operations bundle lacks the {key!r} section")
    return {
        "profile": payload["profile"],
        "slices": slices_from_dict(payload["slices"]),
        "energy": schedules_from_dict(payload["energy"]),
    }
