"""repro: reproduction of "Characterizing Mobile Service Demands at Indoor
Cellular Networks" (IMC '23).

The package implements the paper's full analysis pipeline — RCA/RSCA
traffic transforms, agglomerative clustering with validity indices, a
random-forest surrogate with SHAP explanations, indoor-environment and
outdoor-comparison analyses, and temporal profiling — together with a
synthetic nationwide trace generator standing in for the proprietary
operator data (see DESIGN.md).

Quickstart::

    from repro import generate_dataset, ICNProfiler

    dataset = generate_dataset(master_seed=0)
    profiler = ICNProfiler(n_clusters=9)
    result = profiler.fit(dataset)
    print(result.summary())
"""

from repro.datagen import (
    Archetype,
    EnvironmentType,
    ServiceCatalog,
    TrafficDataset,
    default_catalog,
    generate_dataset,
)
from repro.core import (
    AgglomerativeClustering,
    ICNProfiler,
    KMeans,
    PCA,
    dunn_index,
    rca,
    rsca,
    silhouette_score,
)

__version__ = "1.0.0"

__all__ = [
    "Archetype",
    "EnvironmentType",
    "ServiceCatalog",
    "TrafficDataset",
    "default_catalog",
    "generate_dataset",
    "AgglomerativeClustering",
    "ICNProfiler",
    "KMeans",
    "PCA",
    "rca",
    "rsca",
    "silhouette_score",
    "dunn_index",
    "__version__",
]
