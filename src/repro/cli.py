"""Command-line interface: ``repro-icn`` / ``python -m repro``.

Subcommands:

* ``generate``   — synthesize a dataset and write it to a ``.npz`` file.
* ``profile``    — run the full pipeline and print the profile summary.
* ``scan``       — print the Fig. 2 k-selection table.
* ``figure``     — regenerate one paper figure as a terminal rendering.
* ``validate``   — run the dataset statistical checks.
* ``operations`` — print slice / cache / energy plans (paper Section 7).
* ``report``     — write a markdown operations report for the profile.
* ``stream``     — replay the dataset as hourly batches through the
  online profiler: per-day cluster occupancy, drift check, ingestion
  metrics, optional ``.npz`` checkpoint.
* ``serve``      — start the concurrent profile-serving HTTP endpoint
  (micro-batching, LRU+TTL cache, admission control; ``repro.serve``)
  with the SLO engine and burn-rate alerting attached: ``/healthz``
  readiness, ``/slo`` budget reports, alert gauges on ``/metrics``.
* ``bench-serve`` — measure serving throughput/latency (unbatched vs
  micro-batched at several worker counts) and write ``BENCH_serve.json``.
* ``bench-forest`` — measure raw classify throughput of the object
  forest vs the array-compiled kernel (``repro.ml.compiled``) across
  micro-batch sizes, prove bit-identity, and write ``BENCH_forest.json``.
* ``obs``        — observability tooling (``repro.obs``):
  ``obs trace-export`` runs the instrumented pipeline end-to-end with
  tracing on and writes Chrome ``trace_event`` JSON for flamegraph
  viewing; ``obs dump`` runs it and dumps the metrics registry as
  Prometheus text or JSON; ``obs watch`` renders a live ANSI operator
  dashboard (qps/latency/cache/queue/SLO budgets/alerts) by polling a
  running serve node.
* ``chaos``      — run the scripted fault-injection scenario end-to-end
  (``repro.relia``): I/O-error burst, poisoned hour, duplicate/late
  hours, truncated checkpoint, worker crashes — with SLO burn-rate
  alerts asserted to fire and resolve; exits nonzero unless every
  resilience check passes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.core.pipeline import ICNProfiler
from repro.datagen.dataset import TrafficDataset, generate_dataset
from repro.viz.render import (
    render_beeswarm_table,
    render_dendrogram_summary,
    render_distribution,
    render_heatmap,
    render_histogram,
    render_rsca_heatmap,
    render_sankey,
    render_scan,
)

#: Figures the CLI can regenerate.
FIGURES = ("fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
           "fig9", "fig10", "fig11")


def _load_or_generate(args) -> TrafficDataset:
    if getattr(args, "dataset", None):
        return TrafficDataset.load(args.dataset)
    return generate_dataset(master_seed=args.seed)


def _cmd_generate(args) -> int:
    dataset = generate_dataset(master_seed=args.seed)
    dataset.save(args.output)
    print(
        f"wrote {dataset.n_antennas} antennas x {dataset.n_services} services "
        f"to {args.output}"
    )
    return 0


def _cmd_profile(args) -> int:
    dataset = _load_or_generate(args)
    profiler = ICNProfiler(n_clusters=args.clusters)
    align = dataset.archetypes() if args.align else None
    profile = profiler.fit(dataset, align_to=align)
    print(profile.summary())
    return 0


def _cmd_scan(args) -> int:
    dataset = _load_or_generate(args)
    profiler = ICNProfiler()
    result = profiler.scan_cluster_counts(dataset, ks=range(2, args.max_k + 1))
    print(render_scan(result.ks, result.silhouette, result.dunn))
    return 0


def _cmd_validate(args) -> int:
    from repro.datagen.validate import validate_dataset, validation_report

    dataset = _load_or_generate(args)
    results = validate_dataset(dataset)
    print(validation_report(results))
    return 0 if all(result.passed for result in results) else 1


def _cmd_operations(args) -> int:
    from repro.apps import (
        cluster_aware_gain,
        fleet_energy_saving,
        plan_energy,
        plan_slices,
    )

    dataset = _load_or_generate(args)
    profiler = ICNProfiler(n_clusters=args.clusters)
    align = dataset.archetypes() if args.align else None
    profile = profiler.fit(dataset, align_to=align)
    print("slice templates:")
    for cluster, template in sorted(plan_slices(
            dataset, profile, max_antennas=40).items()):
        print(" ", template.describe())
    aware, global_hit = cluster_aware_gain(
        dataset.totals, profile.labels, dataset.catalog, budget=10
    )
    print(f"caching: cluster-aware hit {aware:.1%} vs global {global_hit:.1%}")
    energy = plan_energy(dataset, profile, max_antennas=40)
    for cluster in sorted(energy):
        print(" ", energy[cluster].describe())
    print(f"fleet energy saving: "
          f"{fleet_energy_saving(energy, profile.cluster_sizes()):.1%}")
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import profile_report

    dataset = _load_or_generate(args)
    profiler = ICNProfiler(n_clusters=args.clusters)
    align = dataset.archetypes() if args.align else None
    profile = profiler.fit(dataset, align_to=align)
    text = profile_report(
        dataset, profile,
        outdoor_count=args.outdoor if args.outdoor else None,
        samples_per_cluster=args.shap_samples,
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_stream(args) -> int:
    from pathlib import Path

    from repro.stream import StreamingProfiler, replay_dataset

    if args.checkpoint:
        parent = Path(args.checkpoint).resolve().parent
        if not parent.is_dir():
            print(
                f"error: checkpoint directory {parent} does not exist",
                file=sys.stderr,
            )
            return 2

    dataset = _load_or_generate(args)
    profiler = ICNProfiler(n_clusters=args.clusters)
    align = dataset.archetypes() if args.align else None
    profile = profiler.fit(dataset, align_to=align)
    frozen = profile.freeze()
    print(
        f"frozen profile: {frozen.n_clusters} clusters over "
        f"{frozen.features.shape[0]} antennas"
    )

    n_hours = dataset.calendar.n_hours
    if args.days > 0:
        n_hours = min(n_hours, args.days * 24)
    antenna_ids = None
    if args.limit > 0:
        antenna_ids = [
            a.antenna_id for a in dataset.antennas[: args.limit]
        ]
    streamer = StreamingProfiler(
        frozen,
        window_hours=args.window_hours,
        classify_every=args.report_every,
        drift_threshold=args.drift_threshold,
    )
    n_replayed = len(antenna_ids) if antenna_ids is not None else dataset.n_antennas
    print(f"replaying {n_hours} hourly batches of {n_replayed} antennas ...")
    for batch in replay_dataset(
        dataset, window=slice(0, n_hours), antenna_ids=antenna_ids
    ):
        result = streamer.ingest(batch)
        if result.occupancy is not None:
            listing = ", ".join(
                f"{c}:{n}" for c, n in sorted(result.occupancy.items()) if n
            )
            print(f"  [{result.hour}] occupancy {listing}")

    signal = streamer.check_drift()
    print(signal.summary())
    if args.checkpoint:
        streamer.checkpoint(args.checkpoint)
        print(f"wrote checkpoint {args.checkpoint}")
    print(streamer.metrics.summary())
    return 0


def _serve_frozen_profile(args):
    """Resolve the profile to serve: a saved artifact or a fresh fit.

    Returns ``(frozen, error_code)``; exactly one is None.
    """
    from pathlib import Path

    from repro.stream import FrozenProfile

    if getattr(args, "frozen", None):
        artifact = Path(args.frozen)
        if not artifact.is_file():
            print(
                f"error: frozen profile {artifact} does not exist",
                file=sys.stderr,
            )
            return None, 2
        return FrozenProfile.load(artifact), None
    dataset = _load_or_generate(args)
    profiler = ICNProfiler(n_clusters=args.clusters)
    align = dataset.archetypes() if args.align else None
    profile = profiler.fit(dataset, align_to=align)
    frozen = profile.freeze(service_totals=dataset.totals.sum(axis=0))
    return frozen, None


def _cmd_serve(args) -> int:
    from repro.obs import enable_tracing, get_registry, tracing_enabled
    from repro.obs.alerts import AlertManager, default_rules
    from repro.obs.prof import ContinuousProfiler
    from repro.obs.slo import SLOEngine, default_slos
    from repro.obs.tsdb import MetricsTSDB
    from repro.serve import ProfileService, ServeMetrics, make_server

    frozen, error = _serve_frozen_profile(args)
    if error is not None:
        return error
    # Back the node's metrics onto the process registry so the SLO
    # sources, the serve counters, and the alert gauges all share one
    # exposition surface (ServeMetrics is private-registry by default).
    registry = get_registry()
    # Tracing powers the exemplar chain: request spans hand their trace
    # ids to the latency histogram buckets, and a firing alert surfaces
    # the worst one.  The store is a bounded ring, so always-on is safe
    # for the lifetime of the node (restored on the way out so an
    # in-process caller — the test suite — is left untouched).
    was_tracing = tracing_enabled()
    enable_tracing()
    service = ProfileService(
        frozen,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        n_workers=args.workers,
        cache_size=args.cache_size,
        cache_ttl_s=args.cache_ttl,
        max_queue_depth=args.queue_depth,
        metrics=ServeMetrics(registry=registry),
    )
    engine = SLOEngine(
        default_slos(registry, window_s=args.slo_window), registry=registry
    )
    manager = AlertManager(engine, default_rules(engine), registry=registry)
    engine.tick()
    # Scrape-driven history: every /metrics|/slo|/healthz|/query hit
    # records one TSDB snapshot, giving /query and the obs-watch
    # sparklines real rate/trend data with no background thread.
    tsdb = MetricsTSDB(registry)
    tsdb.record()
    profiler = None
    if args.profile:
        profiler = ContinuousProfiler(
            hz=args.profile_hz, registry=registry
        ).start()
    server = make_server(service, host=args.host, port=args.port,
                         verbose=args.verbose, slo_engine=engine,
                         alert_manager=manager, profiler=profiler,
                         tsdb=tsdb)
    host, port = server.server_address[:2]
    print(
        f"serving profile version {service.registry.current_version()} "
        f"({frozen.n_clusters} clusters, "
        f"{frozen.features.shape[0]} reference antennas) "
        f"on http://{host}:{port}"
    )
    print(
        f"  micro-batch <= {args.max_batch} rows / {args.max_wait_ms} ms, "
        f"{args.workers} workers, cache {args.cache_size}, "
        f"admission watermark {args.queue_depth}"
    )
    print(
        f"  SLOs: {len(engine.slos)} objectives over "
        f"{args.slo_window:.0f}s windows, {len(manager.alerts)} burn-rate "
        f"alerts — /healthz /slo /metrics /query"
    )
    if profiler is not None:
        print(
            f"  continuous profiler: {args.profile_hz:.0f} Hz, "
            f"<= {profiler.max_overhead:.0%} overhead — /debug/prof"
        )
    try:
        if args.max_requests > 0:
            for _ in range(args.max_requests):
                server.handle_request()
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
        service.close()
        if profiler is not None:
            profiler.stop()
        if not was_tracing:
            from repro.obs import disable_tracing

            disable_tracing()
        print(service.metrics.summary())
    return 0


def _cmd_bench_serve(args) -> int:
    import json as json_module

    from repro.serve import format_report, run_serve_benchmark

    frozen, error = _serve_frozen_profile(args)
    if error is not None:
        return error
    report = run_serve_benchmark(
        frozen,
        n_queries=args.queries,
        worker_counts=args.workers,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        hot_set=args.hot_set,
    )
    print(format_report(report))
    if args.output:
        with open(args.output, "w") as handle:
            json_module.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0


def _cmd_bench_forest(args) -> int:
    import json as json_module

    from repro.ml.bench import format_forest_report, run_forest_benchmark

    frozen, error = _serve_frozen_profile(args)
    if error is not None:
        return error
    try:
        report = run_forest_benchmark(
            frozen,
            n_queries=args.queries,
            batch_sizes=args.batch_sizes,
            repeats=args.repeats,
        )
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    print(format_forest_report(report))
    if args.output:
        with open(args.output, "w") as handle:
            json_module.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0


def _run_instrumented_pipeline(args):
    """Run the full pipeline (fit + SHAP) with tracing enabled.

    Returns ``(trace_store, registry, profile)`` — the observability
    state the ``obs`` subcommands export.  Tracing is restored to its
    prior state on the way out (retained spans stay exportable), so an
    in-process caller — the test suite — is left untouched.
    """
    from repro.obs import (
        disable_tracing,
        enable_tracing,
        get_registry,
        tracing_enabled,
    )

    was_tracing = tracing_enabled()
    store = enable_tracing(clear=True)
    try:
        dataset = _load_or_generate(args)
        profiler = ICNProfiler(n_clusters=args.clusters)
        align = dataset.archetypes() if args.align else None
        profile = profiler.fit(dataset, align_to=align)
        if args.shap_samples > 0:
            profile.explain(samples_per_cluster=args.shap_samples)
    finally:
        if not was_tracing:
            disable_tracing()
    return store, get_registry(), profile


def _cmd_obs_trace_export(args) -> int:
    store, registry, profile = _run_instrumented_pipeline(args)
    n_spans = store.export_chrome(args.output)
    stages = sorted({s.name for s in store.spans()})
    print(
        f"wrote {args.output}: {n_spans} spans over "
        f"{len(stages)} stages ({', '.join(stages)})"
    )
    if args.metrics_output:
        import json as json_module

        with open(args.metrics_output, "w") as handle:
            json_module.dump(registry.to_dict(), handle, indent=2,
                             sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.metrics_output}")
    print(profile.summary())
    return 0


def _cmd_obs_dump(args) -> int:
    import json as json_module

    _store, registry, _profile = _run_instrumented_pipeline(args)
    if args.format == "prometheus":
        text = registry.prometheus_text()
    else:
        text = json_module.dumps(registry.to_dict(), indent=2, sort_keys=True)
        text += "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_obs_watch(args) -> int:
    from repro.obs.dashboard import fetch_json, watch

    if fetch_json(args.url + "/metrics.json") is None:
        print(f"no serve node answering at {args.url}/metrics.json")
        return 1
    frames = watch(
        args.url,
        interval_s=args.interval,
        iterations=args.iterations if args.iterations > 0 else None,
        color=not args.no_color,
        clear=not args.no_clear,
    )
    return 0 if frames > 0 else 1


def _cmd_chaos(args) -> int:
    import json as json_module

    from repro.obs import get_registry, set_log_stream
    from repro.relia.chaos import run_chaos_scenario

    out_dir = Path(args.out) if args.out else None
    log_handle = None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        log_handle = open(out_dir / "chaos_log.jsonl", "w")
        set_log_stream(log_handle)
    try:
        report = run_chaos_scenario(
            seed=args.seed,
            work_dir=str(out_dir) if out_dir else None,
            scale=args.scale,
        )
    finally:
        if log_handle is not None:
            set_log_stream(None)
            log_handle.close()
    if out_dir is not None:
        with open(out_dir / "chaos_report.json", "w") as handle:
            json_module.dump(report.to_dict(), handle, indent=2,
                             sort_keys=True)
            handle.write("\n")
        with open(out_dir / "chaos_metrics.prom", "w") as handle:
            handle.write(get_registry().prometheus_text())
        print(f"wrote {out_dir}/chaos_log.jsonl, chaos_report.json, "
              f"chaos_metrics.prom, chaos_slo_report.json")
    print(report.summary())
    return 0 if report.ok else 1


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _worker_list(text: str) -> List[int]:
    try:
        workers = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        )
    if not workers or any(w < 1 for w in workers):
        raise argparse.ArgumentTypeError(
            f"worker counts must be >= 1, got {text!r}"
        )
    return workers


def _port_number(text: str) -> int:
    value = int(text)
    if not 0 <= value <= 65535:
        raise argparse.ArgumentTypeError(
            f"port must be in [0, 65535], got {value}"
        )
    return value


def _cmd_figure(args) -> int:
    dataset = _load_or_generate(args)
    profiler = ICNProfiler(n_clusters=args.clusters)
    if args.figure == "fig1":
        from repro.core.rca import feature_histograms

        hists = feature_histograms(dataset.totals)
        for key in ("normalized", "rca", "rsca"):
            counts, edges = hists[key]
            print(render_histogram(counts, edges, title=f"Fig. 1 — {key}"))
            print()
        print(f"max RCA observed: {hists['max_rca']:.2f}")
        return 0
    if args.figure == "fig2":
        result = profiler.scan_cluster_counts(dataset, ks=range(2, 16))
        print(render_scan(result.ks, result.silhouette, result.dunn))
        return 0

    align = dataset.archetypes() if args.align else None
    profile = profiler.fit(dataset, align_to=align)
    if args.figure == "fig3":
        print(
            render_dendrogram_summary(
                profile.clustering.linkage_matrix_,
                profile.n_clusters,
                profile.cluster_sizes(),
                profile.groups(3),
            )
        )
    elif args.figure == "fig4":
        print(
            render_rsca_heatmap(
                profile.features, profile.labels, profile.service_names
            )
        )
    elif args.figure == "fig5":
        explanations = profile.explain(samples_per_cluster=40)
        for cluster in sorted(explanations):
            print(render_beeswarm_table(explanations[cluster], top=10))
            print()
    elif args.figure == "fig6":
        print(render_sankey(profile.environment_table().sankey_flows()))
    elif args.figure == "fig7":
        table = profile.environment_table()
        for cluster in sorted(profile.cluster_sizes()):
            composition = table.composition_of(cluster)
            top = sorted(composition.items(), key=lambda kv: kv[1],
                         reverse=True)
            listing = ", ".join(
                f"{env.value} {share:.0%}" for env, share in top if share > 0
            )
            print(f"cluster {cluster}: {listing}")
    elif args.figure == "fig8":
        table = profile.environment_table()
        for env in list(table.environments):
            dist = table.distribution_of(env)
            top = sorted(dist.items(), key=lambda kv: kv[1], reverse=True)
            listing = ", ".join(
                f"c{c} {share:.0%}" for c, share in top if share > 0
            )
            print(f"{env.value}: {listing}")
    elif args.figure == "fig9":
        outdoor_antennas, outdoor_totals = dataset.outdoor(count=args.outdoor)
        comparison = profile.classify_outdoor(outdoor_totals, dataset.totals)
        print(render_distribution(comparison.distribution))
    elif args.figure == "fig10":
        from repro.analysis.temporal import cluster_temporal_heatmap

        for cluster in sorted(profile.cluster_sizes()):
            heatmap = cluster_temporal_heatmap(
                dataset, profile.labels, cluster, max_antennas=60
            )
            print(
                render_heatmap(
                    heatmap.values,
                    [str(d) for d in heatmap.dates],
                    title=f"Fig. 10 — cluster {cluster}",
                )
            )
            print()
    elif args.figure == "fig11":
        from repro.analysis.temporal import service_temporal_heatmap

        panels = (
            ("Spotify", 0), ("Twitter", 0), ("Transportation Websites", 0),
            ("Netflix", 8), ("Waze", 8), ("Snapchat", 8),
            ("Microsoft Teams", 3), ("Netflix", 3), ("Waze", 1),
        )
        for service, cluster in panels:
            heatmap = service_temporal_heatmap(
                dataset, profile.labels, cluster, service, max_antennas=40
            )
            print(
                render_heatmap(
                    heatmap.values,
                    [str(d) for d in heatmap.dates],
                    title=f"Fig. 11 — {service}, cluster {cluster}",
                )
            )
            print()
    else:
        print(f"unknown figure {args.figure!r}; choose from {FIGURES}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-icn",
        description="Reproduction of 'Characterizing Mobile Service Demands "
        "at Indoor Cellular Networks' (IMC '23)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a dataset to .npz")
    gen.add_argument("output", help="output .npz path")
    gen.add_argument("--seed", type=int, default=0)
    gen.set_defaults(func=_cmd_generate)

    prof = sub.add_parser("profile", help="run the full pipeline")
    prof.add_argument("--dataset", help="existing .npz dataset (else generate)")
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument("--clusters", type=int, default=9)
    prof.add_argument("--align", action="store_true",
                      help="align cluster ids to the latent archetypes")
    prof.set_defaults(func=_cmd_profile)

    scan = sub.add_parser("scan", help="Fig. 2 k-selection scan")
    scan.add_argument("--dataset", help="existing .npz dataset (else generate)")
    scan.add_argument("--seed", type=int, default=0)
    scan.add_argument("--max-k", type=int, default=15)
    scan.set_defaults(func=_cmd_scan)

    val = sub.add_parser("validate", help="run dataset statistical checks")
    val.add_argument("--dataset", help="existing .npz dataset (else generate)")
    val.add_argument("--seed", type=int, default=0)
    val.set_defaults(func=_cmd_validate)

    ops = sub.add_parser("operations",
                         help="slice/cache/energy plans (Section 7)")
    ops.add_argument("--dataset", help="existing .npz dataset (else generate)")
    ops.add_argument("--seed", type=int, default=0)
    ops.add_argument("--clusters", type=int, default=9)
    ops.add_argument("--align", action="store_true")
    ops.set_defaults(func=_cmd_operations)

    rep = sub.add_parser("report", help="markdown operations report")
    rep.add_argument("--dataset", help="existing .npz dataset (else generate)")
    rep.add_argument("--seed", type=int, default=0)
    rep.add_argument("--clusters", type=int, default=9)
    rep.add_argument("--align", action="store_true")
    rep.add_argument("--output", help="write to this path (else stdout)")
    rep.add_argument("--outdoor", type=int, default=0,
                     help="include the outdoor comparison with N antennas")
    rep.add_argument("--shap-samples", type=int, default=15)
    rep.set_defaults(func=_cmd_report)

    stream = sub.add_parser(
        "stream",
        help="replay hourly batches through the online profiler",
    )
    stream.add_argument("--dataset", help="existing .npz dataset (else generate)")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--clusters", type=int, default=9)
    stream.add_argument("--align", action="store_true",
                        help="align cluster ids to the latent archetypes")
    stream.add_argument("--days", type=int, default=7,
                        help="replay only the first N days (0 = full period)")
    stream.add_argument("--limit", type=int, default=0,
                        help="replay only the first N antennas (0 = all)")
    stream.add_argument("--window-hours", type=int, default=168,
                        help="sliding recent-history window span")
    stream.add_argument("--report-every", type=int, default=24,
                        help="classify and print occupancy every N batches")
    stream.add_argument("--drift-threshold", type=float, default=1.5)
    stream.add_argument("--checkpoint",
                        help="write accumulator state to this .npz at the end")
    stream.set_defaults(func=_cmd_stream)

    serve = sub.add_parser(
        "serve",
        help="start the concurrent profile-serving HTTP endpoint",
    )
    serve.add_argument("--dataset", help="existing .npz dataset (else generate)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--clusters", type=int, default=9)
    serve.add_argument("--align", action="store_true",
                       help="align cluster ids to the latent archetypes")
    serve.add_argument("--frozen",
                       help="serve this FrozenProfile .npz instead of fitting")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=_port_number, default=8080,
                       help="listening port (0 = pick a free port)")
    serve.add_argument("--max-batch", type=_positive_int, default=64,
                       help="micro-batch row target")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="micro-batch gather window in milliseconds")
    serve.add_argument("--workers", type=_positive_int, default=2,
                       help="classification worker threads")
    serve.add_argument("--cache-size", type=int, default=4096,
                       help="result-cache capacity in vectors (0 disables)")
    serve.add_argument("--cache-ttl", type=float, default=None,
                       help="result-cache TTL in seconds (default: no TTL)")
    serve.add_argument("--queue-depth", type=_positive_int, default=256,
                       help="admission watermark: queued requests before shedding")
    serve.add_argument("--max-requests", type=int, default=0,
                       help="serve N requests then exit (0 = run forever)")
    serve.add_argument("--slo-window", type=float, default=3600.0,
                       help="rolling SLO window in seconds")
    serve.add_argument("--profile", action="store_true",
                       help="run the continuous sampling profiler "
                            "(GET /debug/prof)")
    serve.add_argument("--profile-hz", type=float, default=50.0,
                       help="profiler sampling frequency in Hz")
    serve.add_argument("--verbose", action="store_true",
                       help="log each HTTP request")
    serve.set_defaults(func=_cmd_serve)

    bench = sub.add_parser(
        "bench-serve",
        help="benchmark serving throughput and write BENCH_serve.json",
    )
    bench.add_argument("--dataset", help="existing .npz dataset (else generate)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--clusters", type=int, default=9)
    bench.add_argument("--align", action="store_true")
    bench.add_argument("--frozen",
                       help="benchmark this FrozenProfile .npz instead of fitting")
    bench.add_argument("--queries", type=_positive_int, default=2000,
                       help="total single-vector queries per workload")
    bench.add_argument("--workers", type=_worker_list, default=[1, 4, 8],
                       help="comma-separated worker counts to sweep")
    bench.add_argument("--max-batch", type=_positive_int, default=64)
    bench.add_argument("--max-wait-ms", type=float, default=2.0)
    bench.add_argument("--hot-set", type=_positive_int, default=64,
                       help="distinct vectors in the cache workload")
    bench.add_argument("--output", default="BENCH_serve.json",
                       help="write the JSON report here ('' skips the file)")
    bench.set_defaults(func=_cmd_bench_serve)

    forest_bench = sub.add_parser(
        "bench-forest",
        help="benchmark object vs compiled forest inference and write "
             "BENCH_forest.json",
    )
    forest_bench.add_argument("--dataset",
                              help="existing .npz dataset (else generate)")
    forest_bench.add_argument("--seed", type=int, default=0)
    forest_bench.add_argument("--clusters", type=int, default=9)
    forest_bench.add_argument("--align", action="store_true")
    forest_bench.add_argument(
        "--frozen",
        help="benchmark this FrozenProfile .npz instead of fitting",
    )
    forest_bench.add_argument("--queries", type=_positive_int, default=512,
                              help="query rows per timed pass")
    forest_bench.add_argument(
        "--batch-sizes", type=_worker_list, default=[1, 64, 256],
        help="comma-separated micro-batch sizes to sweep",
    )
    forest_bench.add_argument("--repeats", type=_positive_int, default=2,
                              help="timed passes per path (best kept)")
    forest_bench.add_argument(
        "--output", default="BENCH_forest.json",
        help="write the JSON report here ('' skips the file)",
    )
    forest_bench.set_defaults(func=_cmd_bench_forest)

    obs = sub.add_parser(
        "obs",
        help="observability tooling: trace export, metrics dumps, "
             "live dashboard",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    def _add_obs_pipeline_args(parser) -> None:
        parser.add_argument("--dataset",
                            help="existing .npz dataset (else generate)")
        parser.add_argument("--seed", type=int, default=0)
        parser.add_argument("--clusters", type=int, default=9)
        parser.add_argument("--align", action="store_true",
                            help="align cluster ids to the latent archetypes")
        parser.add_argument("--shap-samples", type=int, default=15,
                            help="SHAP samples per cluster (0 skips the "
                                 "pipeline.shap stage)")

    trace_export = obs_sub.add_parser(
        "trace-export",
        help="run the instrumented pipeline and export Chrome trace JSON",
    )
    _add_obs_pipeline_args(trace_export)
    trace_export.add_argument("--output", default="trace.json",
                              help="Chrome trace_event JSON path")
    trace_export.add_argument("--metrics-output",
                              help="also dump the metrics registry as JSON")
    trace_export.set_defaults(func=_cmd_obs_trace_export)

    dump = obs_sub.add_parser(
        "dump",
        help="run the instrumented pipeline and dump the metrics registry",
    )
    _add_obs_pipeline_args(dump)
    dump.add_argument("--format", choices=("prometheus", "json"),
                      default="prometheus")
    dump.add_argument("--output", help="write to this path (else stdout)")
    dump.set_defaults(func=_cmd_obs_dump)

    watch = obs_sub.add_parser(
        "watch",
        help="live ANSI dashboard polling a running serve node",
    )
    watch.add_argument("--url", default="http://127.0.0.1:8080",
                       help="base URL of the serve node to poll")
    watch.add_argument("--interval", type=float, default=2.0,
                       help="seconds between dashboard refreshes")
    watch.add_argument("--iterations", type=int, default=0,
                       help="render N frames then exit (0 = until Ctrl-C)")
    watch.add_argument("--no-color", action="store_true",
                       help="plain-text output (no ANSI colors)")
    watch.add_argument("--no-clear", action="store_true",
                       help="append frames instead of repainting the screen")
    watch.set_defaults(func=_cmd_obs_watch)

    fig = sub.add_parser("figure", help="regenerate one paper figure")
    fig.add_argument("figure", choices=FIGURES)
    fig.add_argument("--dataset", help="existing .npz dataset (else generate)")
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument("--clusters", type=int, default=9)
    fig.add_argument("--align", action="store_true")
    fig.add_argument("--outdoor", type=int, default=2000,
                     help="outdoor antenna count for fig9")
    fig.set_defaults(func=_cmd_figure)

    chaos = sub.add_parser(
        "chaos",
        help="run the scripted fault-injection scenario end-to-end",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="seeds dataset, fault plan, and jitter RNGs")
    chaos.add_argument("--out",
                       help="directory for chaos_log.jsonl, "
                            "chaos_report.json, chaos_metrics.prom, "
                            "chaos_slo_report.json")
    chaos.add_argument("--scale", type=float, default=0.05,
                       help="deployment scale vs the paper's Table 1")
    chaos.set_defaults(func=_cmd_chaos)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
