"""TreeSHAP: exact Shapley values for tree ensembles in polynomial time.

Implements the path-dependent TreeSHAP algorithm of Lundberg et al.
("From local explanations to global understanding with explainable AI for
trees", Nature MI 2020) for the from-scratch CART trees and random forest
of ``repro.ml``.  The algorithm tracks, along each root-to-leaf path, the
proportion of feature-coalition subsets flowing hot (following x) and cold
(marginalized by training-sample proportions), yielding the Shapley values
of the tree's path-dependent conditional expectation — the same value
function exposed by
:func:`repro.explain.shapley.tree_conditional_expectation`, against which
this implementation is verified.

Multiclass trees are handled in a single pass: leaf contributions are the
full class-probability vectors, so one traversal attributes all classes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier, TreeStructure
from repro.utils.checks import check_matrix


class _Path:
    """The unique-feature path state of the TreeSHAP recursion."""

    __slots__ = ("feature", "zero", "one", "weight")

    def __init__(self, capacity: int) -> None:
        self.feature = np.empty(capacity, dtype=np.int64)
        self.zero = np.empty(capacity)
        self.one = np.empty(capacity)
        self.weight = np.empty(capacity)

    def copy_from(self, other: "_Path", length: int) -> None:
        self.feature[:length] = other.feature[:length]
        self.zero[:length] = other.zero[:length]
        self.one[:length] = other.one[:length]
        self.weight[:length] = other.weight[:length]


def _extend(path: _Path, depth: int, pz: float, po: float, pi: int) -> None:
    """Append a path element and update subset weights (EXTEND)."""
    path.feature[depth] = pi
    path.zero[depth] = pz
    path.one[depth] = po
    path.weight[depth] = 1.0 if depth == 0 else 0.0
    for i in range(depth - 1, -1, -1):
        path.weight[i + 1] += po * path.weight[i] * (i + 1) / (depth + 1)
        path.weight[i] = pz * path.weight[i] * (depth - i) / (depth + 1)


def _unwind(path: _Path, depth: int, index: int) -> None:
    """Remove path element ``index``, restoring pre-extend weights (UNWIND)."""
    one = path.one[index]
    zero = path.zero[index]
    next_one = path.weight[depth]
    for i in range(depth - 1, -1, -1):
        if one != 0:
            tmp = path.weight[i]
            path.weight[i] = next_one * (depth + 1) / ((i + 1) * one)
            next_one = tmp - path.weight[i] * zero * (depth - i) / (depth + 1)
        else:
            path.weight[i] = path.weight[i] * (depth + 1) / (zero * (depth - i))
    for i in range(index, depth):
        path.feature[i] = path.feature[i + 1]
        path.zero[i] = path.zero[i + 1]
        path.one[i] = path.one[i + 1]


def _unwound_sum(path: _Path, depth: int, index: int) -> float:
    """Sum of weights if element ``index`` were unwound (no mutation)."""
    one = path.one[index]
    zero = path.zero[index]
    next_one = path.weight[depth]
    total = 0.0
    if one != 0:
        for i in range(depth - 1, -1, -1):
            tmp = next_one * (depth + 1) / ((i + 1) * one)
            total += tmp
            next_one = path.weight[i] - tmp * zero * (depth - i) / (depth + 1)
    else:
        for i in range(depth - 1, -1, -1):
            total += path.weight[i] * (depth + 1) / (zero * (depth - i))
    return total


def tree_shap_values(
    tree: TreeStructure, x: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """TreeSHAP attributions of one instance for one tree.

    Args:
        tree: fitted tree structure (all classes).
        x: instance vector (length M).

    Returns:
        ``(phi, base)`` where ``phi`` has shape (M, n_classes) and ``base``
        (n_classes,) is the tree's expected output; local accuracy gives
        ``base + phi.sum(axis=0) == tree prediction at x`` per class.
    """
    x = np.asarray(x, dtype=float).ravel()
    n_classes = tree.value.shape[1]
    phi = np.zeros((x.size, n_classes))

    max_depth = tree.max_depth() + 2
    paths = [_Path(max_depth + 1) for _ in range(max_depth + 1)]

    def recurse(
        node: int, depth: int, level: int, pz: float, po: float, pi: int
    ) -> None:
        path = paths[level]
        if level > 0:
            path.copy_from(paths[level - 1], depth)
        _extend(path, depth, pz, po, pi)
        if tree.is_leaf(node):
            leaf_value = tree.value[node]
            for i in range(1, depth + 1):
                w = _unwound_sum(path, depth, i)
                feat = int(path.feature[i])
                phi[feat] += w * (path.one[i] - path.zero[i]) * leaf_value
            return
        feature = int(tree.feature[node])
        left = int(tree.children_left[node])
        right = int(tree.children_right[node])
        if x[feature] <= tree.threshold[node]:
            hot, cold = left, right
        else:
            hot, cold = right, left
        node_weight = float(tree.n_node_samples[node])
        hot_zero = tree.n_node_samples[hot] / node_weight
        cold_zero = tree.n_node_samples[cold] / node_weight
        incoming_zero = 1.0
        incoming_one = 1.0
        new_depth = depth
        found = -1
        for idx in range(depth + 1):
            if path.feature[idx] == feature:
                found = idx
                break
        if found >= 0:
            incoming_zero = float(path.zero[found])
            incoming_one = float(path.one[found])
            _unwind(path, depth, found)
            new_depth = depth - 1
        recurse(hot, new_depth + 1, level + 1,
                hot_zero * incoming_zero, incoming_one, feature)
        recurse(cold, new_depth + 1, level + 1,
                cold_zero * incoming_zero, 0.0, feature)

    recurse(0, 0, 0, 1.0, 1.0, -1)

    base = _expected_value(tree)
    return phi, base


def _expected_value(tree: TreeStructure) -> np.ndarray:
    """Training-weighted expected output vector of a tree."""
    root_weight = float(tree.n_node_samples[0])
    leaves = np.flatnonzero(tree.children_left == -1)
    weights = tree.n_node_samples[leaves] / root_weight
    return weights @ tree.value[leaves]


class TreeExplainer:
    """SHAP explainer for the library's tree and forest classifiers.

    >>> explainer = TreeExplainer(forest)          # doctest: +SKIP
    >>> phi = explainer.shap_values(features)      # (n, M, n_classes)
    """

    def __init__(
        self, model: Union[DecisionTreeClassifier, RandomForestClassifier]
    ) -> None:
        if isinstance(model, DecisionTreeClassifier):
            if model.tree_ is None:
                raise RuntimeError("tree is not fitted; call fit() first")
            self._trees = [model]
        elif isinstance(model, RandomForestClassifier):
            if not model.trees_:
                raise RuntimeError("forest is not fitted; call fit() first")
            self._trees = list(model.trees_)
        else:
            raise TypeError(
                f"TreeExplainer supports the repro.ml tree/forest models, "
                f"got {type(model).__name__}"
            )
        self.model = model
        self.classes_ = np.asarray(model.classes_)
        self.n_features_ = model.n_features_

    @property
    def expected_value(self) -> np.ndarray:
        """Ensemble base values per class (mean of tree expectations)."""
        base = np.zeros(self.classes_.size)
        for tree_model in self._trees:
            cols = np.searchsorted(self.classes_, tree_model.classes_)
            base[cols] += _expected_value(tree_model.tree_)
        return base / len(self._trees)

    def shap_values(self, x: np.ndarray) -> np.ndarray:
        """SHAP values for every row of ``x``.

        Returns an array of shape ``(n_samples, n_features, n_classes)``;
        for each class, row sums plus the class base value equal the
        ensemble's predicted probability (local accuracy).
        """
        x = check_matrix(x, "x")
        if x.shape[1] != self.n_features_:
            raise ValueError(
                f"x has {x.shape[1]} features, the model was fitted on "
                f"{self.n_features_}"
            )
        out = np.zeros((x.shape[0], x.shape[1], self.classes_.size))
        for tree_model in self._trees:
            cols = np.searchsorted(self.classes_, tree_model.classes_)
            tree = tree_model.tree_
            for row in range(x.shape[0]):
                phi, _ = tree_shap_values(tree, x[row])
                out[row][:, cols] += phi
        return out / len(self._trees)

    def shap_values_for_class(self, x: np.ndarray, class_label) -> np.ndarray:
        """SHAP values for a single output class, shape (n_samples, M)."""
        matches = np.flatnonzero(self.classes_ == class_label)
        if matches.size == 0:
            raise ValueError(
                f"unknown class {class_label!r}; classes are {self.classes_.tolist()}"
            )
        return self.shap_values(x)[:, :, matches[0]]
