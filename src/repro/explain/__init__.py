"""Explainable-ML substrate: exact Shapley, Kernel SHAP, TreeSHAP."""

from repro.explain.shapley import (
    coalition_value_fn,
    exact_shapley,
    exact_tree_shapley,
    tree_conditional_expectation,
)
from repro.explain.kernel import kernel_shap, shapley_kernel_weight
from repro.explain.treeshap import TreeExplainer, tree_shap_values
from repro.explain.beeswarm import (
    ClusterExplanation,
    ServiceImportance,
    explain_clusters,
)
from repro.explain.permutation import (
    PermutationImportance,
    permutation_importance,
)

__all__ = [
    "coalition_value_fn",
    "exact_shapley",
    "exact_tree_shapley",
    "tree_conditional_expectation",
    "kernel_shap",
    "shapley_kernel_weight",
    "TreeExplainer",
    "tree_shap_values",
    "ClusterExplanation",
    "ServiceImportance",
    "explain_clusters",
    "PermutationImportance",
    "permutation_importance",
]
