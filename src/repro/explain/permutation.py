"""Permutation feature importance — the model-agnostic baseline explainer.

SHAP's per-cluster rankings (Fig. 5) should broadly agree with the
simpler permutation importance: shuffle one feature and measure how much
the surrogate's accuracy drops.  The ablation suite uses this agreement
as a sanity check on the SHAP implementation; the module is also useful
on its own when TreeSHAP's cost is not warranted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.utils.checks import check_matrix


@dataclass(frozen=True)
class PermutationImportance:
    """Importance of every feature, with repeat statistics."""

    mean_drop: np.ndarray  # (n_features,) mean accuracy drop
    std_drop: np.ndarray  # (n_features,) std over repeats
    baseline_accuracy: float

    def ranking(self) -> np.ndarray:
        """Feature indices, most important first."""
        return np.argsort(self.mean_drop)[::-1]

    def top(self, k: int, names: Optional[Sequence[str]] = None) -> List:
        """The k most important features (indices, or names if given)."""
        order = self.ranking()[:k]
        if names is None:
            return [int(j) for j in order]
        return [names[j] for j in order]


def permutation_importance(
    model,
    x: np.ndarray,
    y: np.ndarray,
    n_repeats: int = 5,
    random_state: int = 0,
) -> PermutationImportance:
    """Accuracy drop when each feature is shuffled.

    Args:
        model: any fitted classifier exposing ``predict``.
        x: evaluation features (N x M).
        y: true labels (N).
        n_repeats: shuffles per feature (averaged).
        random_state: shuffle seed.
    """
    x = check_matrix(x, "x")
    y = np.asarray(y)
    if y.shape[0] != x.shape[0]:
        raise ValueError(
            f"y length {y.shape[0]} != number of rows {x.shape[0]}"
        )
    if n_repeats < 1:
        raise ValueError(f"n_repeats must be >= 1, got {n_repeats}")
    rng = np.random.default_rng(random_state)
    baseline = float(np.mean(model.predict(x) == y))
    n_features = x.shape[1]
    drops = np.zeros((n_features, n_repeats))
    work = x.copy()
    for j in range(n_features):
        original = work[:, j].copy()
        for r in range(n_repeats):
            work[:, j] = rng.permutation(original)
            accuracy = float(np.mean(model.predict(work) == y))
            drops[j, r] = baseline - accuracy
        work[:, j] = original
    return PermutationImportance(
        mean_drop=drops.mean(axis=1),
        std_drop=drops.std(axis=1),
        baseline_accuracy=baseline,
    )
