"""Kernel SHAP: model-agnostic Shapley approximation (Lundberg & Lee 2017).

Kernel SHAP recovers the Shapley values as the solution of a weighted
linear regression over coalition indicator vectors z' in {0, 1}^M, with
the Shapley kernel weights::

    pi(z') = (M - 1) / (C(M, |z'|) * |z'| * (M - |z'|))

The two degenerate coalitions (empty and full) carry infinite weight and
are enforced as the constraints ``u(0) = E[f]`` and ``u(1) = f(x)``; the
regression eliminates one coefficient using the full-coalition constraint,
so local accuracy holds exactly.  With all 2^M - 2 coalitions enumerated,
the result equals the exact Shapley values; with sampling it approximates
them.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Callable, Optional

import numpy as np

from repro.explain.shapley import ModelFn, coalition_value_fn
from repro.utils.checks import check_matrix


def shapley_kernel_weight(n_features: int, subset_size: int) -> float:
    """The Shapley kernel pi(z') for a coalition of ``subset_size``."""
    if not 0 < subset_size < n_features:
        raise ValueError(
            f"kernel weight undefined for subset size {subset_size} of "
            f"{n_features} (empty/full coalitions are constraints)"
        )
    return (n_features - 1) / (
        comb(n_features, subset_size) * subset_size * (n_features - subset_size)
    )


def _enumerate_coalitions(n_features: int) -> np.ndarray:
    """All 2^M - 2 proper coalitions as a binary matrix."""
    rows = []
    for size in range(1, n_features):
        for subset in combinations(range(n_features), size):
            row = np.zeros(n_features)
            row[list(subset)] = 1.0
            rows.append(row)
    return np.vstack(rows)


def _sample_coalitions(
    n_features: int, n_samples: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample proper coalitions, sizes drawn per the Shapley kernel mass."""
    sizes = np.arange(1, n_features)
    mass = np.array(
        [shapley_kernel_weight(n_features, s) * comb(n_features, s) for s in sizes]
    )
    mass = mass / mass.sum()
    rows = np.zeros((n_samples, n_features))
    drawn_sizes = rng.choice(sizes, size=n_samples, p=mass)
    for i, size in enumerate(drawn_sizes):
        chosen = rng.choice(n_features, size=int(size), replace=False)
        rows[i, chosen] = 1.0
    return rows


def kernel_shap(
    model: ModelFn,
    x: np.ndarray,
    background: np.ndarray,
    n_samples: Optional[int] = None,
    random_state: int = 0,
) -> np.ndarray:
    """Kernel SHAP attributions for one instance.

    Args:
        model: maps a (rows, M) matrix to scalar outputs per row.
        x: the instance to explain (length M).
        background: background data for feature removal.
        n_samples: number of sampled coalitions; None enumerates all
            2^M - 2 (exact, feasible for small M).
        random_state: seed for coalition sampling.

    Returns:
        length-M attribution vector satisfying local accuracy.
    """
    x = np.asarray(x, dtype=float).ravel()
    m = x.size
    if m < 2:
        raise ValueError("kernel SHAP needs at least two features")
    if n_samples is None and m > 16:
        raise ValueError(
            f"full enumeration over {m} features is infeasible; pass n_samples"
        )
    value = coalition_value_fn(model, x, background)
    base_value = value(())
    full_value = value(tuple(range(m)))

    if n_samples is None:
        coalitions = _enumerate_coalitions(m)
    else:
        rng = np.random.default_rng(random_state)
        coalitions = _sample_coalitions(m, int(n_samples), rng)

    sizes = coalitions.sum(axis=1).astype(int)
    weights = np.array([shapley_kernel_weight(m, s) for s in sizes])
    targets = np.array([
        value(tuple(np.flatnonzero(row))) for row in coalitions
    ])

    # Eliminate phi_{m-1} with the constraint sum(phi) = f(x) - E[f]:
    # u(z) - base = sum_j z_j phi_j
    #             = sum_{j<m-1} (z_j - z_{m-1}) phi_j + z_{m-1} (f(x) - base)
    excess = full_value - base_value
    design = coalitions[:, :-1] - coalitions[:, -1:]
    response = targets - base_value - coalitions[:, -1] * excess
    sqrt_w = np.sqrt(weights)
    solution, *_ = np.linalg.lstsq(
        design * sqrt_w[:, None], response * sqrt_w, rcond=None
    )
    phi = np.empty(m)
    phi[:-1] = solution
    phi[-1] = excess - solution.sum()
    return phi
