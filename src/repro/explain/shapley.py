"""Exact Shapley values by subset enumeration (paper Eq. 4).

The exact estimator enumerates all feature coalitions, so it is only
feasible for small M; it serves as the ground truth against which the
Kernel SHAP and TreeSHAP approximations are validated (the paper's local
accuracy / missingness / consistency properties pin the attributions to
exactly these values).

Feature "removal" follows the paper's Section 5.1.1 remark: an excluded
feature's value is replaced by background values drawn from the training
data, and the model response averaged over the background sample.
"""

from __future__ import annotations

from itertools import combinations
from math import factorial
from typing import Callable, Optional, Sequence

import numpy as np

from repro.ml.tree import DecisionTreeClassifier, TreeStructure
from repro.utils.checks import check_matrix

ModelFn = Callable[[np.ndarray], np.ndarray]


def coalition_value_fn(
    model: ModelFn, x: np.ndarray, background: np.ndarray
) -> Callable[[Sequence[int]], float]:
    """Build v(S): expected model output with only features S fixed to x.

    Features outside ``S`` take the background rows' values; the model is
    evaluated on every completed row and averaged.
    """
    x = np.asarray(x, dtype=float).ravel()
    background = check_matrix(background, "background")
    if background.shape[1] != x.size:
        raise ValueError(
            f"background has {background.shape[1]} features, x has {x.size}"
        )

    def value(subset: Sequence[int]) -> float:
        rows = background.copy()
        idx = list(subset)
        if idx:
            rows[:, idx] = x[idx]
        return float(np.mean(model(rows)))

    return value


def exact_shapley(
    model: ModelFn,
    x: np.ndarray,
    background: np.ndarray,
    max_features: int = 16,
) -> np.ndarray:
    """Exact Shapley values of every feature for one instance — Eq. 4.

    Args:
        model: maps a (rows, M) matrix to scalar outputs per row.
        x: the instance to explain (length M).
        background: training-data sample used for feature removal.
        max_features: safety cap — enumeration is O(2^M).

    Returns:
        length-M array of attributions; they satisfy local accuracy:
        ``sum(phi) = f(x) - E_background[f]``.
    """
    x = np.asarray(x, dtype=float).ravel()
    m = x.size
    if m > max_features:
        raise ValueError(
            f"exact enumeration over {m} features requires 2^{m} evaluations; "
            f"raise max_features explicitly if that is intended"
        )
    value = coalition_value_fn(model, x, background)
    # Precompute v(S) for all subsets, keyed by frozenset bitmask.
    values = {}
    features = list(range(m))
    for size in range(m + 1):
        for subset in combinations(features, size):
            mask = 0
            for f in subset:
                mask |= 1 << f
            values[mask] = value(subset)
    phi = np.zeros(m)
    fact = [factorial(i) for i in range(m + 1)]
    for i in features:
        others = [f for f in features if f != i]
        for size in range(m):
            weight = fact[size] * fact[m - size - 1] / fact[m]
            for subset in combinations(others, size):
                mask = 0
                for f in subset:
                    mask |= 1 << f
                phi[i] += weight * (values[mask | (1 << i)] - values[mask])
    return phi


def tree_conditional_expectation(
    tree: TreeStructure,
    x: np.ndarray,
    fixed_features: Sequence[int],
    class_index: int,
) -> float:
    """Expected leaf value of a tree with only some features observed.

    Features in ``fixed_features`` route deterministically by ``x``; at
    splits on any other feature the expectation branches to both children
    weighted by training-sample proportions.  This is the *path-dependent*
    value function that TreeSHAP attributes exactly — exposing it lets the
    test suite validate TreeSHAP against :func:`exact_shapley` built on the
    same conditional expectation.
    """
    x = np.asarray(x, dtype=float).ravel()
    fixed = set(int(f) for f in fixed_features)

    def walk(node: int) -> float:
        if tree.is_leaf(node):
            return float(tree.value[node, class_index])
        feature = int(tree.feature[node])
        left = int(tree.children_left[node])
        right = int(tree.children_right[node])
        if feature in fixed:
            child = left if x[feature] <= tree.threshold[node] else right
            return walk(child)
        n_left = tree.n_node_samples[left]
        n_right = tree.n_node_samples[right]
        total = n_left + n_right
        return (n_left * walk(left) + n_right * walk(right)) / total

    return walk(0)


def exact_tree_shapley(
    tree_model: DecisionTreeClassifier,
    x: np.ndarray,
    class_index: int,
    max_features: int = 16,
) -> np.ndarray:
    """Exact Shapley values under a tree's path-dependent value function.

    Brute-force counterpart of TreeSHAP, used for cross-validation tests.
    """
    if tree_model.tree_ is None:
        raise RuntimeError("tree is not fitted; call fit() first")
    x = np.asarray(x, dtype=float).ravel()
    m = x.size
    if m > max_features:
        raise ValueError(
            f"exact enumeration over {m} features requires 2^{m} evaluations"
        )
    tree = tree_model.tree_
    values = {}
    features = list(range(m))
    for size in range(m + 1):
        for subset in combinations(features, size):
            mask = 0
            for f in subset:
                mask |= 1 << f
            values[mask] = tree_conditional_expectation(tree, x, subset, class_index)
    phi = np.zeros(m)
    fact = [factorial(i) for i in range(m + 1)]
    for i in features:
        others = [f for f in features if f != i]
        for size in range(m):
            weight = fact[size] * fact[m - size - 1] / fact[m]
            for subset in combinations(others, size):
                mask = 0
                for f in subset:
                    mask |= 1 << f
                phi[i] += weight * (values[mask | (1 << i)] - values[mask])
    return phi
