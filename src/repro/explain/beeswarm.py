"""Per-cluster SHAP summaries: the data behind the paper's Fig. 5 beeswarms.

For each cluster, the paper ranks the 25 most influential services by mean
absolute SHAP value and reads the *direction* of influence from the
feature-value colouring: positive SHAP coupled with high RSCA means the
cluster is characterized by over-utilization of the service; positive SHAP
with low RSCA means under-utilization.  This module computes those
rankings and directions from the TreeSHAP output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.explain.treeshap import TreeExplainer
from repro.utils.checks import check_matrix


@dataclass(frozen=True)
class ServiceImportance:
    """One service's influence on membership of one cluster."""

    service: str
    mean_abs_shap: float
    direction: str  # "over" or "under"
    correlation: float  # Pearson corr(feature value, SHAP value)

    def __post_init__(self) -> None:
        if self.direction not in ("over", "under"):
            raise ValueError(
                f"direction must be 'over' or 'under', got {self.direction!r}"
            )


@dataclass
class ClusterExplanation:
    """SHAP summary for one cluster (one beeswarm panel of Fig. 5)."""

    cluster: int
    importances: List[ServiceImportance]

    def top(self, k: int = 25) -> List[ServiceImportance]:
        """The k most influential services (paper shows 25 per panel)."""
        return self.importances[:k]

    def over_utilized(self, k: int = 25) -> List[str]:
        """Names of over-utilization-driven services among the top k."""
        return [si.service for si in self.top(k) if si.direction == "over"]

    def under_utilized(self, k: int = 25) -> List[str]:
        """Names of under-utilization-driven services among the top k."""
        return [si.service for si in self.top(k) if si.direction == "under"]

    def rank_of(self, service: str) -> Optional[int]:
        """0-based importance rank of a service, or None if absent."""
        for rank, si in enumerate(self.importances):
            if si.service == service:
                return rank
        return None


def _direction(feature_values: np.ndarray, shap_values: np.ndarray) -> tuple:
    """Direction of influence from the value/SHAP relationship.

    Positive correlation — high feature values push the sample *into* the
    cluster — marks over-utilization; negative marks under-utilization.
    """
    std_f = feature_values.std()
    std_s = shap_values.std()
    if std_f == 0 or std_s == 0:
        return "over", 0.0
    corr = float(np.corrcoef(feature_values, shap_values)[0, 1])
    return ("over" if corr >= 0 else "under"), corr


def explain_clusters(
    explainer: TreeExplainer,
    features: np.ndarray,
    labels: Sequence[int],
    service_names: Sequence[str],
    samples_per_cluster: Optional[int] = 150,
    random_state: int = 0,
) -> Dict[int, ClusterExplanation]:
    """Build per-cluster SHAP summaries (the Fig. 5 panels).

    For each cluster the SHAP values of that cluster's *own* class output
    are computed over (a sample of) its member antennas, then services are
    ranked by mean |SHAP| and labelled by direction.

    Args:
        explainer: fitted :class:`TreeExplainer` over the surrogate.
        features: N x M RSCA matrix the surrogate was trained on.
        labels: cluster label per antenna.
        service_names: feature names, column order.
        samples_per_cluster: cap on explained members per cluster
            (TreeSHAP cost is linear in samples; None = all members).
        random_state: sampling seed.
    """
    x = check_matrix(features, "features")
    labels = np.asarray(labels, dtype=int)
    if labels.shape[0] != x.shape[0]:
        raise ValueError(
            f"labels length {labels.shape[0]} != number of rows {x.shape[0]}"
        )
    if len(service_names) != x.shape[1]:
        raise ValueError(
            f"{len(service_names)} service names for {x.shape[1]} features"
        )
    rng = np.random.default_rng(random_state)
    # One stratified sample over ALL antennas: like the paper's beeswarms,
    # each panel colours members and non-members of the cluster alike, so
    # a service's direction reflects whether high RSCA pulls antennas
    # *into* the cluster.  A single TreeSHAP pass serves every class.
    sample_parts = []
    for cluster in np.unique(labels):
        members = np.flatnonzero(labels == cluster)
        if samples_per_cluster is not None and members.size > samples_per_cluster:
            members = rng.choice(members, size=samples_per_cluster, replace=False)
        sample_parts.append(members)
    sample = np.concatenate(sample_parts)
    all_values = explainer.shap_values(x[sample])
    explanations: Dict[int, ClusterExplanation] = {}
    for cluster in np.unique(labels):
        class_col = int(np.flatnonzero(explainer.classes_ == cluster)[0])
        shap_matrix = all_values[:, :, class_col]
        mean_abs = np.abs(shap_matrix).mean(axis=0)
        order = np.argsort(mean_abs)[::-1]
        importances = []
        for j in order:
            direction, corr = _direction(x[sample][:, j], shap_matrix[:, j])
            importances.append(
                ServiceImportance(
                    service=service_names[j],
                    mean_abs_shap=float(mean_abs[j]),
                    direction=direction,
                    correlation=corr,
                )
            )
        explanations[int(cluster)] = ClusterExplanation(
            cluster=int(cluster), importances=importances
        )
    return explanations
