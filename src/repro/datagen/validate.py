"""Dataset statistical validation.

Before trusting any downstream analysis, a generated (or ingested)
dataset can be checked against the structural properties the paper's
measurements exhibit: Table 1 environment counts, heavy-tailed service
volumes (Fig. 1's premise), per-antenna volume heterogeneity, weekday
diurnality, and parseable BS names.  Each check returns a
:class:`CheckResult` so reports can be rendered or asserted on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.datagen.dataset import TrafficDataset
from repro.datagen.environments import TABLE1_COUNTS


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one validation check."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: {self.detail}"


def check_environment_counts(
    dataset: TrafficDataset, expected: Optional[Dict] = None
) -> CheckResult:
    """Antenna counts per extracted environment match the expectation."""
    # Imported lazily: repro.analysis depends on repro.datagen at import
    # time, so a top-level import here would be circular.
    from repro.analysis.environment import extract_environment

    expected = TABLE1_COUNTS if expected is None else expected
    counts: Dict = {}
    unparsed = 0
    for name in dataset.antenna_names():
        env = extract_environment(name)
        if env is None:
            unparsed += 1
            continue
        counts[env] = counts.get(env, 0) + 1
    mismatches = [
        f"{env.value}: {counts.get(env, 0)} != {count}"
        for env, count in expected.items()
        if counts.get(env, 0) != count
    ]
    if unparsed:
        mismatches.append(f"{unparsed} unparseable names")
    if mismatches:
        return CheckResult("environment_counts", False, "; ".join(mismatches))
    return CheckResult(
        "environment_counts", True,
        f"all {sum(expected.values())} antennas classified as expected",
    )


def check_heavy_tail(dataset: TrafficDataset, top_share: float = 0.4) -> CheckResult:
    """A few services dominate total volume (the Fig. 1 skew premise)."""
    service_totals = np.sort(dataset.totals.sum(axis=0))[::-1]
    share = float(service_totals[:10].sum() / service_totals.sum())
    passed = share >= top_share
    return CheckResult(
        "heavy_tail", passed,
        f"top-10 services carry {share:.0%} of traffic "
        f"(threshold {top_share:.0%})",
    )


def check_volume_heterogeneity(
    dataset: TrafficDataset, min_ratio: float = 8.0
) -> CheckResult:
    """Antenna volumes span at least ``min_ratio`` between deciles."""
    volumes = dataset.totals.sum(axis=1)
    p90, p10 = np.percentile(volumes, [90, 10])
    ratio = float(p90 / p10) if p10 > 0 else float("inf")
    passed = ratio >= min_ratio
    return CheckResult(
        "volume_heterogeneity", passed,
        f"p90/p10 antenna volume ratio {ratio:.1f} "
        f"(threshold {min_ratio:.0f})",
    )  # the paper notes antennas "serve highly heterogeneous volumes"


def check_diurnality(
    dataset: TrafficDataset, sample_antennas: int = 40, min_ratio: float = 2.0
) -> CheckResult:
    """Daytime traffic exceeds night traffic on a weekday sample."""
    rng = np.random.default_rng(0)
    ids = rng.choice(dataset.n_antennas,
                     size=min(sample_antennas, dataset.n_antennas),
                     replace=False)
    hourly = dataset.hourly_total(antenna_ids=ids)
    hod = dataset.calendar.hour_of_day()
    weekday = ~dataset.calendar.is_weekend()
    day = hourly[:, weekday & (hod >= 10) & (hod < 20)].mean()
    night = hourly[:, weekday & (hod >= 1) & (hod < 5)].mean()
    ratio = float(day / night) if night > 0 else float("inf")
    passed = ratio >= min_ratio
    return CheckResult(
        "diurnality", passed,
        f"weekday day/night traffic ratio {ratio:.1f} "
        f"(threshold {min_ratio:.0f})",
    )


def check_totals_positive(dataset: TrafficDataset) -> CheckResult:
    """Every antenna-service cell carries positive traffic."""
    negatives = int(np.sum(dataset.totals < 0))
    zero_rows = int(np.sum(dataset.totals.sum(axis=1) == 0))
    passed = negatives == 0 and zero_rows == 0
    return CheckResult(
        "totals_positive", passed,
        f"{negatives} negative cells, {zero_rows} silent antennas",
    )


def validate_dataset(
    dataset: TrafficDataset, expected_counts: Optional[Dict] = None
) -> List[CheckResult]:
    """Run every structural check; returns the full report."""
    return [
        check_environment_counts(dataset, expected_counts),
        check_heavy_tail(dataset),
        check_volume_heterogeneity(dataset),
        check_diurnality(dataset),
        check_totals_positive(dataset),
    ]


def validation_report(results: List[CheckResult]) -> str:
    """Human-readable multi-line report."""
    lines = [str(result) for result in results]
    n_passed = sum(result.passed for result in results)
    lines.append(f"{n_passed}/{len(results)} checks passed")
    return "\n".join(lines)
