"""Synthetic nationwide ICN trace generator.

Substitutes the paper's proprietary operator traces (see DESIGN.md
section 2).  The main entry point is :func:`generate_dataset`.
"""

from repro.datagen.services import (
    Service,
    ServiceCatalog,
    ServiceCategory,
    TemporalClass,
    default_catalog,
)
from repro.datagen.environments import (
    EnvironmentSpec,
    EnvironmentType,
    Surrounding,
    TABLE1_COUNTS,
    TOTAL_INDOOR_ANTENNAS,
    default_specs,
    spec_for,
)
from repro.datagen.archetypes import (
    Archetype,
    ArchetypeProfile,
    GREEN_GROUP,
    GROUP_OF,
    ORANGE_GROUP,
    RED_GROUP,
    default_profiles,
)
from repro.datagen.calendar import (
    Event,
    STRIKE_DAY,
    StudyCalendar,
    TEMPORAL_WINDOW_END,
    TEMPORAL_WINDOW_START,
)
from repro.datagen.antennas import Antenna, Site, generate_layout
from repro.datagen.temporal import TemporalModel
from repro.datagen.traffic import TrafficModel
from repro.datagen.outdoor import OutdoorAntenna, generate_outdoor, neighbours_within
from repro.datagen.dataset import TrafficDataset, generate_dataset
from repro.datagen.catalog_io import (
    catalog_from_json,
    catalog_to_json,
    load_catalog,
    save_catalog,
)
from repro.datagen.scenarios import (
    available_scenarios,
    scaled_specs,
    scenario,
)
from repro.datagen.sessions import (
    Session,
    SessionGenerator,
    session_statistics,
)
from repro.datagen.validate import (
    CheckResult,
    validate_dataset,
    validation_report,
)

__all__ = [
    "Service",
    "ServiceCatalog",
    "ServiceCategory",
    "TemporalClass",
    "default_catalog",
    "EnvironmentSpec",
    "EnvironmentType",
    "Surrounding",
    "TABLE1_COUNTS",
    "TOTAL_INDOOR_ANTENNAS",
    "default_specs",
    "spec_for",
    "Archetype",
    "ArchetypeProfile",
    "ORANGE_GROUP",
    "GREEN_GROUP",
    "RED_GROUP",
    "GROUP_OF",
    "default_profiles",
    "Event",
    "STRIKE_DAY",
    "StudyCalendar",
    "TEMPORAL_WINDOW_START",
    "TEMPORAL_WINDOW_END",
    "Antenna",
    "Site",
    "generate_layout",
    "TemporalModel",
    "TrafficModel",
    "OutdoorAntenna",
    "generate_outdoor",
    "neighbours_within",
    "TrafficDataset",
    "generate_dataset",
    "CheckResult",
    "validate_dataset",
    "validation_report",
    "Session",
    "SessionGenerator",
    "session_statistics",
    "scenario",
    "available_scenarios",
    "scaled_specs",
    "catalog_to_json",
    "catalog_from_json",
    "save_catalog",
    "load_catalog",
]
