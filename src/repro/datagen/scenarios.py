"""Named deployment scenarios.

Convenience presets over :func:`repro.datagen.dataset.generate_dataset`:
the paper-scale deployment, proportionally scaled-down variants for fast
experimentation, and themed deployments (enterprise-heavy, transit-heavy)
for what-if studies.  Examples and tests build on these instead of
hand-rolling spec lists.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.datagen.dataset import TrafficDataset, generate_dataset
from repro.datagen.environments import (
    DEFAULT_SPECS,
    EnvironmentSpec,
    EnvironmentType,
)


def scaled_specs(
    scale: float, minimum_per_environment: int = 6
) -> Tuple[EnvironmentSpec, ...]:
    """The Table 1 deployment scaled by ``scale``, all environments kept.

    Args:
        scale: multiplicative factor on every environment's antenna count.
        minimum_per_environment: floor so rare environments (hotels: 28
            antennas at full scale) never vanish.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if minimum_per_environment < 1:
        raise ValueError(
            f"minimum_per_environment must be >= 1, "
            f"got {minimum_per_environment}"
        )
    return tuple(
        EnvironmentSpec(
            env_type=spec.env_type,
            count=max(minimum_per_environment, int(round(spec.count * scale))),
            paris_fraction=spec.paris_fraction,
            antennas_per_site=spec.antennas_per_site,
            volume_scale=spec.volume_scale,
            surrounding_weights=spec.surrounding_weights,
        )
        for spec in DEFAULT_SPECS
    )


_ENTERPRISE_SPECS: Tuple[EnvironmentSpec, ...] = (
    EnvironmentSpec(EnvironmentType.WORKSPACE, 260, 0.55, (2, 8), 3.0e5),
    EnvironmentSpec(EnvironmentType.HOSPITAL, 60, 0.30, (2, 6), 2.5e5),
    EnvironmentSpec(EnvironmentType.COMMERCIAL, 50, 0.20, (1, 4), 5.0e5),
    EnvironmentSpec(EnvironmentType.HOTEL, 30, 0.40, (1, 3), 2.0e5),
    EnvironmentSpec(EnvironmentType.EXPO, 40, 0.50, (2, 8), 4.0e5),
    EnvironmentSpec(EnvironmentType.TUNNEL, 20, 0.40, (1, 3), 3.5e5),
)

_TRANSIT_SPECS: Tuple[EnvironmentSpec, ...] = (
    EnvironmentSpec(EnvironmentType.METRO, 400, 0.78, (2, 8), 9.0e5),
    EnvironmentSpec(EnvironmentType.TRAIN, 120, 0.70, (2, 10), 7.0e5),
    EnvironmentSpec(EnvironmentType.AIRPORT, 60, 0.60, (4, 16), 1.1e6),
    EnvironmentSpec(EnvironmentType.TUNNEL, 60, 0.40, (1, 4), 3.5e5),
    EnvironmentSpec(EnvironmentType.COMMERCIAL, 40, 0.10, (1, 6), 5.0e5),
)

#: Registry of named scenarios: name -> (description, specs-or-None).
#: ``None`` specs mean the full Table 1 deployment.
SCENARIOS: Dict[str, Tuple[str, Optional[Tuple[EnvironmentSpec, ...]]]] = {
    "paper": ("the full Table 1 deployment (4,762 antennas)", None),
    "small": ("~1/10-scale Table 1 deployment for fast runs",
              scaled_specs(0.1)),
    "tiny": ("~1/20-scale deployment for unit tests", scaled_specs(0.05)),
    "enterprise": ("private-network operator: offices, hospitals, hotels",
                   _ENTERPRISE_SPECS),
    "transit": ("transit authority: metro, rail, airports, tunnels",
                _TRANSIT_SPECS),
}


def available_scenarios() -> Dict[str, str]:
    """Names and one-line descriptions of the preset scenarios."""
    return {name: desc for name, (desc, _) in SCENARIOS.items()}


def scenario(name: str, master_seed: int = 0, **kwargs) -> TrafficDataset:
    """Generate a dataset from a named scenario.

    Args:
        name: one of :func:`available_scenarios`.
        master_seed: generation seed.
        **kwargs: forwarded to :func:`generate_dataset` (catalog,
            calendar, share_noise_sigma).
    """
    try:
        _, specs = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
    return generate_dataset(master_seed=master_seed, specs=specs, **kwargs)
