"""IP-session-level measurement synthesis.

The operator's probes observe individual TCP/UDP sessions on the Gi/SGi/Gn
interfaces, classify each session's service via DPI, geo-reference it to a
BTS through the GTP-C ULI field, and only then aggregate to the hourly
per-antenna per-service volumes the paper analyses (Section 3).  This
module synthesizes that raw session layer for any (antenna, service,
window) slice:

* session *counts* per hour follow a Poisson process whose rate tracks
  the hourly volume;
* session *sizes* are log-normal (heavy-tailed flows), scaled so they sum
  back to the hourly volume;
* session *durations* depend on the service's temporal class (streaming
  sessions are long, messaging sessions short);
* the downlink/uplink split follows the service's downlink fraction.

Aggregating the generated sessions reproduces the dataset's hourly series
(up to the enforced exact-sum normalization), which the test suite checks
— the same consistency property the operator pipeline has by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.datagen.dataset import TrafficDataset
from repro.datagen.services import TemporalClass
from repro.utils.rng import derive_rng

#: Mean session volume in MB by temporal class (heavy streaming flows,
#: light conversational ones).
MEAN_SESSION_MB = {
    TemporalClass.COMMUTE: 12.0,
    TemporalClass.DAYTIME: 8.0,
    TemporalClass.BUSINESS_HOURS: 6.0,
    TemporalClass.EVENING: 45.0,
    TemporalClass.NIGHT: 40.0,
    TemporalClass.EVENT: 5.0,
    TemporalClass.POST_EVENT: 4.0,
    TemporalClass.FLAT: 1.5,
}

#: Mean session duration in seconds by temporal class.
MEAN_SESSION_SECONDS = {
    TemporalClass.COMMUTE: 420.0,
    TemporalClass.DAYTIME: 240.0,
    TemporalClass.BUSINESS_HOURS: 600.0,
    TemporalClass.EVENING: 1500.0,
    TemporalClass.NIGHT: 1800.0,
    TemporalClass.EVENT: 120.0,
    TemporalClass.POST_EVENT: 180.0,
    TemporalClass.FLAT: 60.0,
}

#: Log-space sigma of per-session volume (heavy-tailed flow sizes).
SESSION_SIZE_SIGMA = 1.2


@dataclass(frozen=True)
class Session:
    """One synthetic IP session as the probes would record it."""

    antenna_id: int
    service: str
    start: np.datetime64  # hour-resolution start (as aggregated upstream)
    duration_s: float
    downlink_mb: float
    uplink_mb: float

    @property
    def volume_mb(self) -> float:
        """Total DL+UL session volume."""
        return self.downlink_mb + self.uplink_mb

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s}")
        if self.downlink_mb < 0 or self.uplink_mb < 0:
            raise ValueError("session volumes must be non-negative")


class SessionGenerator:
    """Synthesizes the raw session layer consistent with a dataset.

    The generator is deterministic given the dataset's master seed: the
    same (antenna, service, window) slice always produces the same
    sessions, and their per-hour volume sums exactly match the dataset's
    hourly series.
    """

    def __init__(self, dataset: TrafficDataset) -> None:
        self.dataset = dataset

    def sessions_for(
        self,
        antenna_id: int,
        service: str,
        window: Optional[slice] = None,
    ) -> List[Session]:
        """Generate sessions for one (antenna, service) over a window."""
        dataset = self.dataset
        svc = dataset.catalog[service]
        window = (
            window if window is not None
            else slice(0, dataset.calendar.n_hours)
        )
        hourly = dataset.hourly_service(
            service, antenna_ids=[antenna_id], window=window
        )[0]
        hours = dataset.calendar.hours[window]
        mean_mb = MEAN_SESSION_MB[svc.temporal_class]
        mean_duration = MEAN_SESSION_SECONDS[svc.temporal_class]
        rng = derive_rng(
            dataset.master_seed, "sessions", antenna_id,
            dataset.catalog.index_of(service),
        )
        sessions: List[Session] = []
        for hour_idx, volume in enumerate(hourly):
            if volume <= 0:
                continue
            expected_count = volume / mean_mb
            count = int(rng.poisson(expected_count))
            if count == 0:
                count = 1  # traffic was observed, so a session existed
            raw_sizes = rng.lognormal(0.0, SESSION_SIZE_SIGMA, size=count)
            sizes = volume * raw_sizes / raw_sizes.sum()
            durations = rng.exponential(mean_duration, size=count)
            durations = np.maximum(durations, 1.0)
            for size, duration in zip(sizes, durations):
                downlink = size * svc.downlink_fraction
                sessions.append(
                    Session(
                        antenna_id=antenna_id,
                        service=service,
                        start=hours[hour_idx],
                        duration_s=float(duration),
                        downlink_mb=float(downlink),
                        uplink_mb=float(size - downlink),
                    )
                )
        return sessions

    def aggregate_hourly(
        self, sessions: Sequence[Session], window: Optional[slice] = None
    ) -> np.ndarray:
        """Re-aggregate sessions to an hourly volume series.

        This is the operator's aggregation step; applied to the output of
        :meth:`sessions_for` it reproduces the dataset's hourly series.
        """
        window = (
            window if window is not None
            else slice(0, self.dataset.calendar.n_hours)
        )
        hours = self.dataset.calendar.hours[window]
        start = hours[0]
        out = np.zeros(hours.size)
        for session in sessions:
            idx = int((session.start - start) / np.timedelta64(1, "h"))
            if 0 <= idx < out.size:
                out[idx] += session.volume_mb
        return out


def session_statistics(sessions: Sequence[Session]) -> dict:
    """Summary statistics of a session batch (flow-level view).

    Returns count, volume quantiles, mean duration, and the DL share —
    the session/flow-level quantities earlier indoor/wireline comparison
    studies report (paper Section 2's [44, 60]).
    """
    if not sessions:
        raise ValueError("no sessions to summarize")
    volumes = np.array([s.volume_mb for s in sessions])
    durations = np.array([s.duration_s for s in sessions])
    downlink = np.array([s.downlink_mb for s in sessions])
    return {
        "count": len(sessions),
        "volume_mb_p50": float(np.percentile(volumes, 50)),
        "volume_mb_p95": float(np.percentile(volumes, 95)),
        "volume_mb_total": float(volumes.sum()),
        "duration_s_mean": float(durations.mean()),
        "downlink_share": float(downlink.sum() / volumes.sum()),
    }
