"""Dataset container and top-level generation entry point.

:class:`TrafficDataset` bundles everything the analysis pipeline consumes:
the antenna/site metadata, the service catalog, the study calendar, the
N x M totals matrix, and an on-demand hourly synthesizer.  The companion
outdoor population is generated separately via :meth:`TrafficDataset.outdoor`.

Datasets serialize to ``.npz`` (totals + metadata + master seed); loading
reconstructs the deterministic :class:`~repro.datagen.traffic.TrafficModel`
so hourly series remain available after a round trip.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.antennas import Antenna, Site, generate_layout
from repro.datagen.archetypes import Archetype
from repro.datagen.calendar import StudyCalendar
from repro.datagen.environments import EnvironmentSpec, EnvironmentType, Surrounding
from repro.datagen.outdoor import (
    DEFAULT_OUTDOOR_COUNT,
    OutdoorAntenna,
    generate_outdoor,
)
from repro.datagen.services import ServiceCatalog, default_catalog
from repro.datagen.traffic import TrafficModel


@dataclass
class TrafficDataset:
    """A generated nationwide ICN measurement dataset.

    Attributes:
        sites: indoor deployment sites.
        antennas: indoor antennas (row order of ``totals``).
        catalog: the M-service catalog (column order of ``totals``).
        calendar: the hourly study calendar.
        totals: N x M two-month traffic totals in MB.
        model: deterministic synthesizer for hourly series.
        master_seed: seed the dataset was generated from.
    """

    sites: List[Site]
    antennas: List[Antenna]
    catalog: ServiceCatalog
    calendar: StudyCalendar
    totals: np.ndarray
    model: TrafficModel
    master_seed: int

    def __post_init__(self) -> None:
        n, m = self.totals.shape
        if n != len(self.antennas):
            raise ValueError(
                f"totals has {n} rows but dataset has {len(self.antennas)} antennas"
            )
        if m != len(self.catalog):
            raise ValueError(
                f"totals has {m} columns but catalog has {len(self.catalog)} services"
            )

    # ------------------------------------------------------------------
    # Convenience views
    # ------------------------------------------------------------------

    @property
    def n_antennas(self) -> int:
        """Number of indoor antennas N."""
        return len(self.antennas)

    @property
    def n_services(self) -> int:
        """Number of mobile services M."""
        return len(self.catalog)

    @property
    def service_names(self) -> List[str]:
        """Service names in column order."""
        return self.catalog.names

    def archetypes(self) -> np.ndarray:
        """Latent ground-truth archetype per antenna (evaluation only)."""
        return np.array([int(a.archetype) for a in self.antennas], dtype=int)

    def environment_types(self) -> List[EnvironmentType]:
        """Environment type per antenna, row order."""
        return [a.env_type for a in self.antennas]

    def antenna_names(self) -> List[str]:
        """Generated BS names per antenna, row order."""
        return [a.name for a in self.antennas]

    def paris_mask(self) -> np.ndarray:
        """Boolean mask of antennas located in metropolitan Paris."""
        return np.array([a.is_paris for a in self.antennas], dtype=bool)

    # ------------------------------------------------------------------
    # Hourly access (delegated to the model)
    # ------------------------------------------------------------------

    def hourly_service(
        self,
        service: str,
        antenna_ids: Optional[Sequence[int]] = None,
        window: Optional[slice] = None,
    ) -> np.ndarray:
        """Hourly traffic of one service; see ``TrafficModel.hourly_service``."""
        return self.model.hourly_service(service, antenna_ids, window)

    def hourly_total(
        self,
        antenna_ids: Optional[Sequence[int]] = None,
        window: Optional[slice] = None,
    ) -> np.ndarray:
        """Hourly all-services traffic; see ``TrafficModel.hourly_total``."""
        return self.model.hourly_total(antenna_ids, window)

    def temporal_window(self) -> slice:
        """Calendar slice for the paper's Fig. 10/11 window."""
        return self.calendar.temporal_window()

    # ------------------------------------------------------------------
    # Outdoor companion population
    # ------------------------------------------------------------------

    def outdoor(
        self, count: int = DEFAULT_OUTDOOR_COUNT
    ) -> Tuple[List[OutdoorAntenna], np.ndarray]:
        """Generate the outdoor macro population anchored to this dataset."""
        return generate_outdoor(
            self.sites, self.catalog, master_seed=self.master_seed, count=count
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Serialize to a ``.npz`` file (totals + metadata + seed)."""
        path = Path(path)
        antenna_meta = [
            {
                "antenna_id": a.antenna_id,
                "name": a.name,
                "site_id": a.site_id,
                "env_type": a.env_type.value,
                "city": a.city,
                "is_paris": a.is_paris,
                "surrounding": a.surrounding.value,
                "lat": a.lat,
                "lon": a.lon,
                "archetype": int(a.archetype),
                "technology": a.technology,
            }
            for a in self.antennas
        ]
        site_meta = [
            {
                "site_id": s.site_id,
                "name": s.name,
                "env_type": s.env_type.value,
                "city": s.city,
                "is_paris": s.is_paris,
                "surrounding": s.surrounding.value,
                "lat": s.lat,
                "lon": s.lon,
            }
            for s in self.sites
        ]
        meta = {
            "master_seed": self.master_seed,
            "calendar_start": str(self.calendar.start),
            "calendar_end": str(self.calendar.end),
            "antennas": antenna_meta,
            "sites": site_meta,
        }
        np.savez_compressed(
            path,
            totals=self.totals,
            meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        )

    @classmethod
    def load(cls, path) -> "TrafficDataset":
        """Load a dataset previously written by :meth:`save`."""
        path = Path(path)
        with np.load(path) as archive:
            totals = archive["totals"]
            meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
        sites = [
            Site(
                site_id=s["site_id"],
                name=s["name"],
                env_type=EnvironmentType(s["env_type"]),
                city=s["city"],
                is_paris=bool(s["is_paris"]),
                surrounding=Surrounding(s["surrounding"]),
                lat=float(s["lat"]),
                lon=float(s["lon"]),
            )
            for s in meta["sites"]
        ]
        antennas = [
            Antenna(
                antenna_id=a["antenna_id"],
                name=a["name"],
                site_id=a["site_id"],
                env_type=EnvironmentType(a["env_type"]),
                city=a["city"],
                is_paris=bool(a["is_paris"]),
                surrounding=Surrounding(a["surrounding"]),
                lat=float(a["lat"]),
                lon=float(a["lon"]),
                archetype=Archetype(a["archetype"]),
                technology=a["technology"],
            )
            for a in meta["antennas"]
        ]
        catalog = default_catalog()
        calendar = StudyCalendar(
            np.datetime64(meta["calendar_start"]), np.datetime64(meta["calendar_end"])
        )
        model = TrafficModel(
            catalog, sites, antennas, calendar, master_seed=meta["master_seed"]
        )
        model._totals = np.asarray(totals, dtype=float)
        return cls(
            sites=sites,
            antennas=antennas,
            catalog=catalog,
            calendar=calendar,
            totals=np.asarray(totals, dtype=float),
            model=model,
            master_seed=int(meta["master_seed"]),
        )


def generate_dataset(
    master_seed: int = 0,
    specs: Optional[Sequence[EnvironmentSpec]] = None,
    catalog: Optional[ServiceCatalog] = None,
    calendar: Optional[StudyCalendar] = None,
    share_noise_sigma: Optional[float] = None,
) -> TrafficDataset:
    """Generate a full synthetic nationwide ICN dataset.

    This is the library's main data entry point; with the default
    arguments it produces the paper-scale deployment (4,762 indoor
    antennas, 73 services, the 2022-11-21..2023-01-24 hourly calendar).

    Args:
        master_seed: seed controlling all randomness.
        specs: per-environment deployment specs (defaults to Table 1).
        catalog: service catalog (defaults to the 73-service catalog).
        calendar: study calendar (defaults to the paper's full period).
        share_noise_sigma: override of the per-antenna service-mix noise
            (used by the robustness ablation; default per TrafficModel).
    """
    catalog = catalog if catalog is not None else default_catalog()
    calendar = calendar if calendar is not None else StudyCalendar()
    sites, antennas = generate_layout(master_seed=master_seed, specs=specs)
    model_kwargs = {}
    if share_noise_sigma is not None:
        model_kwargs["share_noise_sigma"] = share_noise_sigma
    model = TrafficModel(
        catalog, sites, antennas, calendar, master_seed=master_seed,
        **model_kwargs,
    )
    return TrafficDataset(
        sites=sites,
        antennas=antennas,
        catalog=catalog,
        calendar=calendar,
        totals=model.totals(),
        model=model,
        master_seed=master_seed,
    )
