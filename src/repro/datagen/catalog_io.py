"""Custom service catalogs from JSON.

Every operator's DPI classifier has its own service list; to run the
pipeline on real data the catalog must be swappable.  This module
(de)serializes :class:`~repro.datagen.services.ServiceCatalog` to a plain
JSON schema with validation, so a catalog can be authored by hand or
exported from another system.

Schema (one object per service)::

    [
      {"name": "Netflix", "category": "video_streaming",
       "popularity": 7.0, "temporal_class": "evening",
       "downlink_fraction": 0.97},
      ...
    ]
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

from repro.datagen.services import (
    Service,
    ServiceCatalog,
    ServiceCategory,
    TemporalClass,
)

#: Required keys of one service entry.
REQUIRED_KEYS = ("name", "category", "popularity", "temporal_class")


def catalog_to_json(catalog: ServiceCatalog) -> str:
    """Serialize a catalog to its JSON text form."""
    entries = [
        {
            "name": svc.name,
            "category": svc.category.value,
            "popularity": svc.popularity,
            "temporal_class": svc.temporal_class.value,
            "downlink_fraction": svc.downlink_fraction,
        }
        for svc in catalog
    ]
    return json.dumps(entries, indent=2)


def catalog_from_json(text: str) -> ServiceCatalog:
    """Parse a catalog from JSON text, validating every entry."""
    try:
        entries = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"catalog JSON is malformed: {exc}") from exc
    if not isinstance(entries, list) or not entries:
        raise ValueError("catalog JSON must be a non-empty list of services")
    services: List[Service] = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ValueError(f"entry {index} is not an object")
        missing = [key for key in REQUIRED_KEYS if key not in entry]
        if missing:
            raise ValueError(f"entry {index} lacks keys {missing}")
        try:
            category = ServiceCategory(entry["category"])
        except ValueError:
            raise ValueError(
                f"entry {index}: unknown category {entry['category']!r}; "
                f"valid: {[c.value for c in ServiceCategory]}"
            ) from None
        try:
            temporal_class = TemporalClass(entry["temporal_class"])
        except ValueError:
            raise ValueError(
                f"entry {index}: unknown temporal_class "
                f"{entry['temporal_class']!r}"
            ) from None
        services.append(
            Service(
                name=str(entry["name"]),
                category=category,
                popularity=float(entry["popularity"]),
                temporal_class=temporal_class,
                downlink_fraction=float(
                    entry.get("downlink_fraction", 0.85)
                ),
            )
        )
    return ServiceCatalog(services)


def save_catalog(catalog: ServiceCatalog, path) -> None:
    """Write a catalog to a JSON file."""
    Path(path).write_text(catalog_to_json(catalog))


def load_catalog(path) -> ServiceCatalog:
    """Read a catalog from a JSON file."""
    return catalog_from_json(Path(path).read_text())
