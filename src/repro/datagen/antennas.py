"""Site and antenna layout generation.

Antennas are installed in groups at *sites* (a metro station, a stadium, an
office building).  Sites carry the event calendar (all antennas of a venue
burst together) and the geographic position used by the outdoor-neighbour
analysis; antennas carry the latent archetype and the generated BS name
whose keywords the environment extractor of ``repro.analysis.environment``
parses — mirroring how the paper recovers Table 1 from antenna names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.archetypes import (
    Archetype,
    AssignmentRule,
    DEFAULT_ASSIGNMENT,
    assign_archetype,
)
from repro.datagen.environments import (
    EnvironmentSpec,
    EnvironmentType,
    METRO_CITIES,
    NAME_KEYWORDS,
    PROVINCIAL_CITIES,
    Surrounding,
    default_specs,
)
from repro.utils.rng import derive_rng

#: Approximate city-centre coordinates (lat, lon) used to place sites.
CITY_COORDS: Dict[str, Tuple[float, float]] = {
    "Paris": (48.8566, 2.3522),
    "Lille": (50.6292, 3.0573),
    "Lyon": (45.7640, 4.8357),
    "Rennes": (48.1173, -1.6778),
    "Toulouse": (43.6047, 1.4442),
    "Marseille": (43.2965, 5.3698),
    "Bordeaux": (44.8378, -0.5792),
    "Nantes": (47.2184, -1.5536),
    "Strasbourg": (48.5734, 7.7521),
    "Nice": (43.7102, 7.2620),
    "Montpellier": (43.6108, 3.8767),
    "Grenoble": (45.1885, 5.7245),
    "Dijon": (47.3220, 5.0415),
}

#: Degrees of latitude per kilometre (used for site scatter and the 1 km
#: outdoor-neighbour radius).
DEG_PER_KM_LAT = 1.0 / 111.0


@dataclass(frozen=True)
class Site:
    """One indoor deployment location hosting one or more antennas."""

    site_id: int
    name: str
    env_type: EnvironmentType
    city: str
    is_paris: bool
    surrounding: Surrounding
    lat: float
    lon: float


@dataclass(frozen=True)
class Antenna:
    """One indoor cellular antenna as exposed by the operator's metadata.

    The ``archetype`` field is the generator's latent ground truth; the
    analysis pipeline must not read it (it is used only for evaluation and
    label alignment).
    """

    antenna_id: int
    name: str
    site_id: int
    env_type: EnvironmentType
    city: str
    is_paris: bool
    surrounding: Surrounding
    lat: float
    lon: float
    archetype: Archetype
    technology: str = "4G"


def _city_scatter(
    rng: np.random.Generator, city: str, spread_km: float = 8.0
) -> Tuple[float, float]:
    """Random position within ``spread_km`` of a city centre."""
    lat0, lon0 = CITY_COORDS[city]
    dlat = rng.normal(0.0, spread_km / 3.0) * DEG_PER_KM_LAT
    dlon = rng.normal(0.0, spread_km / 3.0) * DEG_PER_KM_LAT / np.cos(np.radians(lat0))
    return lat0 + dlat, lon0 + dlon


def _pick_city(
    rng: np.random.Generator, spec: EnvironmentSpec
) -> Tuple[str, bool]:
    """Choose a deployment city for one site of the given environment."""
    if rng.random() < spec.paris_fraction:
        return "Paris", True
    if spec.env_type == EnvironmentType.METRO:
        # Only the four non-capital metro cities have undergrounds.
        candidates = [c for c in METRO_CITIES if c != "Paris"]
    else:
        candidates = list(PROVINCIAL_CITIES)
    return str(candidates[int(rng.integers(len(candidates)))]), False


def _pick_surrounding(
    rng: np.random.Generator, spec: EnvironmentSpec
) -> Surrounding:
    choices = (Surrounding.URBAN, Surrounding.SUBURBAN, Surrounding.RURAL)
    probs = np.array(spec.surrounding_weights, dtype=float)
    return choices[int(rng.choice(3, p=probs))]


def _site_name(
    rng: np.random.Generator, spec: EnvironmentSpec, city: str, site_number: int
) -> str:
    """Generate a BS-style site name embedding an environment keyword."""
    keywords = NAME_KEYWORDS[spec.env_type]
    keyword = keywords[int(rng.integers(len(keywords)))]
    return f"{city.upper()}-{keyword}-{site_number:04d}"


def generate_layout(
    master_seed: int = 0,
    specs: Optional[Sequence[EnvironmentSpec]] = None,
    assignment: Optional[Dict[Tuple[EnvironmentType, bool], AssignmentRule]] = None,
    five_g_fraction: float = 0.04,
) -> Tuple[List[Site], List[Antenna]]:
    """Generate the nationwide indoor deployment.

    Produces sites and antennas with Table 1 environment counts (or the
    supplied ``specs``), realistic names, city placement, and latent
    archetype assignments.

    Args:
        master_seed: seed for all layout randomness.
        specs: per-environment deployment specs (defaults to Table 1).
        assignment: archetype assignment rules (defaults per archetypes.py).
        five_g_fraction: fraction of antennas flagged 5G (the paper notes
            the vast majority of ICN antennas are 4G).

    Returns:
        ``(sites, antennas)`` with globally unique ids; antennas of the
        same site are contiguous in the returned list.
    """
    if not 0.0 <= five_g_fraction <= 1.0:
        raise ValueError(f"five_g_fraction must be in [0, 1], got {five_g_fraction}")
    specs = tuple(default_specs() if specs is None else specs)
    sites: List[Site] = []
    antennas: List[Antenna] = []
    for spec in specs:
        rng = derive_rng(master_seed, "layout", spec.env_type.value)
        remaining = spec.count
        site_number = 0
        while remaining > 0:
            site_number += 1
            low, high = spec.antennas_per_site
            n_antennas = int(min(remaining, rng.integers(low, high + 1)))
            city, is_paris = _pick_city(rng, spec)
            surrounding = _pick_surrounding(rng, spec)
            lat, lon = _city_scatter(rng, city)
            site = Site(
                site_id=len(sites),
                name=_site_name(rng, spec, city, site_number),
                env_type=spec.env_type,
                city=city,
                is_paris=is_paris,
                surrounding=surrounding,
                lat=lat,
                lon=lon,
            )
            sites.append(site)
            for k in range(n_antennas):
                archetype = assign_archetype(
                    spec.env_type, is_paris, rng, assignment=assignment
                )
                technology = "5G" if rng.random() < five_g_fraction else "4G"
                antennas.append(
                    Antenna(
                        antenna_id=len(antennas),
                        name=f"{site.name}-ANT{k + 1:02d}",
                        site_id=site.site_id,
                        env_type=spec.env_type,
                        city=city,
                        is_paris=is_paris,
                        surrounding=surrounding,
                        lat=lat + rng.normal(0.0, 0.05 * DEG_PER_KM_LAT),
                        lon=lon + rng.normal(0.0, 0.05 * DEG_PER_KM_LAT),
                        archetype=archetype,
                        technology=technology,
                    )
                )
            remaining -= n_antennas
    # Re-number antennas to be stable and contiguous (0..N-1).
    antennas = [
        Antenna(
            antenna_id=i,
            name=a.name,
            site_id=a.site_id,
            env_type=a.env_type,
            city=a.city,
            is_paris=a.is_paris,
            surrounding=a.surrounding,
            lat=a.lat,
            lon=a.lon,
            archetype=a.archetype,
            technology=a.technology,
        )
        for i, a in enumerate(antennas)
    ]
    return sites, antennas
