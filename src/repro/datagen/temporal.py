"""Temporal traffic model: occupancy x service-usage shapes.

Hourly traffic of a service at an antenna factorizes as::

    weight(t) = occupancy(archetype, t) * class_shape(temporal_class, hour(t))

``occupancy`` captures when subscribers are on the premises — commute
peaks for metro/train archetypes, business hours for offices, event bursts
for venues, diurnal plateaus for commercial locations — including weekend
and strike-day modulation (paper Section 6).  ``class_shape`` captures
when during the day a service is used (music at commute time, Netflix in
the evening, Teams at work).  The ``POST_EVENT`` class (Waze, Uber) lags
occupancy by two hours, reproducing the paper's observation that vehicular
navigation peaks a couple of hours after event traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datagen.archetypes import Archetype
from repro.datagen.calendar import Event, StudyCalendar
from repro.datagen.services import TemporalClass


def _gaussian_bump(center: float, width: float) -> np.ndarray:
    """A 24-hour circular Gaussian bump used to build hour-of-day shapes."""
    hours = np.arange(24, dtype=float)
    delta = np.minimum(np.abs(hours - center), 24.0 - np.abs(hours - center))
    return np.exp(-0.5 * (delta / width) ** 2)


def _normalized(shape: np.ndarray) -> np.ndarray:
    """Scale a 24-vector so its mean is 1 (keeps totals comparable)."""
    return shape / shape.mean()


#: Hour-of-day occupancy shapes (24-vectors, mean 1).
_COMMUTER_SHAPE = _normalized(
    0.05 + 1.8 * _gaussian_bump(8.5, 1.2) + 1.6 * _gaussian_bump(18.5, 1.4)
    + 0.35 * _gaussian_bump(13.0, 3.0)
)
_OFFICE_SHAPE = _normalized(
    0.04 + 1.5 * _gaussian_bump(10.5, 1.9) + 1.4 * _gaussian_bump(15.0, 1.9)
    + 0.7 * _gaussian_bump(13.0, 1.0)
)
_DAYTIME_SHAPE = _normalized(0.15 + 1.4 * _gaussian_bump(14.0, 4.0))
_GENERAL_SHAPE = _normalized(
    0.25 + 1.0 * _gaussian_bump(12.5, 3.5) + 0.9 * _gaussian_bump(19.0, 2.5)
)
_VENUE_BASE_SHAPE = _normalized(0.5 + 0.8 * _gaussian_bump(15.0, 5.0))
_HOSPITALITY_SHAPE = _normalized(
    0.45 + 1.2 * _gaussian_bump(14.0, 4.0) + 0.8 * _gaussian_bump(21.5, 2.0)
)

#: Hour-of-day service-usage shapes per temporal class (24-vectors, mean 1).
_CLASS_SHAPES: Dict[TemporalClass, np.ndarray] = {
    TemporalClass.COMMUTE: _normalized(
        0.2 + 1.6 * _gaussian_bump(8.5, 1.5) + 1.3 * _gaussian_bump(18.5, 1.7)
    ),
    TemporalClass.DAYTIME: _normalized(0.25 + 1.3 * _gaussian_bump(14.5, 4.0)),
    TemporalClass.BUSINESS_HOURS: _normalized(
        0.08 + 1.5 * _gaussian_bump(10.5, 2.0) + 1.3 * _gaussian_bump(15.5, 2.0)
    ),
    # Evening streaming keeps a secondary lunch-break bump: in office
    # environments (early-dying occupancy) it becomes the only visible
    # peak, reproducing the paper's cluster-3 Netflix lunch pattern.
    TemporalClass.EVENING: _normalized(
        0.15 + 1.8 * _gaussian_bump(21.0, 2.2) + 0.4 * _gaussian_bump(13.0, 1.2)
    ),
    TemporalClass.NIGHT: _normalized(0.3 + 1.6 * _gaussian_bump(23.5, 2.5)),
    TemporalClass.EVENT: _normalized(0.4 + 1.2 * _gaussian_bump(16.0, 5.0)),
    TemporalClass.POST_EVENT: _normalized(0.4 + 1.1 * _gaussian_bump(17.0, 4.0)),
    TemporalClass.FLAT: np.ones(24),
}


@dataclass(frozen=True)
class OccupancyParams:
    """Day-level modulation parameters for one archetype's occupancy."""

    hour_shape: np.ndarray
    weekend_factor: float = 1.0
    strike_factor: float = 1.0
    event_driven: bool = False
    base_level: float = 1.0

    def __post_init__(self) -> None:
        if self.weekend_factor < 0 or self.strike_factor < 0:
            raise ValueError("weekend/strike factors must be non-negative")
        if self.base_level <= 0:
            raise ValueError(f"base_level must be positive, got {self.base_level}")
        if np.asarray(self.hour_shape).shape != (24,):
            raise ValueError("hour_shape must be a 24-vector")


#: Occupancy recipes per archetype.  Strike factors encode Section 6.0.1:
#: the 19 Jan strike nearly empties Paris commuter antennas (clusters 0/4),
#: hits non-capital commuting more mildly (cluster 7), and barely affects
#: the rest.
DEFAULT_OCCUPANCY: Dict[Archetype, OccupancyParams] = {
    Archetype.PARIS_COMMUTER_ENTERTAINMENT: OccupancyParams(
        _COMMUTER_SHAPE, weekend_factor=0.25, strike_factor=0.06
    ),
    Archetype.PARIS_COMMUTER_LEAN: OccupancyParams(
        _COMMUTER_SHAPE, weekend_factor=0.25, strike_factor=0.06
    ),
    Archetype.PROVINCIAL_COMMUTER: OccupancyParams(
        _COMMUTER_SHAPE, weekend_factor=0.30, strike_factor=0.45
    ),
    Archetype.UNIFORM_MODERATE: OccupancyParams(
        _VENUE_BASE_SHAPE, weekend_factor=0.85, strike_factor=0.95,
        event_driven=True, base_level=0.55
    ),
    Archetype.PROVINCIAL_STADIUM: OccupancyParams(
        _VENUE_BASE_SHAPE, weekend_factor=1.0, strike_factor=1.0,
        event_driven=True, base_level=0.18
    ),
    Archetype.PARIS_STADIUM: OccupancyParams(
        _VENUE_BASE_SHAPE, weekend_factor=1.0, strike_factor=1.0,
        event_driven=True, base_level=0.18
    ),
    Archetype.GENERAL_USE: OccupancyParams(
        _GENERAL_SHAPE, weekend_factor=0.90, strike_factor=0.85
    ),
    Archetype.RETAIL_HOSPITALITY: OccupancyParams(
        _HOSPITALITY_SHAPE, weekend_factor=0.95, strike_factor=0.90
    ),
    Archetype.OFFICE: OccupancyParams(
        _OFFICE_SHAPE, weekend_factor=0.12, strike_factor=0.55
    ),
}

#: Sunday gets an extra dip for retail (paper: cluster 2's Sunday drop).
_RETAIL_SUNDAY_FACTOR = 0.6


class TemporalModel:
    """Computes per-hour traffic weights for (archetype, temporal class).

    The model is deterministic given the calendar and event list; sampling
    noise is applied by the traffic synthesizer, not here.
    """

    def __init__(
        self,
        calendar: StudyCalendar,
        occupancy: Optional[Dict[Archetype, OccupancyParams]] = None,
    ) -> None:
        self.calendar = calendar
        self.occupancy_params = dict(DEFAULT_OCCUPANCY if occupancy is None else occupancy)
        missing = [a for a in Archetype if a not in self.occupancy_params]
        if missing:
            raise ValueError(f"occupancy params missing for archetypes {missing}")
        self._hour_of_day = calendar.hour_of_day()
        self._is_weekend = calendar.is_weekend()
        self._is_sunday = calendar.day_of_week() == 6
        self._is_strike = calendar.is_strike_day()

    def occupancy(
        self, archetype: Archetype, events: Sequence[Event] = ()
    ) -> np.ndarray:
        """Per-hour occupancy weights for an antenna of ``archetype``.

        Event-driven archetypes (stadiums, expo venues) superimpose the
        supplied event bursts on a low base level; other archetypes ignore
        ``events``.
        """
        params = self.occupancy_params[archetype]
        weights = params.base_level * params.hour_shape[self._hour_of_day]
        weekend_scale = np.where(self._is_weekend, params.weekend_factor, 1.0)
        strike_scale = np.where(self._is_strike, params.strike_factor, 1.0)
        weights = weights * weekend_scale * strike_scale
        if archetype == Archetype.RETAIL_HOSPITALITY:
            weights = weights * np.where(self._is_sunday, _RETAIL_SUNDAY_FACTOR, 1.0)
        if params.event_driven:
            boost = np.zeros(self.calendar.n_hours)
            for event in events:
                mask = event.mask(self.calendar)
                boost[mask] = np.maximum(boost[mask], event.intensity)
            weights = weights * (1.0 + boost)
        return weights

    def class_shape(self, temporal_class: TemporalClass) -> np.ndarray:
        """Hour-of-day usage multipliers (mean 1) for a temporal class."""
        return _CLASS_SHAPES[temporal_class]

    def profile(
        self,
        archetype: Archetype,
        temporal_class: TemporalClass,
        events: Sequence[Event] = (),
    ) -> np.ndarray:
        """Unnormalized per-hour weights for one (archetype, class) pair.

        ``POST_EVENT`` services consume the occupancy two hours late —
        attendees open Waze/Uber on the way out (paper Section 6.0.2).
        """
        occ = self.occupancy(archetype, events)
        if temporal_class is TemporalClass.POST_EVENT:
            occ = np.roll(occ, 2)
            occ[:2] = occ[2] if occ.size > 2 else occ[:2]
        usage = self.class_shape(temporal_class)[self._hour_of_day]
        return occ * usage

    def profiles_by_class(
        self, archetype: Archetype, events: Sequence[Event] = ()
    ) -> Dict[TemporalClass, np.ndarray]:
        """All temporal-class profiles for one archetype (shared occupancy)."""
        occ = self.occupancy(archetype, events)
        shifted = np.roll(occ, 2)
        if shifted.size > 2:
            shifted[:2] = shifted[2]
        result: Dict[TemporalClass, np.ndarray] = {}
        for tclass in TemporalClass:
            base = shifted if tclass is TemporalClass.POST_EVENT else occ
            result[tclass] = base * self.class_shape(tclass)[self._hour_of_day]
        return result
