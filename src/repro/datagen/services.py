"""Mobile service catalog.

The paper analyses M = 73 mobile services spanning "social networking,
messaging, audio and video streaming, transportation, professional
activities, and well-being" (Section 3).  The operator's DPI classifier and
service list are proprietary, so this module defines a synthetic catalog of
73 services with the same category structure and the services the paper
names explicitly (Spotify, Mappy, Waze, Microsoft Teams, Google Play
Store, ...), each with a global popularity weight and a temporal class that
drives its hour-of-day usage shape.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


class ServiceCategory(enum.Enum):
    """High-level functional category of a mobile service."""

    MUSIC = "music"
    NAVIGATION = "navigation"
    SOCIAL = "social"
    MESSAGING = "messaging"
    VIDEO_STREAMING = "video_streaming"
    BUSINESS = "business"
    EMAIL = "email"
    SHOPPING = "shopping"
    SPORTS = "sports"
    NEWS = "news"
    ENTERTAINMENT = "entertainment"
    GAMING = "gaming"
    DIGITAL_DISTRIBUTION = "digital_distribution"
    CLOUD = "cloud"
    WELLBEING = "wellbeing"
    WEB = "web"


class TemporalClass(enum.Enum):
    """Hour-of-day usage shape class; drives Fig. 10/11 style patterns."""

    COMMUTE = "commute"  # bimodal morning/evening peaks (music, transport)
    DAYTIME = "daytime"  # broad 10:00-20:00 plateau (shopping, web)
    BUSINESS_HOURS = "business_hours"  # 9:00-18:00 weekdays (Teams, email)
    EVENING = "evening"  # ramps after 18:00 (streaming)
    NIGHT = "night"  # late evening / night (hotel streaming)
    EVENT = "event"  # follows venue events (social sharing)
    POST_EVENT = "post_event"  # lags events by ~2 h (vehicular navigation)
    FLAT = "flat"  # weakly modulated background


@dataclass(frozen=True)
class Service:
    """One mobile service as seen by the operator's traffic classifier.

    Attributes:
        name: display name used in figures (e.g. ``"Spotify"``).
        category: functional category.
        popularity: global share of total network traffic (relative weight;
            the catalog normalizes these to sum to 1).
        temporal_class: hour-of-day usage shape.
        downlink_fraction: fraction of the service's traffic on downlink.
    """

    name: str
    category: ServiceCategory
    popularity: float
    temporal_class: TemporalClass
    downlink_fraction: float = 0.85

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("service name must be non-empty")
        if self.popularity <= 0:
            raise ValueError(f"popularity must be positive, got {self.popularity}")
        if not 0.0 <= self.downlink_fraction <= 1.0:
            raise ValueError(
                f"downlink_fraction must be in [0, 1], got {self.downlink_fraction}"
            )


_C = ServiceCategory
_T = TemporalClass

#: The default 73-service catalog.  Popularity weights are heavy-tailed,
#: mimicking the paper's Fig. 1 observation that a handful of streaming
#: services dominate total volume while most services are comparatively
#: tiny.  Values are relative (normalized by the catalog).
_DEFAULT_SERVICES: Tuple[Service, ...] = (
    # Music and audio streaming (5)
    Service("Spotify", _C.MUSIC, 3.0, _T.COMMUTE, 0.92),
    Service("SoundCloud", _C.MUSIC, 0.5, _T.COMMUTE, 0.92),
    Service("Deezer", _C.MUSIC, 1.0, _T.COMMUTE, 0.92),
    Service("Apple Music", _C.MUSIC, 0.9, _T.COMMUTE, 0.92),
    Service("YouTube Music", _C.MUSIC, 0.7, _T.COMMUTE, 0.92),
    # Navigation and transport (4)
    Service("Google Maps", _C.NAVIGATION, 0.8, _T.COMMUTE, 0.80),
    Service("Mappy", _C.NAVIGATION, 0.15, _T.COMMUTE, 0.80),
    Service("Waze", _C.NAVIGATION, 0.6, _T.POST_EVENT, 0.70),
    Service("Transportation Websites", _C.NAVIGATION, 0.25, _T.COMMUTE, 0.85),
    # Social networking (7)
    Service("Facebook", _C.SOCIAL, 4.0, _T.DAYTIME, 0.80),
    Service("Instagram", _C.SOCIAL, 5.0, _T.DAYTIME, 0.82),
    Service("Twitter", _C.SOCIAL, 1.5, _T.EVENT, 0.78),
    Service("Snapchat", _C.SOCIAL, 2.5, _T.EVENT, 0.60),
    Service("TikTok", _C.SOCIAL, 6.0, _T.DAYTIME, 0.90),
    Service("Reddit", _C.SOCIAL, 0.5, _T.DAYTIME, 0.85),
    Service("Giphy", _C.SOCIAL, 0.12, _T.EVENT, 0.90),
    # Messaging (5)
    Service("WhatsApp", _C.MESSAGING, 1.8, _T.FLAT, 0.55),
    Service("Facebook Messenger", _C.MESSAGING, 0.9, _T.FLAT, 0.55),
    Service("Telegram", _C.MESSAGING, 0.5, _T.FLAT, 0.55),
    Service("iMessage", _C.MESSAGING, 0.6, _T.FLAT, 0.50),
    Service("Discord", _C.MESSAGING, 0.4, _T.EVENING, 0.60),
    # Video streaming (8)
    Service("YouTube", _C.VIDEO_STREAMING, 9.0, _T.DAYTIME, 0.95),
    Service("Netflix", _C.VIDEO_STREAMING, 7.0, _T.EVENING, 0.97),
    Service("Disney+", _C.VIDEO_STREAMING, 1.5, _T.EVENING, 0.97),
    Service("Amazon Prime Video", _C.VIDEO_STREAMING, 1.8, _T.EVENING, 0.97),
    Service("Canal+", _C.VIDEO_STREAMING, 0.8, _T.EVENING, 0.97),
    Service("Twitch", _C.VIDEO_STREAMING, 1.2, _T.EVENING, 0.95),
    Service("MyTF1", _C.VIDEO_STREAMING, 0.5, _T.EVENING, 0.96),
    Service("France TV", _C.VIDEO_STREAMING, 0.45, _T.EVENING, 0.96),
    # Business and professional (5)
    Service("Microsoft Teams", _C.BUSINESS, 0.9, _T.BUSINESS_HOURS, 0.60),
    Service("Zoom", _C.BUSINESS, 0.6, _T.BUSINESS_HOURS, 0.55),
    Service("Slack", _C.BUSINESS, 0.25, _T.BUSINESS_HOURS, 0.60),
    Service("LinkedIn", _C.BUSINESS, 0.45, _T.BUSINESS_HOURS, 0.80),
    Service("Microsoft 365", _C.BUSINESS, 0.5, _T.BUSINESS_HOURS, 0.65),
    # Email (4)
    Service("Gmail", _C.EMAIL, 0.5, _T.BUSINESS_HOURS, 0.65),
    Service("Outlook", _C.EMAIL, 0.4, _T.BUSINESS_HOURS, 0.65),
    Service("Yahoo Mail", _C.EMAIL, 0.12, _T.BUSINESS_HOURS, 0.65),
    Service("Orange Mail", _C.EMAIL, 0.18, _T.BUSINESS_HOURS, 0.65),
    # Shopping (6)
    Service("Amazon", _C.SHOPPING, 0.9, _T.DAYTIME, 0.85),
    Service("Shopping Websites", _C.SHOPPING, 0.6, _T.DAYTIME, 0.85),
    Service("Vinted", _C.SHOPPING, 0.45, _T.DAYTIME, 0.85),
    Service("Leboncoin", _C.SHOPPING, 0.5, _T.DAYTIME, 0.85),
    Service("AliExpress", _C.SHOPPING, 0.3, _T.DAYTIME, 0.85),
    Service("Cdiscount", _C.SHOPPING, 0.2, _T.DAYTIME, 0.85),
    # Sports (3)
    Service("Sports Websites", _C.SPORTS, 0.4, _T.EVENT, 0.88),
    Service("L'Equipe", _C.SPORTS, 0.3, _T.EVENT, 0.88),
    Service("OneFootball", _C.SPORTS, 0.15, _T.EVENT, 0.88),
    # News (3)
    Service("News Websites", _C.NEWS, 0.5, _T.COMMUTE, 0.88),
    Service("Le Monde", _C.NEWS, 0.25, _T.COMMUTE, 0.88),
    Service("Google News", _C.NEWS, 0.2, _T.COMMUTE, 0.88),
    # Entertainment (3)
    Service("Entertainment Websites", _C.ENTERTAINMENT, 0.4, _T.DAYTIME, 0.88),
    Service("Yahoo", _C.ENTERTAINMENT, 0.3, _T.DAYTIME, 0.85),
    Service("9GAG", _C.ENTERTAINMENT, 0.1, _T.DAYTIME, 0.90),
    # Gaming (5)
    Service("Fortnite", _C.GAMING, 0.6, _T.EVENING, 0.80),
    Service("Roblox", _C.GAMING, 0.5, _T.EVENING, 0.80),
    Service("Clash of Clans", _C.GAMING, 0.3, _T.FLAT, 0.70),
    Service("Candy Crush", _C.GAMING, 0.25, _T.FLAT, 0.70),
    Service("Pokemon GO", _C.GAMING, 0.3, _T.DAYTIME, 0.65),
    # Digital distribution (2)
    Service("Google Play Store", _C.DIGITAL_DISTRIBUTION, 0.8, _T.DAYTIME, 0.97),
    Service("Apple App Store", _C.DIGITAL_DISTRIBUTION, 0.7, _T.DAYTIME, 0.97),
    # Cloud storage and sync (4)
    Service("iCloud", _C.CLOUD, 0.7, _T.NIGHT, 0.45),
    Service("Google Drive", _C.CLOUD, 0.5, _T.BUSINESS_HOURS, 0.55),
    Service("Dropbox", _C.CLOUD, 0.2, _T.BUSINESS_HOURS, 0.55),
    Service("OneDrive", _C.CLOUD, 0.35, _T.BUSINESS_HOURS, 0.55),
    # Well-being (2)
    Service("Strava", _C.WELLBEING, 0.2, _T.DAYTIME, 0.60),
    Service("Doctolib", _C.WELLBEING, 0.15, _T.BUSINESS_HOURS, 0.75),
    # Generic web and on-demand services (7)
    Service("Generic Web", _C.WEB, 2.5, _T.DAYTIME, 0.88),
    Service("Google Search", _C.WEB, 1.2, _T.DAYTIME, 0.88),
    Service("Wikipedia", _C.WEB, 0.3, _T.DAYTIME, 0.90),
    Service("Booking", _C.WEB, 0.25, _T.DAYTIME, 0.85),
    Service("Airbnb", _C.WEB, 0.2, _T.DAYTIME, 0.85),
    Service("Uber", _C.WEB, 0.3, _T.POST_EVENT, 0.70),
    Service("Deliveroo", _C.WEB, 0.25, _T.EVENING, 0.80),
)


class ServiceCatalog:
    """Immutable, indexable collection of :class:`Service` objects.

    Provides name <-> index lookup and normalized popularity weights.  The
    default catalog has exactly 73 services, matching the paper's M.
    """

    def __init__(self, services: Sequence[Service] = _DEFAULT_SERVICES) -> None:
        if len(services) == 0:
            raise ValueError("catalog must contain at least one service")
        names = [svc.name for svc in services]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate service names: {dupes}")
        self._services: Tuple[Service, ...] = tuple(services)
        self._index: Dict[str, int] = {svc.name: i for i, svc in enumerate(services)}

    def __len__(self) -> int:
        return len(self._services)

    def __iter__(self):
        return iter(self._services)

    def __getitem__(self, key) -> Service:
        if isinstance(key, str):
            return self._services[self.index_of(key)]
        return self._services[key]

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        """Return the column index of the service called ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(
                f"unknown service {name!r}; known services include "
                f"{sorted(self._index)[:5]}..."
            ) from None

    @property
    def names(self) -> List[str]:
        """Service names in column order."""
        return [svc.name for svc in self._services]

    @property
    def categories(self) -> List[ServiceCategory]:
        """Service categories in column order."""
        return [svc.category for svc in self._services]

    def popularity_weights(self):
        """Normalized global popularity weights (sum to 1), column order."""
        import numpy as np

        weights = np.array([svc.popularity for svc in self._services], dtype=float)
        return weights / weights.sum()

    def in_category(self, category: ServiceCategory) -> List[int]:
        """Indices of all services in ``category``."""
        return [i for i, svc in enumerate(self._services) if svc.category == category]


def default_catalog() -> ServiceCatalog:
    """Return the default 73-service catalog used throughout the library."""
    return ServiceCatalog()
