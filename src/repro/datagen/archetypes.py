"""Latent service-usage archetypes.

The paper discovers nine clusters of indoor antennas (k = 9) organized in
three dendrogram groups.  The synthetic generator plants nine latent
*archetypes* — numbered to match the paper's cluster indices — whose
service-mix multipliers encode the qualitative SHAP findings of Section
5.1.2, and assigns each antenna an archetype from a distribution
conditioned on its environment type and city (Section 5.2.2).  The
clustering pipeline never sees the archetype; recovering it is the
reproduction target.

Paper cluster -> archetype summary:

========  =======================  ==========================================
Cluster   Dendrogram group         Character
========  =======================  ==========================================
0         orange                   Paris commuters; music + navigation +
                                   entertainment over-use
4         orange                   Paris commuters; music + navigation but
                                   entertainment/shopping/sports under-use
7         orange                   non-capital metro commuters; music but
                                   navigation (Mappy, transport sites) under
5         green                    uniform/moderate usage; most services
                                   under-utilized relative to the network
6         green                    non-Paris stadiums; Snapchat/Twitter/
                                   sports; Giphy/WhatsApp/Canal+ absent
8         green                    Paris stadiums; Snapchat/Twitter/sports
                                   plus Giphy, WhatsApp, Canal+
1         red                      general use; streaming (Netflix, Disney+,
                                   Prime), Waze, mail
2         red                      retail/hotels/hospitals; Play Store and
                                   shopping
3         red                      offices; Teams, LinkedIn, email
========  =======================  ==========================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.datagen.environments import EnvironmentType
from repro.datagen.services import ServiceCatalog, ServiceCategory


class Archetype(enum.IntEnum):
    """Latent usage archetypes, numbered like the paper's clusters."""

    PARIS_COMMUTER_ENTERTAINMENT = 0
    GENERAL_USE = 1
    RETAIL_HOSPITALITY = 2
    OFFICE = 3
    PARIS_COMMUTER_LEAN = 4
    UNIFORM_MODERATE = 5
    PROVINCIAL_STADIUM = 6
    PROVINCIAL_COMMUTER = 7
    PARIS_STADIUM = 8


#: Dendrogram groups of Figure 3.
ORANGE_GROUP = (
    Archetype.PARIS_COMMUTER_ENTERTAINMENT,
    Archetype.PARIS_COMMUTER_LEAN,
    Archetype.PROVINCIAL_COMMUTER,
)
GREEN_GROUP = (
    Archetype.UNIFORM_MODERATE,
    Archetype.PROVINCIAL_STADIUM,
    Archetype.PARIS_STADIUM,
)
RED_GROUP = (
    Archetype.GENERAL_USE,
    Archetype.RETAIL_HOSPITALITY,
    Archetype.OFFICE,
)

GROUP_OF: Dict[Archetype, str] = {}
for _arch in ORANGE_GROUP:
    GROUP_OF[_arch] = "orange"
for _arch in GREEN_GROUP:
    GROUP_OF[_arch] = "green"
for _arch in RED_GROUP:
    GROUP_OF[_arch] = "red"


@dataclass(frozen=True)
class ArchetypeProfile:
    """Service-mix recipe for one archetype.

    The service share vector of an antenna with this archetype is::

        share_j  ∝  popularity_j ** (1 - flatten)
                    * category_multipliers[category_j]
                    * service_multipliers[name_j]
                    * noise_j

    Attributes:
        archetype: which archetype this profile realizes.
        category_multipliers: per-category over/under-use factors.
        service_multipliers: per-service overrides (applied on top of the
            category factor).
        flatten: 0 keeps the global popularity mix; 1 makes all services
            equally likely (the paper's cluster 5 "services treated
            equally" behaviour).
    """

    archetype: Archetype
    category_multipliers: Mapping[ServiceCategory, float] = field(default_factory=dict)
    service_multipliers: Mapping[str, float] = field(default_factory=dict)
    flatten: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.flatten <= 1.0:
            raise ValueError(f"flatten must be in [0, 1], got {self.flatten}")
        for key, mult in {**self.category_multipliers}.items():
            if mult <= 0:
                raise ValueError(f"multiplier for {key} must be positive, got {mult}")
        for key, mult in {**self.service_multipliers}.items():
            if mult <= 0:
                raise ValueError(f"multiplier for {key!r} must be positive, got {mult}")

    def service_weights(self, catalog: ServiceCatalog) -> np.ndarray:
        """Expected (noise-free) service share vector over ``catalog``.

        Returns a length-M vector of positive weights normalized to sum 1.
        """
        popularity = catalog.popularity_weights()
        weights = popularity ** (1.0 - self.flatten)
        for j, svc in enumerate(catalog):
            factor = self.category_multipliers.get(svc.category, 1.0)
            factor *= self.service_multipliers.get(svc.name, 1.0)
            weights[j] *= factor
        return weights / weights.sum()


_C = ServiceCategory

#: Default archetype profiles, encoding the paper's per-cluster SHAP
#: narratives (Section 5.1.2).
DEFAULT_PROFILES: Dict[Archetype, ArchetypeProfile] = {
    Archetype.PARIS_COMMUTER_ENTERTAINMENT: ArchetypeProfile(
        Archetype.PARIS_COMMUTER_ENTERTAINMENT,
        category_multipliers={
            _C.MUSIC: 4.0,
            _C.NAVIGATION: 3.2,
            _C.ENTERTAINMENT: 2.2,
            _C.NEWS: 2.0,
            _C.SHOPPING: 1.4,
            _C.SPORTS: 1.3,
            _C.VIDEO_STREAMING: 0.6,
            _C.BUSINESS: 0.5,
        },
        service_multipliers={"Twitter": 1.2, "Waze": 0.4, "Netflix": 0.5},
    ),
    Archetype.PARIS_COMMUTER_LEAN: ArchetypeProfile(
        Archetype.PARIS_COMMUTER_LEAN,
        category_multipliers={
            _C.MUSIC: 4.0,
            _C.NAVIGATION: 3.2,
            _C.ENTERTAINMENT: 0.8,
            _C.SHOPPING: 0.7,
            _C.SPORTS: 0.7,
            _C.NEWS: 1.8,
            _C.VIDEO_STREAMING: 0.6,
            _C.BUSINESS: 0.5,
        },
        service_multipliers={"Twitter": 0.85, "Yahoo": 0.45, "Waze": 0.4},
    ),
    Archetype.PROVINCIAL_COMMUTER: ArchetypeProfile(
        Archetype.PROVINCIAL_COMMUTER,
        category_multipliers={
            _C.MUSIC: 3.2,
            _C.ENTERTAINMENT: 1.4,
            _C.NEWS: 1.5,
            _C.VIDEO_STREAMING: 0.7,
            _C.BUSINESS: 0.6,
        },
        service_multipliers={
            # Under-use of the navigation services metropolitan commuters
            # depend on (Section 5.2.2's Mappy / transport-website remark).
            "Mappy": 0.25,
            "Transportation Websites": 0.25,
            "Google Maps": 1.1,
            "Twitter": 1.2,
            "Waze": 0.5,
        },
    ),
    Archetype.UNIFORM_MODERATE: ArchetypeProfile(
        Archetype.UNIFORM_MODERATE,
        category_multipliers={
            # Shares the green group's mild suppression of mainstream
            # categories while treating services near-equally (flatten).
            _C.MUSIC: 0.6,
            _C.NAVIGATION: 0.7,
            _C.VIDEO_STREAMING: 0.7,
            _C.BUSINESS: 0.6,
            _C.EMAIL: 0.7,
            _C.CLOUD: 0.7,
            _C.SOCIAL: 1.4,
            _C.SPORTS: 2.0,
        },
        flatten=0.45,
    ),
    Archetype.PROVINCIAL_STADIUM: ArchetypeProfile(
        Archetype.PROVINCIAL_STADIUM,
        category_multipliers={
            _C.SPORTS: 4.0,
            _C.MUSIC: 0.45,
            _C.NAVIGATION: 0.6,
            _C.VIDEO_STREAMING: 0.4,
            _C.BUSINESS: 0.45,
            _C.EMAIL: 0.55,
            _C.SHOPPING: 0.55,
            _C.CLOUD: 0.55,
        },
        service_multipliers={
            "Snapchat": 3.4,
            "Twitter": 3.8,
            "Giphy": 0.15,
            "WhatsApp": 0.4,
            "Canal+": 0.15,
            "Waze": 1.6,
        },
    ),
    Archetype.PARIS_STADIUM: ArchetypeProfile(
        Archetype.PARIS_STADIUM,
        category_multipliers={
            _C.SPORTS: 4.5,
            _C.MUSIC: 0.5,
            _C.NAVIGATION: 0.7,
            _C.VIDEO_STREAMING: 0.4,
            _C.BUSINESS: 0.5,
            _C.SHOPPING: 0.6,
        },
        service_multipliers={
            "Snapchat": 3.7,
            "Twitter": 3.8,
            "Giphy": 3.0,
            "WhatsApp": 2.0,
            "Canal+": 2.0,
            "Waze": 1.4,
        },
    ),
    Archetype.GENERAL_USE: ArchetypeProfile(
        Archetype.GENERAL_USE,
        category_multipliers={
            _C.EMAIL: 1.6,
            _C.MESSAGING: 1.3,
            _C.MUSIC: 0.5,
            _C.SPORTS: 0.6,
        },
        service_multipliers={
            "Netflix": 1.8,
            "Disney+": 1.8,
            "Amazon Prime Video": 1.8,
            "Waze": 2.6,
            "Uber": 1.5,
            "Mappy": 0.5,
            "Transportation Websites": 0.5,
            "Twitter": 0.6,
            "Snapchat": 0.6,
        },
    ),
    Archetype.RETAIL_HOSPITALITY: ArchetypeProfile(
        Archetype.RETAIL_HOSPITALITY,
        category_multipliers={
            _C.SHOPPING: 2.6,
            _C.MUSIC: 0.4,
            _C.NAVIGATION: 0.45,
            _C.BUSINESS: 0.5,
            _C.SPORTS: 0.5,
            _C.EMAIL: 1.2,
            _C.MESSAGING: 1.1,
        },
        service_multipliers={
            "Google Play Store": 4.5,
            "Shopping Websites": 3.4,
            "Netflix": 1.5,
            "Waze": 0.6,
        },
    ),
    Archetype.OFFICE: ArchetypeProfile(
        Archetype.OFFICE,
        category_multipliers={
            _C.BUSINESS: 2.8,
            _C.EMAIL: 2.0,
            _C.CLOUD: 1.5,
            _C.MUSIC: 0.4,
            _C.NAVIGATION: 0.5,
            _C.VIDEO_STREAMING: 0.5,
            _C.SOCIAL: 0.65,
            _C.SPORTS: 0.5,
            _C.GAMING: 0.45,
        },
        service_multipliers={
            "Microsoft Teams": 1.6,
            "LinkedIn": 1.4,
            "Waze": 0.7,
        },
    ),
}


@dataclass(frozen=True)
class AssignmentRule:
    """Archetype distribution for antennas of one (environment, city) class."""

    weights: Mapping[Archetype, float]

    def __post_init__(self) -> None:
        total = sum(self.weights.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"assignment weights must sum to 1, got {total}")
        if any(w < 0 for w in self.weights.values()):
            raise ValueError("assignment weights must be non-negative")

    def sample(self, rng: np.random.Generator) -> Archetype:
        """Draw one archetype from the rule's distribution."""
        archetypes = list(self.weights)
        probs = np.array([self.weights[a] for a in archetypes], dtype=float)
        return archetypes[int(rng.choice(len(archetypes), p=probs))]


_A = Archetype

#: Environment/city -> archetype distribution.  Keys are
#: ``(EnvironmentType, is_paris)``.  Calibrated so cluster compositions
#: reproduce Figures 6-8 (see DESIGN.md section 4 shape criteria).
DEFAULT_ASSIGNMENT: Dict[Tuple[EnvironmentType, bool], AssignmentRule] = {
    (EnvironmentType.METRO, True): AssignmentRule(
        {_A.PARIS_COMMUTER_ENTERTAINMENT: 0.55, _A.PARIS_COMMUTER_LEAN: 0.45}
    ),
    (EnvironmentType.METRO, False): AssignmentRule({_A.PROVINCIAL_COMMUTER: 1.0}),
    (EnvironmentType.TRAIN, True): AssignmentRule(
        {_A.PARIS_COMMUTER_ENTERTAINMENT: 0.50, _A.PARIS_COMMUTER_LEAN: 0.50}
    ),
    (EnvironmentType.TRAIN, False): AssignmentRule(
        {_A.PARIS_COMMUTER_ENTERTAINMENT: 0.35, _A.PARIS_COMMUTER_LEAN: 0.65}
    ),
    (EnvironmentType.AIRPORT, True): AssignmentRule(
        {_A.GENERAL_USE: 0.97, _A.RETAIL_HOSPITALITY: 0.03}
    ),
    (EnvironmentType.AIRPORT, False): AssignmentRule(
        {_A.GENERAL_USE: 0.97, _A.RETAIL_HOSPITALITY: 0.03}
    ),
    (EnvironmentType.TUNNEL, True): AssignmentRule(
        {_A.GENERAL_USE: 0.97, _A.UNIFORM_MODERATE: 0.03}
    ),
    (EnvironmentType.TUNNEL, False): AssignmentRule(
        {_A.GENERAL_USE: 0.97, _A.UNIFORM_MODERATE: 0.03}
    ),
    (EnvironmentType.WORKSPACE, True): AssignmentRule(
        {_A.OFFICE: 0.82, _A.UNIFORM_MODERATE: 0.05, _A.GENERAL_USE: 0.07,
         _A.RETAIL_HOSPITALITY: 0.06}
    ),
    (EnvironmentType.WORKSPACE, False): AssignmentRule(
        {_A.OFFICE: 0.75, _A.UNIFORM_MODERATE: 0.08, _A.GENERAL_USE: 0.09,
         _A.RETAIL_HOSPITALITY: 0.08}
    ),
    (EnvironmentType.COMMERCIAL, True): AssignmentRule(
        {_A.RETAIL_HOSPITALITY: 0.50, _A.GENERAL_USE: 0.45, _A.UNIFORM_MODERATE: 0.05}
    ),
    (EnvironmentType.COMMERCIAL, False): AssignmentRule(
        {_A.RETAIL_HOSPITALITY: 0.50, _A.GENERAL_USE: 0.45, _A.UNIFORM_MODERATE: 0.05}
    ),
    (EnvironmentType.STADIUM, True): AssignmentRule(
        {_A.PARIS_STADIUM: 0.62, _A.UNIFORM_MODERATE: 0.28, _A.GENERAL_USE: 0.10}
    ),
    (EnvironmentType.STADIUM, False): AssignmentRule(
        {_A.PROVINCIAL_STADIUM: 0.68, _A.PARIS_STADIUM: 0.20, _A.UNIFORM_MODERATE: 0.12}
    ),
    (EnvironmentType.EXPO, True): AssignmentRule(
        {_A.OFFICE: 0.52, _A.UNIFORM_MODERATE: 0.25, _A.PARIS_STADIUM: 0.13,
         _A.GENERAL_USE: 0.10}
    ),
    (EnvironmentType.EXPO, False): AssignmentRule(
        {_A.OFFICE: 0.52, _A.UNIFORM_MODERATE: 0.28, _A.PARIS_STADIUM: 0.10,
         _A.GENERAL_USE: 0.10}
    ),
    (EnvironmentType.HOTEL, True): AssignmentRule(
        {_A.RETAIL_HOSPITALITY: 0.80, _A.GENERAL_USE: 0.20}
    ),
    (EnvironmentType.HOTEL, False): AssignmentRule(
        {_A.RETAIL_HOSPITALITY: 0.80, _A.GENERAL_USE: 0.20}
    ),
    (EnvironmentType.HOSPITAL, True): AssignmentRule(
        {_A.RETAIL_HOSPITALITY: 0.95, _A.GENERAL_USE: 0.05}
    ),
    (EnvironmentType.HOSPITAL, False): AssignmentRule(
        {_A.RETAIL_HOSPITALITY: 0.95, _A.GENERAL_USE: 0.05}
    ),
    (EnvironmentType.PUBLIC, True): AssignmentRule(
        {_A.RETAIL_HOSPITALITY: 0.65, _A.GENERAL_USE: 0.35}
    ),
    (EnvironmentType.PUBLIC, False): AssignmentRule(
        {_A.RETAIL_HOSPITALITY: 0.65, _A.GENERAL_USE: 0.35}
    ),
}


def assign_archetype(
    env_type: EnvironmentType,
    is_paris: bool,
    rng: np.random.Generator,
    assignment: Optional[Mapping[Tuple[EnvironmentType, bool], AssignmentRule]] = None,
) -> Archetype:
    """Sample the latent archetype for an antenna.

    Args:
        env_type: the antenna's indoor environment type.
        is_paris: whether the antenna is in metropolitan Paris.
        rng: generator for the draw.
        assignment: optional override of :data:`DEFAULT_ASSIGNMENT`.
    """
    rules = DEFAULT_ASSIGNMENT if assignment is None else assignment
    key = (env_type, is_paris)
    if key not in rules:
        raise KeyError(f"no assignment rule for {key!r}")
    return rules[key].sample(rng)


def default_profiles() -> Dict[Archetype, ArchetypeProfile]:
    """Return the default archetype profiles (a fresh shallow copy)."""
    return dict(DEFAULT_PROFILES)
