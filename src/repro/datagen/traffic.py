"""Traffic synthesis: two-month totals and on-demand hourly series.

The synthesizer is the library's stand-in for the operator's measurement
pipeline (DESIGN.md section 2).  It produces:

* the N x M **totals matrix** ``T`` (MB over the full study period) that
  feeds the RCA/RSCA transforms of Section 4.1;
* **hourly series** for any subset of antennas and any service (or the
  all-services total) over any window, used by the temporal analysis of
  Section 6 — re-synthesized deterministically from the master seed rather
  than stored (the full hourly tensor would be ~540M samples).

The hourly series of a pair (antenna ``i``, service ``j``) is the totals
entry ``T[i, j]`` spread over the study hours proportionally to the
temporal-model profile for (archetype_i, temporal_class_j), perturbed by
multiplicative log-normal noise and renormalized, so hourly series sum
exactly back to the totals matrix.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.antennas import Antenna, Site
from repro.datagen.archetypes import Archetype, ArchetypeProfile, default_profiles
from repro.datagen.calendar import (
    Event,
    StudyCalendar,
    nba_paris_event,
    random_expo_events,
    random_stadium_events,
    sirha_lyon_events,
)
from repro.datagen.environments import EnvironmentType, spec_for
from repro.datagen.services import ServiceCatalog, TemporalClass
from repro.datagen.temporal import TemporalModel
from repro.utils.rng import derive_rng

#: Default log-space sigma of per-(antenna, service) share noise.
SHARE_NOISE_SIGMA = 0.35
#: Default log-space sigma of per-antenna volume noise.
VOLUME_NOISE_SIGMA = 0.8
#: Default log-space sigma of per-hour multiplicative noise.
HOURLY_NOISE_SIGMA = 0.30


class TrafficModel:
    """Deterministic synthetic traffic source for one generated deployment.

    All randomness derives from ``master_seed`` via key paths, so any slice
    of the data can be re-synthesized independently and reproducibly.
    """

    def __init__(
        self,
        catalog: ServiceCatalog,
        sites: Sequence[Site],
        antennas: Sequence[Antenna],
        calendar: Optional[StudyCalendar] = None,
        profiles: Optional[Mapping[Archetype, ArchetypeProfile]] = None,
        master_seed: int = 0,
        share_noise_sigma: float = SHARE_NOISE_SIGMA,
        volume_noise_sigma: float = VOLUME_NOISE_SIGMA,
        hourly_noise_sigma: float = HOURLY_NOISE_SIGMA,
    ) -> None:
        if share_noise_sigma < 0 or volume_noise_sigma < 0 or hourly_noise_sigma < 0:
            raise ValueError("noise sigmas must be non-negative")
        self.catalog = catalog
        self.sites = list(sites)
        self.antennas = list(antennas)
        self.calendar = calendar if calendar is not None else StudyCalendar()
        self.profiles = dict(default_profiles() if profiles is None else profiles)
        self.master_seed = int(master_seed)
        self.share_noise_sigma = float(share_noise_sigma)
        self.volume_noise_sigma = float(volume_noise_sigma)
        self.hourly_noise_sigma = float(hourly_noise_sigma)
        self.temporal = TemporalModel(self.calendar)
        self._site_events = self._build_site_events()
        self._totals: Optional[np.ndarray] = None
        self._profile_cache: Dict[Tuple[int, int], Dict[TemporalClass, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def _build_site_events(self) -> Dict[int, List[Event]]:
        """Attach event calendars to event-driven venues.

        Every stadium gets a match schedule and every expo centre a fair
        schedule.  One Paris stadium site hosts the 19 Jan NBA game and
        one Lyon expo site hosts the Sirha fair (paper Section 6.0.1).
        """
        events: Dict[int, List[Event]] = {}
        paris_stadiums = [
            s for s in self.sites
            if s.env_type == EnvironmentType.STADIUM and s.is_paris
        ]
        lyon_expos = [
            s for s in self.sites
            if s.env_type == EnvironmentType.EXPO and s.city == "Lyon"
        ]
        nba_site = paris_stadiums[0].site_id if paris_stadiums else None
        sirha_site = lyon_expos[0].site_id if lyon_expos else None
        for site in self.sites:
            rng = derive_rng(self.master_seed, "events", site.site_id)
            site_events: List[Event] = []
            if site.env_type == EnvironmentType.STADIUM:
                site_events = random_stadium_events(self.calendar, rng)
            elif site.env_type == EnvironmentType.EXPO:
                site_events = random_expo_events(self.calendar, rng)
            if site.site_id == nba_site:
                site_events.append(nba_paris_event())
            if site.site_id == sirha_site:
                site_events.extend(sirha_lyon_events())
            if site_events:
                events[site.site_id] = site_events
        return events

    def events_for_site(self, site_id: int) -> List[Event]:
        """Event calendar of one site (empty for non-venue sites)."""
        return list(self._site_events.get(site_id, ()))

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------

    def service_shares(self) -> np.ndarray:
        """N x M matrix of per-antenna service shares (rows sum to 1)."""
        n_services = len(self.catalog)
        shares = np.empty((len(self.antennas), n_services))
        expected: Dict[Archetype, np.ndarray] = {
            arch: prof.service_weights(self.catalog)
            for arch, prof in self.profiles.items()
        }
        for i, antenna in enumerate(self.antennas):
            rng = derive_rng(self.master_seed, "shares", antenna.antenna_id)
            noise = rng.lognormal(0.0, self.share_noise_sigma, size=n_services)
            weights = expected[antenna.archetype] * noise
            shares[i] = weights / weights.sum()
        return shares

    def volumes(self) -> np.ndarray:
        """Per-antenna two-month total volume in MB (heavy-tailed)."""
        vols = np.empty(len(self.antennas))
        for i, antenna in enumerate(self.antennas):
            rng = derive_rng(self.master_seed, "volume", antenna.antenna_id)
            median = spec_for(antenna.env_type).volume_scale
            vols[i] = median * rng.lognormal(0.0, self.volume_noise_sigma)
        return vols

    def totals(self) -> np.ndarray:
        """The N x M totals matrix T (MB over the whole study period)."""
        if self._totals is None:
            self._totals = self.volumes()[:, None] * self.service_shares()
        return self._totals

    def window_totals(self, window: slice) -> np.ndarray:
        """Expected N x M totals restricted to a calendar window.

        Computed analytically (per-class temporal-profile mass inside the
        window), so it is cheap enough to split the study period — e.g.
        month-over-month stability analyses — without synthesizing the
        per-service hourly noise for every (antenna, service) pair.
        """
        indices = range(*window.indices(self.calendar.n_hours))
        if len(indices) == 0:
            raise ValueError("window selects no hours")
        totals = self.totals()
        out = np.zeros_like(totals)
        class_columns: Dict[TemporalClass, np.ndarray] = {
            tclass: np.array(
                [j for j, svc in enumerate(self.catalog)
                 if svc.temporal_class is tclass],
                dtype=int,
            )
            for tclass in TemporalClass
        }
        for i, antenna in enumerate(self.antennas):
            profiles = self._antenna_profiles(antenna)
            for tclass, cols in class_columns.items():
                if cols.size == 0:
                    continue
                profile = profiles[tclass]
                mass = profile.sum()
                if mass <= 0:
                    continue
                fraction = profile[window].sum() / mass
                out[i, cols] = totals[antenna.antenna_id, cols] * fraction
        return out

    def downlink_totals(self) -> np.ndarray:
        """Downlink component of the totals matrix."""
        dl = np.array([svc.downlink_fraction for svc in self.catalog])
        return self.totals() * dl[None, :]

    def uplink_totals(self) -> np.ndarray:
        """Uplink component of the totals matrix."""
        dl = np.array([svc.downlink_fraction for svc in self.catalog])
        return self.totals() * (1.0 - dl)[None, :]

    # ------------------------------------------------------------------
    # Hourly series
    # ------------------------------------------------------------------

    def _antenna_profiles(self, antenna: Antenna) -> Dict[TemporalClass, np.ndarray]:
        """Cached temporal profiles for one antenna's (archetype, site)."""
        key = (int(antenna.archetype), antenna.site_id)
        cached = self._profile_cache.get(key)
        if cached is None:
            events = self._site_events.get(antenna.site_id, ())
            cached = self.temporal.profiles_by_class(antenna.archetype, events)
            self._profile_cache[key] = cached
        return cached

    def _resolve_antennas(
        self, antenna_ids: Optional[Sequence[int]]
    ) -> List[Antenna]:
        if antenna_ids is None:
            return self.antennas
        by_id = {a.antenna_id: a for a in self.antennas}
        try:
            return [by_id[int(i)] for i in antenna_ids]
        except KeyError as exc:
            raise KeyError(f"unknown antenna id {exc.args[0]}") from None

    def hourly_service(
        self,
        service: str,
        antenna_ids: Optional[Sequence[int]] = None,
        window: Optional[slice] = None,
    ) -> np.ndarray:
        """Hourly traffic (MB) of one service at the selected antennas.

        Args:
            service: service name from the catalog.
            antenna_ids: antenna ids (defaults to all antennas, row order).
            window: slice over the calendar hour grid (defaults to all).

        Returns:
            array of shape ``(n_antennas, n_hours_in_window)``.  Summed
            over the *full* calendar, each row equals the totals entry.
        """
        j = self.catalog.index_of(service)
        tclass = self.catalog[j].temporal_class
        selected = self._resolve_antennas(antenna_ids)
        window = window if window is not None else slice(0, self.calendar.n_hours)
        totals = self.totals()
        out = np.empty((len(selected), len(range(*window.indices(self.calendar.n_hours)))))
        for row, antenna in enumerate(selected):
            profile = self._antenna_profiles(antenna)[tclass]
            rng = derive_rng(
                self.master_seed, "hourly", antenna.antenna_id, j
            )
            noisy = profile * rng.lognormal(0.0, self.hourly_noise_sigma, profile.shape)
            noisy_sum = noisy.sum()
            if noisy_sum <= 0:
                out[row] = 0.0
                continue
            series = totals[antenna.antenna_id, j] * noisy / noisy_sum
            out[row] = series[window]
        return out

    def hourly_total(
        self,
        antenna_ids: Optional[Sequence[int]] = None,
        window: Optional[slice] = None,
    ) -> np.ndarray:
        """Hourly all-services traffic (MB) at the selected antennas.

        Computed as the expectation over services (per temporal class) with
        antenna-level hourly noise — equivalent in distribution to summing
        the 73 per-service series, at 1/73rd the cost.
        """
        selected = self._resolve_antennas(antenna_ids)
        window = window if window is not None else slice(0, self.calendar.n_hours)
        totals = self.totals()
        class_columns: Dict[TemporalClass, np.ndarray] = {}
        for tclass in TemporalClass:
            cols = [
                j for j, svc in enumerate(self.catalog)
                if svc.temporal_class is tclass
            ]
            class_columns[tclass] = np.array(cols, dtype=int)
        n_window = len(range(*window.indices(self.calendar.n_hours)))
        out = np.empty((len(selected), n_window))
        for row, antenna in enumerate(selected):
            profiles = self._antenna_profiles(antenna)
            series = np.zeros(self.calendar.n_hours)
            for tclass, cols in class_columns.items():
                if cols.size == 0:
                    continue
                class_total = totals[antenna.antenna_id, cols].sum()
                profile = profiles[tclass]
                psum = profile.sum()
                if psum > 0:
                    series += class_total * profile / psum
            rng = derive_rng(self.master_seed, "hourly-total", antenna.antenna_id)
            series = series * rng.lognormal(0.0, self.hourly_noise_sigma / 2, series.shape)
            out[row] = series[window]
        return out
