"""Outdoor macro base stations near the indoor deployments.

Section 5.3 of the paper compares ICN demands against ~20,000 outdoor
antennas within 1 km of the indoor sites, and finds the indoor diversity
absent: ~70% of outdoor antennas classify into the general-use cluster 1,
a visible minority into the other red-group clusters, and only negligible
fractions into the specialized commuter/stadium/office clusters.

This module synthesizes that outdoor population.  Most outdoor antennas
serve the *general-purpose* service mix (the catalog's global popularity
weights with noise); a minority blend in a fraction of a specialized
archetype's mix — modelling the spatial spillover of indoor activity onto
nearby macro cells — which scatters a realistic remainder across the other
clusters without recreating the sharp indoor profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.antennas import DEG_PER_KM_LAT, Site
from repro.datagen.archetypes import Archetype, default_profiles
from repro.datagen.services import ServiceCatalog
from repro.utils.rng import derive_rng

#: Default number of outdoor antennas (paper Section 5.3.2: ~20,000-22,000).
DEFAULT_OUTDOOR_COUNT = 20000

#: Log-space sigma of outdoor per-service share noise.
OUTDOOR_NOISE_SIGMA = 0.30

#: Probability that an outdoor antenna blends a specialized archetype
#: into its general-purpose mix, and the blend-weight range.
DEFAULT_SPILLOVER_FRACTION = 0.30
SPILLOVER_ALPHA_RANGE = (0.35, 0.65)

#: Which archetypes spill over, and with what relative probability.  The
#: red-group profiles dominate (commercial areas, offices), matching the
#: visible non-cluster-1 bars of Fig. 9; orange/green spillover is rare.
DEFAULT_SPILLOVER_WEIGHTS: Dict[Archetype, float] = {
    Archetype.RETAIL_HOSPITALITY: 0.42,
    Archetype.OFFICE: 0.22,
    Archetype.UNIFORM_MODERATE: 0.18,
    Archetype.PARIS_COMMUTER_ENTERTAINMENT: 0.045,
    Archetype.PARIS_COMMUTER_LEAN: 0.045,
    Archetype.PROVINCIAL_COMMUTER: 0.04,
    Archetype.PROVINCIAL_STADIUM: 0.015,
    Archetype.PARIS_STADIUM: 0.015,
}

#: Two-month outdoor volume scale (MB); macro cells carry more than ICNs.
OUTDOOR_VOLUME_SCALE = 2.0e6


@dataclass(frozen=True)
class OutdoorAntenna:
    """One outdoor macro antenna near an indoor site."""

    antenna_id: int
    name: str
    anchor_site_id: int
    city: str
    is_paris: bool
    lat: float
    lon: float


def generate_outdoor(
    sites: Sequence[Site],
    catalog: ServiceCatalog,
    master_seed: int = 0,
    count: int = DEFAULT_OUTDOOR_COUNT,
    spillover_fraction: float = DEFAULT_SPILLOVER_FRACTION,
    spillover_weights: Optional[Mapping[Archetype, float]] = None,
) -> Tuple[List[OutdoorAntenna], np.ndarray]:
    """Generate outdoor antennas and their two-month totals matrix.

    Each outdoor antenna is anchored within 1 km of a uniformly chosen
    indoor site.  Its service mix is the catalog's global popularity mix
    with log-normal noise; with probability ``spillover_fraction`` a
    specialized archetype mix is blended in with weight alpha drawn from
    ``SPILLOVER_ALPHA_RANGE``.

    Returns:
        ``(antennas, totals)`` where ``totals`` has shape (count, M) in MB.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if not 0.0 <= spillover_fraction <= 1.0:
        raise ValueError(
            f"spillover_fraction must be in [0, 1], got {spillover_fraction}"
        )
    if not sites:
        raise ValueError("at least one indoor site is required as anchor")

    weights_map = dict(
        DEFAULT_SPILLOVER_WEIGHTS if spillover_weights is None else spillover_weights
    )
    spill_archetypes = list(weights_map)
    spill_probs = np.array([weights_map[a] for a in spill_archetypes], dtype=float)
    if np.any(spill_probs < 0):
        raise ValueError("spillover weights must be non-negative")
    spill_probs = spill_probs / spill_probs.sum()

    popularity = catalog.popularity_weights()
    profiles = default_profiles()
    archetype_mixes = {
        arch: profiles[arch].service_weights(catalog) for arch in spill_archetypes
    }
    rng = derive_rng(master_seed, "outdoor")
    anchor_indices = rng.integers(0, len(sites), size=count)

    antennas: List[OutdoorAntenna] = []
    totals = np.empty((count, len(catalog)))
    alpha_low, alpha_high = SPILLOVER_ALPHA_RANGE
    for i in range(count):
        site = sites[int(anchor_indices[i])]
        # Uniform position in the 1 km disc around the anchor site.
        radius_km = np.sqrt(rng.random())  # sqrt for uniform areal density
        angle = rng.random() * 2 * np.pi
        dlat = radius_km * np.sin(angle) * DEG_PER_KM_LAT
        dlon = (
            radius_km * np.cos(angle) * DEG_PER_KM_LAT
            / np.cos(np.radians(site.lat))
        )
        antennas.append(
            OutdoorAntenna(
                antenna_id=i,
                name=f"{site.city.upper()}-MACRO-{i:05d}",
                anchor_site_id=site.site_id,
                city=site.city,
                is_paris=site.is_paris,
                lat=site.lat + dlat,
                lon=site.lon + dlon,
            )
        )
        mix = popularity
        if rng.random() < spillover_fraction:
            arch = spill_archetypes[int(rng.choice(len(spill_archetypes), p=spill_probs))]
            alpha = float(rng.uniform(alpha_low, alpha_high))
            mix = (1.0 - alpha) * popularity + alpha * archetype_mixes[arch]
        shares = mix * rng.lognormal(0.0, OUTDOOR_NOISE_SIGMA, len(catalog))
        shares = shares / shares.sum()
        volume = OUTDOOR_VOLUME_SCALE * rng.lognormal(0.0, 0.7)
        totals[i] = volume * shares
    return antennas, totals


def neighbours_within(
    outdoor: Sequence[OutdoorAntenna],
    site: Site,
    radius_km: float = 1.0,
) -> List[OutdoorAntenna]:
    """Outdoor antennas within ``radius_km`` of an indoor site.

    Uses the equirectangular approximation, adequate at 1 km scales.
    """
    if radius_km <= 0:
        raise ValueError(f"radius_km must be positive, got {radius_km}")
    result = []
    cos_lat = np.cos(np.radians(site.lat))
    for antenna in outdoor:
        dy = (antenna.lat - site.lat) / DEG_PER_KM_LAT
        dx = (antenna.lon - site.lon) * cos_lat / DEG_PER_KM_LAT
        if dx * dx + dy * dy <= radius_km * radius_km:
            result.append(antenna)
    return result
