"""Indoor environment types (paper Table 1) and deployment geography.

The paper identifies eleven categories of indoor locations by keyword
extraction from base-station names, with the antenna counts of Table 1.
This module defines those categories, their counts, their city placement
(Paris vs non-capital, urban/suburban/rural), and the naming vocabulary
used to generate realistic BS names that the keyword extractor in
``repro.analysis.environment`` can parse.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


class EnvironmentType(enum.Enum):
    """The eleven indoor environment categories of Table 1."""

    METRO = "metro"
    TRAIN = "train"
    AIRPORT = "airport"
    WORKSPACE = "workspace"
    COMMERCIAL = "commercial"
    STADIUM = "stadium"
    EXPO = "expo"
    HOTEL = "hotel"
    HOSPITAL = "hospital"
    TUNNEL = "tunnel"
    PUBLIC = "public"


#: Antenna counts per environment from Table 1 of the paper (N_env).
TABLE1_COUNTS: Dict[EnvironmentType, int] = {
    EnvironmentType.METRO: 1794,
    EnvironmentType.TRAIN: 434,
    EnvironmentType.AIRPORT: 187,
    EnvironmentType.WORKSPACE: 774,
    EnvironmentType.COMMERCIAL: 469,
    EnvironmentType.STADIUM: 451,
    EnvironmentType.EXPO: 230,
    EnvironmentType.HOTEL: 28,
    EnvironmentType.HOSPITAL: 53,
    EnvironmentType.TUNNEL: 220,
    EnvironmentType.PUBLIC: 122,
}

#: Total number of indoor antennas in the study (Section 3).
TOTAL_INDOOR_ANTENNAS = 4762

assert sum(TABLE1_COUNTS.values()) == TOTAL_INDOOR_ANTENNAS


class Surrounding(enum.Enum):
    """Outdoor surrounding of a deployment site (Section 3)."""

    URBAN = "urban"
    SUBURBAN = "suburban"
    RURAL = "rural"


#: Cities with metro systems in the study (Section 5.2.1): Paris plus
#: four non-capital cities whose metro antennas form the paper's cluster 7.
METRO_CITIES: Tuple[str, ...] = ("Paris", "Lille", "Lyon", "Rennes", "Toulouse")

#: Non-capital cities used for other environment types.
PROVINCIAL_CITIES: Tuple[str, ...] = (
    "Lille",
    "Lyon",
    "Rennes",
    "Toulouse",
    "Marseille",
    "Bordeaux",
    "Nantes",
    "Strasbourg",
    "Nice",
    "Montpellier",
    "Grenoble",
    "Dijon",
)

#: Keywords embedded in generated BS names, per environment type.  The
#: keyword extractor recognizes these (upper-cased) tokens.
NAME_KEYWORDS: Dict[EnvironmentType, Tuple[str, ...]] = {
    EnvironmentType.METRO: ("METRO", "RER"),
    EnvironmentType.TRAIN: ("GARE", "TGV"),
    EnvironmentType.AIRPORT: ("AEROPORT", "TERMINAL"),
    EnvironmentType.WORKSPACE: ("BUREAU", "SIEGE", "USINE", "CAMPUS-ENTREPRISE"),
    EnvironmentType.COMMERCIAL: ("CENTRE-COMMERCIAL", "MAGASIN", "BOUTIQUE", "GALERIE"),
    EnvironmentType.STADIUM: ("STADE", "ARENA"),
    EnvironmentType.EXPO: ("EXPO", "PALAIS-CONGRES", "PARC-EXPOSITIONS"),
    EnvironmentType.HOTEL: ("HOTEL",),
    EnvironmentType.HOSPITAL: ("HOPITAL", "CHU", "CLINIQUE"),
    EnvironmentType.TUNNEL: ("TUNNEL",),
    EnvironmentType.PUBLIC: ("UNIVERSITE", "MUSEE", "MAIRIE", "PREFECTURE"),
}


@dataclass(frozen=True)
class EnvironmentSpec:
    """Deployment parameters for one environment type.

    Attributes:
        env_type: the environment category.
        count: number of indoor antennas (Table 1).
        paris_fraction: fraction of antennas deployed in metropolitan Paris.
        antennas_per_site: (low, high) range for antennas installed at one
            site — large venues like stadiums host many antennas.
        volume_scale: median two-month total traffic per antenna, in MB,
            controlling the heterogeneous volumes the paper notes.
        surrounding_weights: probability of (urban, suburban, rural).
    """

    env_type: EnvironmentType
    count: int
    paris_fraction: float
    antennas_per_site: Tuple[int, int]
    volume_scale: float
    surrounding_weights: Tuple[float, float, float] = (0.7, 0.25, 0.05)

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"count must be positive, got {self.count}")
        if not 0.0 <= self.paris_fraction <= 1.0:
            raise ValueError(
                f"paris_fraction must be in [0, 1], got {self.paris_fraction}"
            )
        low, high = self.antennas_per_site
        if not 1 <= low <= high:
            raise ValueError(f"invalid antennas_per_site range ({low}, {high})")
        if abs(sum(self.surrounding_weights) - 1.0) > 1e-9:
            raise ValueError("surrounding_weights must sum to 1")


#: Default deployment specs.  Paris fractions follow the paper's remarks
#: (e.g. >92% of commuter clusters 0/4 in Paris, cluster 2 ~92% outside
#: Paris, cluster 3 ~70% in Paris).
DEFAULT_SPECS: Tuple[EnvironmentSpec, ...] = (
    EnvironmentSpec(EnvironmentType.METRO, 1794, 0.78, (2, 8), 9.0e5),
    EnvironmentSpec(EnvironmentType.TRAIN, 434, 0.70, (2, 10), 7.0e5),
    EnvironmentSpec(EnvironmentType.AIRPORT, 187, 0.60, (4, 16), 1.1e6),
    EnvironmentSpec(EnvironmentType.WORKSPACE, 774, 0.72, (1, 6), 3.0e5),
    EnvironmentSpec(EnvironmentType.COMMERCIAL, 469, 0.10, (1, 6), 5.0e5),
    EnvironmentSpec(EnvironmentType.STADIUM, 451, 0.45, (4, 20), 6.0e5),
    EnvironmentSpec(EnvironmentType.EXPO, 230, 0.55, (2, 12), 4.0e5),
    EnvironmentSpec(EnvironmentType.HOTEL, 28, 0.40, (1, 3), 2.0e5),
    EnvironmentSpec(EnvironmentType.HOSPITAL, 53, 0.35, (1, 4), 2.5e5),
    EnvironmentSpec(EnvironmentType.TUNNEL, 220, 0.40, (1, 4), 3.5e5),
    EnvironmentSpec(EnvironmentType.PUBLIC, 122, 0.30, (1, 4), 2.0e5),
)


def default_specs() -> Tuple[EnvironmentSpec, ...]:
    """Return the default per-environment deployment specs."""
    return DEFAULT_SPECS


def spec_for(env_type: EnvironmentType) -> EnvironmentSpec:
    """Return the default spec for one environment type."""
    for spec in DEFAULT_SPECS:
        if spec.env_type == env_type:
            return spec
    raise KeyError(f"no default spec for {env_type!r}")
