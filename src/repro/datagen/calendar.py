"""Study-period calendar: hour grid, weekends, strike day, special events.

The paper's measurements span 2022-11-21 through 2023-01-24 (Section 3);
the temporal analysis of Section 6 focuses on the 2023-01-04 .. 2023-01-24
window, and calls out two anchor events: the national general strike of
19 January 2023 (suppressing commuter traffic, most severely in Paris)
and the NBA Paris Game at the Accor Arena that same evening, plus the
4-day Sirha Lyon fair (19-24 January) at Eurexpo Lyon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

#: Inclusive study period bounds (paper Section 3).
STUDY_START = np.datetime64("2022-11-21T00", "h")
STUDY_END = np.datetime64("2023-01-24T23", "h")

#: Temporal-analysis window of Figures 10 and 11 (Section 6).
TEMPORAL_WINDOW_START = np.datetime64("2023-01-04T00", "h")
TEMPORAL_WINDOW_END = np.datetime64("2023-01-24T23", "h")

#: The national general strike day (Section 6.0.1).
STRIKE_DAY = np.datetime64("2023-01-19")

#: NBA Paris Game: evening of 19 January 2023 (Section 6.0.1).
NBA_EVENT_HOURS: Tuple[np.datetime64, np.datetime64] = (
    np.datetime64("2023-01-19T18", "h"),
    np.datetime64("2023-01-19T23", "h"),
)

#: Sirha Lyon fair: 19-24 January 2023, daytime (Section 6.0.1).
SIRHA_DAYS: Tuple[np.datetime64, np.datetime64] = (
    np.datetime64("2023-01-19"),
    np.datetime64("2023-01-24"),
)


@dataclass(frozen=True)
class StudyCalendar:
    """Hourly grid over a study period, with date/hour decompositions.

    The default calendar covers the paper's full two-month collection
    period at one-hour resolution (1,560 hours).
    """

    start: np.datetime64 = STUDY_START
    end: np.datetime64 = STUDY_END

    def __post_init__(self) -> None:
        start = np.datetime64(self.start, "h")
        end = np.datetime64(self.end, "h")
        if end < start:
            raise ValueError(f"calendar end {end} precedes start {start}")
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "end", end)

    @property
    def hours(self) -> np.ndarray:
        """The hour grid as ``datetime64[h]``, inclusive of both ends."""
        return np.arange(self.start, self.end + np.timedelta64(1, "h"))

    @property
    def n_hours(self) -> int:
        """Number of hourly samples in the calendar."""
        return int((self.end - self.start) / np.timedelta64(1, "h")) + 1

    def hour_of_day(self) -> np.ndarray:
        """Hour-of-day (0..23) for every grid point."""
        hours = self.hours
        days = hours.astype("datetime64[D]")
        return ((hours - days) / np.timedelta64(1, "h")).astype(int)

    def dates(self) -> np.ndarray:
        """Calendar date (``datetime64[D]``) for every grid point."""
        return self.hours.astype("datetime64[D]")

    def day_of_week(self) -> np.ndarray:
        """ISO day of week (0=Monday .. 6=Sunday) for every grid point."""
        # 1970-01-01 was a Thursday (ISO index 3).
        days = self.dates().astype("datetime64[D]").view("int64")
        return ((days + 3) % 7).astype(int)

    def is_weekend(self) -> np.ndarray:
        """Boolean mask of Saturday/Sunday hours."""
        return self.day_of_week() >= 5

    def is_strike_day(self) -> np.ndarray:
        """Boolean mask of hours on the 19 January 2023 strike day."""
        return self.dates() == STRIKE_DAY

    def index_of(self, when: np.datetime64) -> int:
        """Index of ``when`` (truncated to the hour) in the hour grid."""
        when = np.datetime64(when, "h")
        if when < self.start or when > self.end:
            raise ValueError(f"{when} outside calendar [{self.start}, {self.end}]")
        return int((when - self.start) / np.timedelta64(1, "h"))

    def window(
        self,
        start: Optional[np.datetime64] = None,
        end: Optional[np.datetime64] = None,
    ) -> slice:
        """Slice of the hour grid covering [start, end] (inclusive)."""
        lo = self.index_of(start) if start is not None else 0
        hi = self.index_of(end) if end is not None else self.n_hours - 1
        if hi < lo:
            raise ValueError(f"window end {end} precedes start {start}")
        return slice(lo, hi + 1)

    def temporal_window(self) -> slice:
        """Slice covering the Fig. 10/11 analysis window (04-24 Jan 2023)."""
        start = max(TEMPORAL_WINDOW_START, self.start)
        end = min(TEMPORAL_WINDOW_END, self.end)
        return self.window(start, end)


@dataclass(frozen=True)
class Event:
    """One venue event: a contiguous burst of on-premises subscribers."""

    start: np.datetime64
    end: np.datetime64
    intensity: float = 10.0

    def __post_init__(self) -> None:
        start = np.datetime64(self.start, "h")
        end = np.datetime64(self.end, "h")
        if end < start:
            raise ValueError(f"event end {end} precedes start {start}")
        if self.intensity <= 0:
            raise ValueError(f"event intensity must be positive, got {self.intensity}")
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "end", end)

    def mask(self, calendar: StudyCalendar) -> np.ndarray:
        """Boolean mask over the calendar's hour grid covered by the event."""
        hours = calendar.hours
        return (hours >= self.start) & (hours <= self.end)


def match_days(calendar: StudyCalendar) -> np.ndarray:
    """The league-style match days of the study period.

    Professional fixtures synchronize venues nationwide: matches fall on
    Saturdays and Sundays plus mid-week Wednesday rounds.  Sharing this
    fixture calendar across stadium sites is what makes event bursts
    survive the cross-antenna median of Fig. 10.
    """
    dates = np.unique(calendar.dates())
    days = dates.astype("datetime64[D]").view("int64")
    day_of_week = (days + 3) % 7  # 0 = Monday
    mask = (day_of_week == 2) | (day_of_week >= 5)  # Wed, Sat, Sun
    return dates[mask]


def random_stadium_events(
    calendar: StudyCalendar,
    rng: np.random.Generator,
    attendance_probability: float = 0.75,
) -> List[Event]:
    """Sample a match schedule from the shared fixture calendar.

    Each venue hosts an evening event on each nationwide match day with
    probability ``attendance_probability``, so most stadiums burst on the
    same evenings (the condition for the median heatmap of Fig. 10 to show
    the bursts the paper reports).
    """
    if not 0.0 < attendance_probability <= 1.0:
        raise ValueError(
            f"attendance_probability must be in (0, 1], got {attendance_probability}"
        )
    events = []
    for day in match_days(calendar):
        if rng.random() > attendance_probability:
            continue
        start = np.datetime64(day, "h") + np.timedelta64(int(rng.integers(19, 21)), "h")
        duration = int(rng.integers(3, 4))
        end = min(start + np.timedelta64(duration, "h"), calendar.end)
        if start > calendar.end:
            continue
        events.append(Event(start, end, intensity=float(rng.uniform(8.0, 16.0))))
    return events


def random_expo_events(
    calendar: StudyCalendar, rng: np.random.Generator, fairs_per_month: float = 1.0
) -> List[Event]:
    """Sample multi-day daytime fairs (expo centers host 2-5 day events)."""
    if fairs_per_month <= 0:
        raise ValueError(f"fairs_per_month must be positive, got {fairs_per_month}")
    dates = np.unique(calendar.dates())
    n_fairs = max(1, int(round(fairs_per_month * dates.size / 30.0)))
    chosen = rng.choice(dates.size, size=min(n_fairs, dates.size), replace=False)
    events = []
    for day_idx in sorted(chosen):
        day = dates[day_idx]
        n_days = int(rng.integers(2, 6))
        for offset in range(n_days):
            event_day = day + np.timedelta64(offset, "D")
            start = np.datetime64(event_day, "h") + np.timedelta64(9, "h")
            end = np.datetime64(event_day, "h") + np.timedelta64(19, "h")
            if start > calendar.end:
                break
            events.append(Event(start, min(end, calendar.end),
                                intensity=float(rng.uniform(5.0, 10.0))))
    return events


def nba_paris_event() -> Event:
    """The 19 January 2023 NBA Paris Game burst (paper Section 6.0.1)."""
    return Event(NBA_EVENT_HOURS[0], NBA_EVENT_HOURS[1], intensity=20.0)


def sirha_lyon_events() -> List[Event]:
    """The 19-24 January 2023 Sirha Lyon fair bursts (Section 6.0.1)."""
    events = []
    day = SIRHA_DAYS[0]
    while day <= SIRHA_DAYS[1]:
        start = np.datetime64(day, "h") + np.timedelta64(9, "h")
        end = np.datetime64(day, "h") + np.timedelta64(19, "h")
        events.append(Event(start, end, intensity=9.0))
        day = day + np.timedelta64(1, "D")
    return events
