"""Revealed comparative advantage transforms (paper Section 4.1).

Given the N x M totals matrix ``T`` (antennas x services), the *revealed
comparative advantage* of service ``j`` at antenna ``i`` is (Eq. 1)::

    RCA[i, j] = (T[i, j] / T_i) / (T_j / T_tot)

with ``T_i`` the antenna's total, ``T_j`` the service's network-wide total
and ``T_tot`` the grand total.  RCA < 1 marks under-utilization and
RCA > 1 over-utilization, but over-utilization is unbounded; the *revealed
symmetric comparative advantage* (Eq. 2)::

    RSCA[i, j] = (RCA[i, j] - 1) / (RCA[i, j] + 1)

maps it into [-1, 1], balancing the two regimes.  Section 5.3 generalizes
RCA to outdoor antennas against the *indoor* reference mix (Eq. 5).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.checks import check_matrix


def rca_from_components(
    matrix: np.ndarray,
    antenna_totals: np.ndarray,
    service_totals: np.ndarray,
    grand_total: float,
) -> np.ndarray:
    """Eq. 1 from a totals matrix and externally maintained marginals.

    The marginals of a frozen matrix are simply its row/column/grand sums
    (that is what :func:`rca` passes), but an online consumer such as
    ``repro.stream`` maintains them additively across per-hour batches;
    keeping the arithmetic in one place guarantees the streamed transform
    matches the batch transform.

    Args:
        matrix: N x M non-negative traffic totals.
        antenna_totals: length-N per-antenna totals.  Antennas with zero
            total traffic are rejected — they have no utilization profile.
        service_totals: length-M network-wide per-service totals.
        grand_total: sum of all traffic; must be positive.

    Returns:
        N x M array of RCA values; entries are 0 where a service saw no
        traffic network-wide.
    """
    matrix = np.asarray(matrix, dtype=float)
    antenna_totals = np.asarray(antenna_totals, dtype=float)
    service_totals = np.asarray(service_totals, dtype=float)
    if antenna_totals.shape != (matrix.shape[0],):
        raise ValueError(
            f"antenna_totals must have shape ({matrix.shape[0]},), "
            f"got {antenna_totals.shape}"
        )
    if service_totals.shape != (matrix.shape[1],):
        raise ValueError(
            f"service_totals must have shape ({matrix.shape[1]},), "
            f"got {service_totals.shape}"
        )
    if np.any(antenna_totals == 0):
        silent = np.flatnonzero(antenna_totals == 0)[:5]
        raise ValueError(
            f"antennas with zero total traffic have no utilization profile "
            f"(first offending rows: {silent.tolist()})"
        )
    if not grand_total > 0:
        raise ValueError(f"grand_total must be positive, got {grand_total}")
    antenna_share = matrix / antenna_totals[:, None]
    service_share = (service_totals / grand_total)[None, :]
    # A service with zero network-wide traffic contributes nothing anywhere;
    # define its RCA as 0 (neutral under-utilization) rather than 0/0.
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.where(service_share > 0, antenna_share / service_share, 0.0)
    return result


def rca(totals: np.ndarray) -> np.ndarray:
    """Revealed comparative advantage per (antenna, service) — Eq. 1.

    Args:
        totals: N x M non-negative traffic totals.  Rows (antennas) with
            zero total traffic are rejected — an antenna that never carried
            traffic has no utilization profile.

    Returns:
        N x M array of RCA values; entries are 0 where a service saw no
        traffic at an antenna.
    """
    matrix = check_matrix(totals, "totals", non_negative=True)
    return rca_from_components(
        matrix, matrix.sum(axis=1), matrix.sum(axis=0), matrix.sum()
    )


def rsca_from_rca(rca_values: np.ndarray) -> np.ndarray:
    """Map RCA values onto the symmetric [-1, 1] index — Eq. 2."""
    values = np.asarray(rca_values, dtype=float)
    if np.any(values < 0):
        raise ValueError("RCA values must be non-negative")
    return (values - 1.0) / (values + 1.0)


def rsca(totals: np.ndarray) -> np.ndarray:
    """Revealed symmetric comparative advantage of a totals matrix.

    Composition of :func:`rca` and :func:`rsca_from_rca`; this is the
    feature matrix the paper clusters on.
    """
    return rsca_from_rca(rca(totals))


def outdoor_rca(
    outdoor_totals: np.ndarray, indoor_totals: np.ndarray
) -> np.ndarray:
    """RCA of outdoor antennas against the indoor reference mix — Eq. 5.

    The per-antenna service shares of the *outdoor* antennas are compared
    with the service shares of the aggregate *indoor* traffic, so the
    resulting values measure how outdoor demand deviates from indoor
    demand (paper Section 5.3.1).

    Args:
        outdoor_totals: K x M totals of the outdoor antennas.
        indoor_totals: N x M totals of the indoor antennas (reference).

    Returns:
        K x M array of RCA values.
    """
    outdoor = check_matrix(outdoor_totals, "outdoor_totals", non_negative=True)
    indoor = check_matrix(indoor_totals, "indoor_totals", non_negative=True)
    if outdoor.shape[1] != indoor.shape[1]:
        raise ValueError(
            f"outdoor and indoor matrices disagree on the number of services: "
            f"{outdoor.shape[1]} != {indoor.shape[1]}"
        )
    outdoor_row_totals = outdoor.sum(axis=1, keepdims=True)
    if np.any(outdoor_row_totals == 0):
        raise ValueError("outdoor antennas with zero total traffic are not allowed")
    indoor_service_share = indoor.sum(axis=0) / indoor.sum()
    outdoor_share = outdoor / outdoor_row_totals
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.where(
            indoor_service_share[None, :] > 0,
            outdoor_share / indoor_service_share[None, :],
            0.0,
        )
    return result


def outdoor_rsca(
    outdoor_totals: np.ndarray, indoor_totals: np.ndarray
) -> np.ndarray:
    """RSCA of outdoor antennas against the indoor reference mix."""
    return rsca_from_rca(outdoor_rca(outdoor_totals, indoor_totals))


def normalized_traffic(totals: np.ndarray) -> np.ndarray:
    """Totals normalized by the single largest (antenna, service) load.

    This is the naive feature the paper's Fig. 1 shows to be unusable:
    most entries collapse near zero under the global-maximum scaling.
    """
    matrix = check_matrix(totals, "totals", non_negative=True)
    peak = matrix.max()
    if peak == 0:
        raise ValueError("totals matrix is identically zero")
    return matrix / peak


def feature_histograms(
    totals: np.ndarray,
    antenna_indices: Optional[np.ndarray] = None,
    bins: int = 40,
) -> dict:
    """Histogram data behind Fig. 1 for a set of sample antennas.

    Returns a dict with keys ``"normalized"``, ``"rca"``, ``"rsca"``, each
    mapping to ``(counts, bin_edges)`` over the selected antennas' feature
    values, plus ``"max_rca"`` (the largest observed RCA, which the paper
    quotes to illustrate the index's unbounded tail).
    """
    matrix = check_matrix(totals, "totals", non_negative=True)
    if antenna_indices is not None:
        matrix = matrix[np.asarray(antenna_indices, dtype=int)]
    norm = normalized_traffic(matrix)
    rca_values = rca(matrix)
    rsca_values = rsca_from_rca(rca_values)
    return {
        "normalized": np.histogram(norm.ravel(), bins=bins),
        "rca": np.histogram(rca_values.ravel(), bins=bins),
        "rsca": np.histogram(rsca_values.ravel(), bins=bins, range=(-1.0, 1.0)),
        "max_rca": float(rca_values.max()),
    }
