"""Agglomerative hierarchical clustering, implemented from scratch.

The paper clusters antennas with bottom-up agglomerative clustering under
Ward's minimum-variance criterion (Section 4.2.1).  This module implements
the nearest-neighbour-chain algorithm — O(N^2) time, exact for *reducible*
linkage criteria (Ward, single, complete, average) — producing a
scipy-compatible linkage matrix, flat cluster cuts, and a navigable
dendrogram tree (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.checks import check_matrix

#: Supported linkage criteria.
LINKAGES = ("ward", "single", "complete", "average")


def pairwise_distances(
    features: np.ndarray, squared: bool = False, chunk_size: int = 512
) -> np.ndarray:
    """Dense Euclidean distance matrix, computed in row chunks.

    Args:
        features: N x M feature matrix.
        squared: return squared distances (used internally by Ward).
        chunk_size: rows per chunk, bounding peak temporary memory.

    Returns:
        N x N symmetric matrix with a zero diagonal.
    """
    x = check_matrix(features, "features")
    n = x.shape[0]
    sq_norms = np.einsum("ij,ij->i", x, x)
    out = np.empty((n, n))
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        block = sq_norms[start:stop, None] + sq_norms[None, :] - 2.0 * (x[start:stop] @ x.T)
        np.maximum(block, 0.0, out=block)
        out[start:stop] = block
    np.fill_diagonal(out, 0.0)
    if not squared:
        np.sqrt(out, out=out)
    return out


def _lance_williams_update(
    method: str,
    dist_a: np.ndarray,
    dist_b: np.ndarray,
    dist_ab: float,
    size_a: float,
    size_b: float,
    sizes: np.ndarray,
) -> np.ndarray:
    """Distance from the merged cluster (a u b) to every other cluster.

    For ``ward`` the inputs and output are *squared* Euclidean distances;
    for the other criteria they are plain distances.
    """
    if method == "ward":
        total = size_a + size_b + sizes
        return (
            (size_a + sizes) * dist_a
            + (size_b + sizes) * dist_b
            - sizes * dist_ab
        ) / total
    if method == "single":
        return np.minimum(dist_a, dist_b)
    if method == "complete":
        return np.maximum(dist_a, dist_b)
    if method == "average":
        return (size_a * dist_a + size_b * dist_b) / (size_a + size_b)
    raise ValueError(f"unknown linkage method {method!r}; expected one of {LINKAGES}")


def _nn_chain_merges(
    dist: np.ndarray, method: str
) -> List[Tuple[int, int, float]]:
    """Run the nearest-neighbour chain, returning raw merges.

    ``dist`` is consumed destructively.  Returned tuples are
    ``(slot_a, slot_b, height)`` where slots are original point indices of
    cluster representatives; heights are in the method's working metric
    (squared distances for ward).
    """
    n = dist.shape[0]
    sizes = np.ones(n)
    active = np.ones(n, dtype=bool)
    merges: List[Tuple[int, int, float]] = []
    # cluster_of[slot] tracks which original slot currently represents the
    # cluster containing that slot's points; merged-away slots deactivate.
    chain: List[int] = []
    inf = np.inf
    for _ in range(n - 1):
        if not chain:
            chain.append(int(np.flatnonzero(active)[0]))
        while True:
            a = chain[-1]
            row = np.where(active, dist[a], inf)
            row[a] = inf
            b = int(np.argmin(row))
            if len(chain) >= 2 and b == chain[-2]:
                break
            chain.append(b)
        chain.pop()
        chain.pop()
        height = dist[a, b]
        # Merge b into a's slot: update distances via Lance-Williams.
        others = active.copy()
        others[a] = False
        others[b] = False
        idx = np.flatnonzero(others)
        if idx.size:
            updated = _lance_williams_update(
                method, dist[a, idx], dist[b, idx], height,
                sizes[a], sizes[b], sizes[idx],
            )
            dist[a, idx] = updated
            dist[idx, a] = updated
        sizes[a] = sizes[a] + sizes[b]
        active[b] = False
        merges.append((a, b, float(height)))
    return merges


def _label_merges(
    merges: Sequence[Tuple[int, int, float]], n: int, method: str
) -> np.ndarray:
    """Sort raw merges by height and produce a scipy-style linkage matrix.

    Rows are ``[id_a, id_b, height, size]``; ids < n are leaves and
    id ``n + t`` is the cluster created by row ``t``.  Ward heights are
    converted from the squared working metric back to Euclidean units.
    """
    order = np.argsort([m[2] for m in merges], kind="stable")
    parent = np.arange(2 * n - 1)

    def find(node: int) -> int:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    linkage_matrix = np.empty((n - 1, 4))
    cluster_id = np.arange(n)  # representative slot -> current cluster id
    sizes = np.ones(2 * n - 1)
    for t, merge_idx in enumerate(order):
        slot_a, slot_b, height = merges[merge_idx]
        id_a = find(slot_a)
        id_b = find(slot_b)
        new_id = n + t
        lo, hi = (id_a, id_b) if id_a < id_b else (id_b, id_a)
        value = np.sqrt(height) if method == "ward" else height
        sizes[new_id] = sizes[id_a] + sizes[id_b]
        linkage_matrix[t] = (lo, hi, value, sizes[new_id])
        parent[id_a] = new_id
        parent[id_b] = new_id
    return linkage_matrix


def linkage(features: np.ndarray, method: str = "ward") -> np.ndarray:
    """Agglomerative linkage of row vectors under Euclidean distance.

    Args:
        features: N x M matrix; each row is one observation (for the paper,
            one antenna's RSCA vector).
        method: one of ``"ward"``, ``"single"``, ``"complete"``,
            ``"average"``.

    Returns:
        (N-1) x 4 linkage matrix ``[id_a, id_b, height, size]`` with the
        same conventions as ``scipy.cluster.hierarchy.linkage``.
    """
    if method not in LINKAGES:
        raise ValueError(f"unknown linkage method {method!r}; expected one of {LINKAGES}")
    x = check_matrix(features, "features")
    n = x.shape[0]
    if n < 2:
        raise ValueError("clustering needs at least two observations")
    dist = pairwise_distances(x, squared=(method == "ward"))
    merges = _nn_chain_merges(dist, method)
    return _label_merges(merges, n, method)


def cut_tree(linkage_matrix: np.ndarray, n_clusters: int) -> np.ndarray:
    """Flat cluster labels obtained by undoing the top merges.

    Labels are 0..k-1, assigned in order of first appearance, so they are
    deterministic but arbitrary (align with
    :func:`repro.utils.align_labels` for paper numbering).
    """
    z = np.asarray(linkage_matrix, dtype=float)
    n = z.shape[0] + 1
    if not 1 <= n_clusters <= n:
        raise ValueError(f"n_clusters must be in [1, {n}], got {n_clusters}")
    parent = np.arange(2 * n - 1)

    def find(node: int) -> int:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    for t in range(n - n_clusters):
        new_id = n + t
        parent[int(z[t, 0])] = new_id
        parent[int(z[t, 1])] = new_id
    roots: Dict[int, int] = {}
    labels = np.empty(n, dtype=int)
    for leaf in range(n):
        root = find(leaf)
        if root not in roots:
            roots[root] = len(roots)
        labels[leaf] = roots[root]
    return labels


def threshold_for_k(linkage_matrix: np.ndarray, n_clusters: int) -> float:
    """Distance threshold separating exactly ``n_clusters`` flat clusters.

    Cutting the dendrogram at any height in the half-open interval
    ``[h, h_next)`` — where this function returns the midpoint — yields
    ``n_clusters`` clusters (the horizontal lines of Fig. 3).
    """
    z = np.asarray(linkage_matrix, dtype=float)
    n = z.shape[0] + 1
    if not 1 <= n_clusters <= n:
        raise ValueError(f"n_clusters must be in [1, {n}], got {n_clusters}")
    if n_clusters == 1:
        return float(z[-1, 2] * 1.05)
    if n_clusters == n:
        return float(z[0, 2] / 2.0)
    lower = z[n - n_clusters - 1, 2]
    upper = z[n - n_clusters, 2]
    return float((lower + upper) / 2.0)


def cophenetic_distances(linkage_matrix: np.ndarray) -> np.ndarray:
    """N x N matrix of cophenetic distances (merge height joining i and j)."""
    z = np.asarray(linkage_matrix, dtype=float)
    n = z.shape[0] + 1
    members: Dict[int, np.ndarray] = {i: np.array([i]) for i in range(n)}
    out = np.zeros((n, n))
    for t in range(n - 1):
        id_a, id_b, height = int(z[t, 0]), int(z[t, 1]), z[t, 2]
        left = members.pop(id_a)
        right = members.pop(id_b)
        out[np.ix_(left, right)] = height
        out[np.ix_(right, left)] = height
        members[n + t] = np.concatenate([left, right])
    return out


@dataclass
class DendrogramNode:
    """One node of the dendrogram tree."""

    node_id: int
    height: float
    left: Optional["DendrogramNode"] = None
    right: Optional["DendrogramNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    def leaves(self) -> List[int]:
        """Original observation indices under this node, left-to-right."""
        if self.is_leaf:
            return [self.node_id]
        return self.left.leaves() + self.right.leaves()

    def count(self) -> int:
        """Number of observations under this node."""
        if self.is_leaf:
            return 1
        return self.left.count() + self.right.count()


class Dendrogram:
    """Navigable merge tree over a linkage matrix (paper Fig. 3).

    Supports flat cuts, per-cut distance thresholds, and the grouping view
    the paper uses ("three large groups of clusters, each split into three
    sub-clusters").
    """

    def __init__(self, linkage_matrix: np.ndarray) -> None:
        z = np.asarray(linkage_matrix, dtype=float)
        if z.ndim != 2 or z.shape[1] != 4:
            raise ValueError(f"linkage matrix must be (N-1) x 4, got {z.shape}")
        self.linkage_matrix = z
        self.n_leaves = z.shape[0] + 1
        nodes: Dict[int, DendrogramNode] = {
            i: DendrogramNode(i, 0.0) for i in range(self.n_leaves)
        }
        for t in range(z.shape[0]):
            nodes[self.n_leaves + t] = DendrogramNode(
                self.n_leaves + t,
                float(z[t, 2]),
                left=nodes[int(z[t, 0])],
                right=nodes[int(z[t, 1])],
            )
        self.root = nodes[2 * self.n_leaves - 2]
        self._nodes = nodes

    def cut(self, n_clusters: int) -> np.ndarray:
        """Flat labels for ``n_clusters`` clusters (see :func:`cut_tree`)."""
        return cut_tree(self.linkage_matrix, n_clusters)

    def threshold_for(self, n_clusters: int) -> float:
        """Cut height yielding ``n_clusters`` clusters."""
        return threshold_for_k(self.linkage_matrix, n_clusters)

    def nodes_at(self, n_clusters: int) -> List[DendrogramNode]:
        """The subtree roots forming the ``n_clusters``-cluster partition."""
        if not 1 <= n_clusters <= self.n_leaves:
            raise ValueError(
                f"n_clusters must be in [1, {self.n_leaves}], got {n_clusters}"
            )
        frontier = [self.root]
        while len(frontier) < n_clusters:
            # Split the frontier node with the greatest merge height.
            splittable = [node for node in frontier if not node.is_leaf]
            node = max(splittable, key=lambda nd: nd.height)
            frontier.remove(node)
            frontier.extend([node.left, node.right])
        return frontier

    def group_of_clusters(
        self, n_clusters: int, n_groups: int
    ) -> Dict[int, int]:
        """Map fine-cut labels to coarse-cut labels.

        For the paper's structure, ``group_of_clusters(9, 3)`` reports which
        of the three dendrogram branches (orange/green/red) each of the nine
        clusters belongs to.
        """
        fine = self.cut(n_clusters)
        coarse = self.cut(n_groups)
        mapping: Dict[int, int] = {}
        for fine_label in np.unique(fine):
            members = np.flatnonzero(fine == fine_label)
            coarse_labels = np.unique(coarse[members])
            if coarse_labels.size != 1:
                raise RuntimeError(
                    "hierarchy violation: a fine cluster spans coarse groups"
                )
            mapping[int(fine_label)] = int(coarse_labels[0])
        return mapping


class AgglomerativeClustering:
    """Scikit-learn-style front door for the hierarchical clustering.

    >>> model = AgglomerativeClustering(n_clusters=9, linkage="ward")
    >>> labels = model.fit_predict(features)          # doctest: +SKIP
    """

    def __init__(self, n_clusters: int = 9, linkage: str = "ward") -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if linkage not in LINKAGES:
            raise ValueError(f"unknown linkage {linkage!r}; expected one of {LINKAGES}")
        self.n_clusters = n_clusters
        self.linkage = linkage
        self.linkage_matrix_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.dendrogram_: Optional[Dendrogram] = None

    def fit(self, features: np.ndarray) -> "AgglomerativeClustering":
        """Cluster the rows of ``features``; fills the fitted attributes."""
        self.linkage_matrix_ = linkage(features, self.linkage)
        self.dendrogram_ = Dendrogram(self.linkage_matrix_)
        self.labels_ = self.dendrogram_.cut(self.n_clusters)
        return self

    def fit_predict(self, features: np.ndarray) -> np.ndarray:
        """Fit and return the flat cluster labels."""
        return self.fit(features).labels_
