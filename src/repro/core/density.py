"""DBSCAN density clustering (the noise-aware baseline).

Completes the clustering-algorithm family for the ablations: unlike
Ward/k-means/spectral, DBSCAN does not fix k and labels low-density
points as noise (-1).  On the RSCA features it tests whether the paper's
nine profiles are dense regions rather than partition artefacts.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.core.cluster import pairwise_distances
from repro.utils.checks import check_matrix

#: Label assigned to noise points.
NOISE = -1


class DBSCAN:
    """Density-based spatial clustering of applications with noise.

    Args:
        eps: neighbourhood radius.
        min_samples: neighbours (including the point) required for a core
            point.
    """

    def __init__(self, eps: float = 0.5, min_samples: int = 5) -> None:
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.eps = eps
        self.min_samples = min_samples
        self.labels_: Optional[np.ndarray] = None
        self.core_mask_: Optional[np.ndarray] = None

    def fit(self, features) -> "DBSCAN":
        """Cluster the rows of ``features``; noise points get label -1."""
        x = check_matrix(features, "features")
        n = x.shape[0]
        distances = pairwise_distances(x)
        neighbourhoods = [
            np.flatnonzero(distances[i] <= self.eps) for i in range(n)
        ]
        core = np.array(
            [idx.size >= self.min_samples for idx in neighbourhoods]
        )
        labels = np.full(n, NOISE, dtype=int)
        cluster = 0
        for seed in range(n):
            if labels[seed] != NOISE or not core[seed]:
                continue
            # Breadth-first expansion from a fresh core point.
            labels[seed] = cluster
            queue = deque(neighbourhoods[seed].tolist())
            while queue:
                point = queue.popleft()
                if labels[point] == NOISE:
                    labels[point] = cluster
                    if core[point]:
                        queue.extend(neighbourhoods[point].tolist())
            cluster += 1
        self.labels_ = labels
        self.core_mask_ = core
        return self

    def fit_predict(self, features) -> np.ndarray:
        """Fit and return the labels (-1 = noise)."""
        return self.fit(features).labels_

    @property
    def n_clusters_(self) -> int:
        """Number of discovered clusters (noise excluded)."""
        if self.labels_ is None:
            raise RuntimeError("DBSCAN is not fitted; call fit() first")
        return int(np.unique(self.labels_[self.labels_ != NOISE]).size)

    @property
    def noise_fraction_(self) -> float:
        """Fraction of points labelled noise."""
        if self.labels_ is None:
            raise RuntimeError("DBSCAN is not fitted; call fit() first")
        return float(np.mean(self.labels_ == NOISE))
