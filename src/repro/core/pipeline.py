"""End-to-end ICN profiling pipeline (the paper's full methodology).

:class:`ICNProfiler` chains the stages of Sections 4-5: RSCA transform ->
agglomerative (Ward) clustering -> random-forest surrogate -> SHAP
explanations -> environment / outdoor / Paris-share analyses.  The fitted
result object, :class:`ICNProfile`, exposes every intermediate artefact so
examples and benchmarks can regenerate each figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.environment import ContingencyTable, contingency, paris_share
from repro.analysis.outdoor import OutdoorComparison, classify_outdoor
from repro.core.cluster import AgglomerativeClustering, Dendrogram
from repro.core.rca import rsca
from repro.core.validation import KScanResult, scan_k
from repro.datagen.dataset import TrafficDataset
from repro.datagen.environments import EnvironmentType
from repro.explain.beeswarm import ClusterExplanation, explain_clusters
from repro.explain.treeshap import TreeExplainer
from repro.ml.forest import RandomForestClassifier
from repro.obs import timed_stage
from repro.utils.assignment import align_labels
from repro.utils.checks import check_matrix


@dataclass
class ICNProfile:
    """The fitted output of :class:`ICNProfiler`.

    Attributes:
        features: N x M RSCA matrix the clustering ran on.
        labels: cluster label per antenna (possibly aligned; see
            :meth:`aligned_to`).
        clustering: the fitted hierarchical clustering model.
        surrogate: random forest trained to imitate the clustering.
        surrogate_accuracy: surrogate's training-set agreement with the
            clustering labels (the paper's sanity requirement for Fig. 9).
        service_names: feature names in column order.
        env_types: per-antenna environment types, if a dataset was given.
        paris_mask: per-antenna Paris flags, if a dataset was given.
    """

    features: np.ndarray
    labels: np.ndarray
    clustering: AgglomerativeClustering
    surrogate: RandomForestClassifier
    surrogate_accuracy: float
    service_names: List[str]
    env_types: Optional[List[EnvironmentType]] = None
    paris_mask: Optional[np.ndarray] = None
    _explanations: Optional[Dict[int, ClusterExplanation]] = field(
        default=None, repr=False
    )

    @property
    def n_clusters(self) -> int:
        """Number of flat clusters."""
        return int(np.unique(self.labels).size)

    @property
    def dendrogram(self) -> Dendrogram:
        """The full merge hierarchy (Fig. 3)."""
        return self.clustering.dendrogram_

    def cluster_sizes(self) -> Dict[int, int]:
        """Antenna count per cluster."""
        unique, counts = np.unique(self.labels, return_counts=True)
        return {int(c): int(n) for c, n in zip(unique, counts)}

    def groups(self, n_groups: int = 3) -> Dict[int, int]:
        """Cluster -> dendrogram-group mapping (the 3 branch colours)."""
        raw_fine = self.dendrogram.cut(self.n_clusters)
        raw_groups = self.dendrogram.group_of_clusters(self.n_clusters, n_groups)
        # The profile labels may be an aligned relabelling of the raw cut;
        # translate group membership through the observed correspondence.
        mapping: Dict[int, int] = {}
        for aligned_label in np.unique(self.labels):
            members = np.flatnonzero(self.labels == aligned_label)
            raw_label = int(np.bincount(raw_fine[members]).argmax())
            mapping[int(aligned_label)] = raw_groups[raw_label]
        return mapping

    # ------------------------------------------------------------------
    # Label alignment
    # ------------------------------------------------------------------

    def aligned_to(self, reference: Sequence[int]) -> "ICNProfile":
        """Relabel clusters to best match a reference labelling.

        Used to report results in the paper's cluster numbering by aligning
        to the generator's latent archetypes.  Returns a new profile with a
        retrained surrogate on the aligned labels.
        """
        mapping = align_labels(self.labels, np.asarray(reference, dtype=int))
        new_labels = np.array([mapping[int(l)] for l in self.labels], dtype=int)
        surrogate = RandomForestClassifier(
            n_estimators=self.surrogate.n_estimators,
            max_depth=self.surrogate.max_depth,
            max_features=self.surrogate.max_features,
            random_state=self.surrogate.random_state,
        )
        surrogate.fit(self.features, new_labels)
        accuracy = surrogate.score(self.features, new_labels)
        return ICNProfile(
            features=self.features,
            labels=new_labels,
            clustering=self.clustering,
            surrogate=surrogate,
            surrogate_accuracy=accuracy,
            service_names=self.service_names,
            env_types=self.env_types,
            paris_mask=self.paris_mask,
        )

    # ------------------------------------------------------------------
    # Downstream analyses
    # ------------------------------------------------------------------

    def explain(
        self, samples_per_cluster: Optional[int] = 60, random_state: int = 0
    ) -> Dict[int, ClusterExplanation]:
        """Per-cluster SHAP summaries (Fig. 5); computed once and cached."""
        if self._explanations is None:
            with timed_stage("pipeline.shap",
                             n_clusters=self.n_clusters,
                             samples_per_cluster=samples_per_cluster):
                explainer = TreeExplainer(self.surrogate)
                self._explanations = explain_clusters(
                    explainer,
                    self.features,
                    self.labels,
                    self.service_names,
                    samples_per_cluster=samples_per_cluster,
                    random_state=random_state,
                )
        return self._explanations

    def environment_table(self) -> ContingencyTable:
        """Cluster x environment contingency (Figs. 6-8)."""
        if self.env_types is None:
            raise RuntimeError(
                "environment analysis requires fitting on a TrafficDataset"
            )
        return contingency(self.labels, self.env_types)

    def paris_shares(self) -> Dict[int, float]:
        """Per-cluster fraction of Paris antennas (Section 5.2.2 remarks)."""
        if self.paris_mask is None:
            raise RuntimeError("Paris analysis requires fitting on a TrafficDataset")
        return paris_share(self.labels, self.paris_mask)

    def classify_outdoor(
        self, outdoor_totals: np.ndarray, indoor_totals: np.ndarray
    ) -> OutdoorComparison:
        """Classify outdoor antennas through the surrogate (Fig. 9)."""
        return classify_outdoor(
            self.surrogate, outdoor_totals, indoor_totals,
            all_clusters=sorted(self.cluster_sizes()),
        )

    def freeze(
        self,
        antenna_ids: Optional[Sequence[int]] = None,
        service_totals: Optional[np.ndarray] = None,
    ):
        """Export the frozen artifact the online subsystem consumes.

        Snapshots the reference partition — features, labels, centroids
        and the fitted surrogate — into a
        :class:`~repro.stream.frozen.FrozenProfile` that serializes to
        ``.npz`` and classifies streamed antennas (see ``repro.stream``).

        Args:
            antenna_ids: ids of this profile's rows; defaults to
                ``0..N-1``, matching profiles fitted on a
                :class:`~repro.datagen.dataset.TrafficDataset`.
            service_totals: network-wide per-service traffic totals of
                the reference period (``dataset.totals.sum(axis=0)``);
                enables raw-volume queries in the serving layer
                (``repro.serve``).
        """
        from repro.stream.frozen import freeze_profile

        return freeze_profile(
            self, antenna_ids=antenna_ids, service_totals=service_totals
        )

    def generalization_accuracy(
        self, test_fraction: float = 0.25, random_state: int = 0
    ) -> float:
        """Held-out accuracy of a surrogate retrained on a stratified split.

        The Fig. 9 methodology classifies *unseen* outdoor antennas with
        the surrogate, which is only meaningful if the forest generalizes
        beyond its training antennas; this measures that directly.
        """
        from repro.ml.metrics import train_test_split

        x_train, x_test, y_train, y_test = train_test_split(
            self.features, self.labels,
            test_fraction=test_fraction, random_state=random_state,
        )
        heldout = RandomForestClassifier(
            n_estimators=self.surrogate.n_estimators,
            max_depth=self.surrogate.max_depth,
            max_features=self.surrogate.max_features,
            random_state=self.surrogate.random_state,
        )
        heldout.fit(x_train, y_train)
        return heldout.score(x_test, y_test)

    def summary(self) -> str:
        """Human-readable overview of the fitted profile."""
        sizes = self.cluster_sizes()
        lines = [
            f"ICN profile: {self.features.shape[0]} antennas x "
            f"{self.features.shape[1]} services, {self.n_clusters} clusters",
            f"surrogate training accuracy: {self.surrogate_accuracy:.3f}",
            "cluster sizes: "
            + ", ".join(f"{c}:{n}" for c, n in sorted(sizes.items())),
        ]
        if self.env_types is not None:
            table = self.environment_table()
            for cluster in sorted(sizes):
                dominant = table.dominant_environment(cluster)
                share = table.composition_of(cluster)[dominant]
                lines.append(
                    f"  cluster {cluster}: dominant environment "
                    f"{dominant.value} ({share:.0%})"
                )
        return "\n".join(lines)


class ICNProfiler:
    """Front door of the reproduction: the paper's Sections 4-5 pipeline.

    Args:
        n_clusters: flat cluster count (paper selects 9).
        linkage: agglomerative criterion (paper uses Ward).
        surrogate_trees: random-forest size (paper uses 100).
        surrogate_max_depth: depth cap for the surrogate trees; depth 6
            already reaches full training accuracy on this task and keeps
            TreeSHAP an order of magnitude faster than unbounded trees.
        random_state: seed for the surrogate.
    """

    def __init__(
        self,
        n_clusters: int = 9,
        linkage: str = "ward",
        surrogate_trees: int = 100,
        surrogate_max_depth: Optional[int] = 6,
        random_state: int = 0,
    ) -> None:
        if n_clusters < 2:
            raise ValueError(f"n_clusters must be >= 2, got {n_clusters}")
        if surrogate_trees < 1:
            raise ValueError(f"surrogate_trees must be >= 1, got {surrogate_trees}")
        self.n_clusters = n_clusters
        self.linkage = linkage
        self.surrogate_trees = surrogate_trees
        self.surrogate_max_depth = surrogate_max_depth
        self.random_state = random_state

    def fit(
        self,
        data: Union[TrafficDataset, np.ndarray],
        align_to: Optional[Sequence[int]] = None,
    ) -> ICNProfile:
        """Run transform -> cluster -> surrogate on a dataset or matrix.

        Args:
            data: a :class:`TrafficDataset`, or a raw N x M totals matrix.
            align_to: optional reference labels (e.g. the generator's
                archetypes) to renumber clusters for paper-style reporting.

        Returns:
            a fitted :class:`ICNProfile`.
        """
        if isinstance(data, TrafficDataset):
            totals = data.totals
            service_names = data.service_names
            env_types = data.environment_types()
            paris_mask = data.paris_mask()
        else:
            totals = check_matrix(data, "data", non_negative=True)
            service_names = [f"service_{j}" for j in range(totals.shape[1])]
            env_types = None
            paris_mask = None

        with timed_stage("pipeline.rca",
                         rows=int(totals.shape[0]),
                         services=int(totals.shape[1])):
            features = rsca(totals)
        with timed_stage("pipeline.cluster",
                         n_clusters=self.n_clusters, linkage=self.linkage):
            clustering = AgglomerativeClustering(
                n_clusters=self.n_clusters, linkage=self.linkage
            )
            labels = clustering.fit_predict(features)
        with timed_stage("pipeline.surrogate",
                         n_estimators=self.surrogate_trees):
            surrogate = RandomForestClassifier(
                n_estimators=self.surrogate_trees,
                max_depth=self.surrogate_max_depth,
                random_state=self.random_state,
            )
            surrogate.fit(features, labels)
            accuracy = surrogate.score(features, labels)
        profile = ICNProfile(
            features=features,
            labels=labels,
            clustering=clustering,
            surrogate=surrogate,
            surrogate_accuracy=accuracy,
            service_names=list(service_names),
            env_types=env_types,
            paris_mask=paris_mask,
        )
        if align_to is not None:
            with timed_stage("pipeline.align"):
                profile = profile.aligned_to(align_to)
        return profile

    def scan_cluster_counts(
        self,
        data: Union[TrafficDataset, np.ndarray],
        ks: Sequence[int] = range(2, 16),
    ) -> KScanResult:
        """Fig. 2: validity indices over candidate k for this data."""
        totals = data.totals if isinstance(data, TrafficDataset) else data
        features = rsca(totals)
        clustering = AgglomerativeClustering(n_clusters=2, linkage=self.linkage)
        clustering.fit(features)
        return scan_k(features, clustering.dendrogram_, ks=ks)
