"""Spectral clustering from scratch (normalized-cuts baseline).

A third clustering family for the algorithm ablation: build a Gaussian
affinity graph over the RSCA vectors, embed the points with the leading
eigenvectors of the symmetric-normalized Laplacian, and run k-means in
the embedding (Ng-Jordan-Weiss).  Everything rests on numpy's symmetric
eigendecomposition plus the library's own :class:`~repro.core.compare.KMeans`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.cluster import pairwise_distances
from repro.core.compare import KMeans
from repro.utils.checks import check_matrix


class SpectralClustering:
    """Normalized spectral clustering (Ng-Jordan-Weiss).

    Args:
        n_clusters: number of clusters.
        gamma: Gaussian affinity scale ``exp(-gamma * d^2)``; None picks
            1 / median(d^2), a standard heuristic.
        n_neighbors: sparsify the affinity to each point's k nearest
            neighbours (symmetrized); None keeps the dense graph.
        random_state: seed for the embedded k-means.
    """

    def __init__(
        self,
        n_clusters: int = 9,
        gamma: Optional[float] = None,
        n_neighbors: Optional[int] = 20,
        random_state: int = 0,
    ) -> None:
        if n_clusters < 2:
            raise ValueError(f"n_clusters must be >= 2, got {n_clusters}")
        if gamma is not None and gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        if n_neighbors is not None and n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        self.n_clusters = n_clusters
        self.gamma = gamma
        self.n_neighbors = n_neighbors
        self.random_state = random_state
        self.labels_: Optional[np.ndarray] = None
        self.embedding_: Optional[np.ndarray] = None

    def _affinity(self, x: np.ndarray) -> np.ndarray:
        squared = pairwise_distances(x, squared=True)
        if self.gamma is None:
            off_diag = squared[~np.eye(squared.shape[0], dtype=bool)]
            median = np.median(off_diag)
            gamma = 1.0 / median if median > 0 else 1.0
        else:
            gamma = self.gamma
        affinity = np.exp(-gamma * squared)
        np.fill_diagonal(affinity, 0.0)
        if self.n_neighbors is not None and self.n_neighbors < x.shape[0] - 1:
            keep = np.zeros_like(affinity, dtype=bool)
            order = np.argsort(affinity, axis=1)[:, ::-1]
            rows = np.repeat(np.arange(x.shape[0]), self.n_neighbors)
            cols = order[:, : self.n_neighbors].ravel()
            keep[rows, cols] = True
            keep |= keep.T  # symmetrize
            affinity = np.where(keep, affinity, 0.0)
        return affinity

    def fit(self, features) -> "SpectralClustering":
        """Cluster the rows of ``features``."""
        x = check_matrix(features, "features")
        if x.shape[0] <= self.n_clusters:
            raise ValueError(
                f"need more than {self.n_clusters} samples, got {x.shape[0]}"
            )
        affinity = self._affinity(x)
        degree = affinity.sum(axis=1)
        inv_sqrt = np.where(degree > 0, 1.0 / np.sqrt(degree), 0.0)
        # Symmetric-normalized Laplacian: L = I - D^-1/2 A D^-1/2.
        normalized = affinity * inv_sqrt[:, None] * inv_sqrt[None, :]
        eigenvalues, eigenvectors = np.linalg.eigh(normalized)
        # Largest eigenvectors of the normalized affinity == smallest of L.
        embedding = eigenvectors[:, -self.n_clusters:]
        norms = np.linalg.norm(embedding, axis=1, keepdims=True)
        embedding = embedding / np.where(norms > 0, norms, 1.0)
        self.embedding_ = embedding
        self.labels_ = KMeans(
            n_clusters=self.n_clusters, n_init=5,
            random_state=self.random_state,
        ).fit_predict(embedding)
        return self

    def fit_predict(self, features) -> np.ndarray:
        """Fit and return the labels."""
        return self.fit(features).labels_
