"""Partition-agreement metrics and the k-means baseline.

The reproduction needs to quantify how well a clustering recovers the
generator's latent archetypes, and the ablation benchmarks compare the
paper's agglomerative/Ward choice against the classical k-means baseline.
Both are implemented from scratch here: adjusted Rand index, normalized
mutual information, cluster purity, and Lloyd's algorithm with k-means++
seeding.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.utils.checks import check_matrix


def _contingency(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Contingency counts between two label vectors."""
    a_labels, a_codes = np.unique(a, return_inverse=True)
    b_labels, b_codes = np.unique(b, return_inverse=True)
    table = np.zeros((a_labels.size, b_labels.size), dtype=np.int64)
    np.add.at(table, (a_codes, b_codes), 1)
    return table


def _validate_pair(labels_a, labels_b) -> Tuple[np.ndarray, np.ndarray]:
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.ndim != 1 or b.ndim != 1 or a.shape != b.shape:
        raise ValueError(
            f"label vectors must be 1-D and equal length, got {a.shape} "
            f"and {b.shape}"
        )
    if a.size == 0:
        raise ValueError("label vectors must be non-empty")
    return a, b


def adjusted_rand_index(labels_a, labels_b) -> float:
    """Adjusted Rand index between two partitions (1 = identical).

    Chance-corrected: independent random partitions score ~0.
    """
    a, b = _validate_pair(labels_a, labels_b)
    table = _contingency(a, b)
    n = a.size

    def comb2(x):
        return x * (x - 1) / 2.0

    sum_cells = comb2(table.astype(float)).sum()
    sum_rows = comb2(table.sum(axis=1).astype(float)).sum()
    sum_cols = comb2(table.sum(axis=0).astype(float)).sum()
    total = comb2(float(n))
    expected = sum_rows * sum_cols / total if total > 0 else 0.0
    max_index = 0.5 * (sum_rows + sum_cols)
    if max_index == expected:
        return 1.0
    return float((sum_cells - expected) / (max_index - expected))


def normalized_mutual_information(labels_a, labels_b) -> float:
    """NMI with arithmetic-mean normalization (0 = independent, 1 = same)."""
    a, b = _validate_pair(labels_a, labels_b)
    table = _contingency(a, b).astype(float)
    n = a.size
    joint = table / n
    pa = joint.sum(axis=1)
    pb = joint.sum(axis=0)
    nz = joint > 0
    mutual = float(
        (joint[nz] * np.log(joint[nz] / np.outer(pa, pb)[nz])).sum()
    )

    def entropy(p):
        p = p[p > 0]
        return float(-(p * np.log(p)).sum())

    h_a, h_b = entropy(pa), entropy(pb)
    denom = 0.5 * (h_a + h_b)
    if denom == 0:
        return 1.0
    return mutual / denom


def cluster_purity(predicted, reference) -> float:
    """Fraction of samples in their cluster's majority reference class."""
    a, b = _validate_pair(predicted, reference)
    table = _contingency(a, b)
    return float(table.max(axis=1).sum() / a.size)


class KMeans:
    """Lloyd's algorithm with k-means++ seeding (baseline clusterer).

    Args:
        n_clusters: number of centroids.
        n_init: independent restarts; the best inertia wins.
        max_iter: Lloyd iterations per restart.
        tol: relative centroid-shift convergence threshold.
        random_state: seed for k-means++ and restarts.
    """

    def __init__(
        self,
        n_clusters: int = 9,
        n_init: int = 10,
        max_iter: int = 300,
        tol: float = 1e-6,
        random_state: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_init < 1:
            raise ValueError(f"n_init must be >= 1, got {n_init}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None

    def _plus_plus_init(
        self, x: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n = x.shape[0]
        centers = np.empty((self.n_clusters, x.shape[1]))
        centers[0] = x[int(rng.integers(n))]
        closest = np.sum((x - centers[0]) ** 2, axis=1)
        for c in range(1, self.n_clusters):
            total = closest.sum()
            if total == 0:
                centers[c] = x[int(rng.integers(n))]
                continue
            probs = closest / total
            centers[c] = x[int(rng.choice(n, p=probs))]
            distance = np.sum((x - centers[c]) ** 2, axis=1)
            np.minimum(closest, distance, out=closest)
        return centers

    def _lloyd(
        self, x: np.ndarray, centers: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        for _ in range(self.max_iter):
            distances = (
                np.sum(x ** 2, axis=1)[:, None]
                - 2.0 * x @ centers.T
                + np.sum(centers ** 2, axis=1)[None, :]
            )
            labels = np.argmin(distances, axis=1)
            new_centers = centers.copy()
            for c in range(self.n_clusters):
                members = x[labels == c]
                if members.shape[0]:
                    new_centers[c] = members.mean(axis=0)
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if shift <= self.tol * max(1.0, float(np.linalg.norm(centers))):
                break
        distances = (
            np.sum(x ** 2, axis=1)[:, None]
            - 2.0 * x @ centers.T
            + np.sum(centers ** 2, axis=1)[None, :]
        )
        labels = np.argmin(distances, axis=1)
        inertia = float(np.maximum(distances[np.arange(x.shape[0]), labels],
                                   0.0).sum())
        return centers, labels, inertia

    def fit(self, features) -> "KMeans":
        """Run ``n_init`` seeded restarts, keeping the lowest inertia."""
        x = check_matrix(features, "features")
        if x.shape[0] < self.n_clusters:
            raise ValueError(
                f"{self.n_clusters} clusters need at least as many samples, "
                f"got {x.shape[0]}"
            )
        best = None
        for restart in range(self.n_init):
            rng = np.random.default_rng(
                np.random.SeedSequence([self.random_state, restart])
            )
            centers = self._plus_plus_init(x, rng)
            centers, labels, inertia = self._lloyd(x, centers)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia)
        self.cluster_centers_, self.labels_, self.inertia_ = best
        return self

    def fit_predict(self, features) -> np.ndarray:
        """Fit and return the cluster labels."""
        return self.fit(features).labels_

    def predict(self, features) -> np.ndarray:
        """Assign new samples to the nearest fitted centroid."""
        if self.cluster_centers_ is None:
            raise RuntimeError("k-means is not fitted; call fit() first")
        x = check_matrix(features, "features")
        distances = (
            np.sum(x ** 2, axis=1)[:, None]
            - 2.0 * x @ self.cluster_centers_.T
            + np.sum(self.cluster_centers_ ** 2, axis=1)[None, :]
        )
        return np.argmin(distances, axis=1)
