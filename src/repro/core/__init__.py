"""Core analysis pipeline: transforms, clustering, validation, profiler."""

from repro.core.rca import (
    feature_histograms,
    normalized_traffic,
    outdoor_rca,
    outdoor_rsca,
    rca,
    rca_from_components,
    rsca,
    rsca_from_rca,
)
from repro.core.cluster import (
    AgglomerativeClustering,
    Dendrogram,
    DendrogramNode,
    cophenetic_distances,
    cut_tree,
    linkage,
    pairwise_distances,
    threshold_for_k,
)
from repro.core.validation import (
    KScanResult,
    davies_bouldin_index,
    dunn_index,
    gap_statistic,
    scan_k,
    silhouette_samples,
    silhouette_score,
)
from repro.core.pca import PCA
from repro.core.density import DBSCAN, NOISE
from repro.core.spectral import SpectralClustering
from repro.core.compare import (
    KMeans,
    adjusted_rand_index,
    cluster_purity,
    normalized_mutual_information,
)
from repro.core.pipeline import ICNProfile, ICNProfiler

__all__ = [
    "rca",
    "rca_from_components",
    "rsca",
    "rsca_from_rca",
    "outdoor_rca",
    "outdoor_rsca",
    "normalized_traffic",
    "feature_histograms",
    "AgglomerativeClustering",
    "Dendrogram",
    "DendrogramNode",
    "linkage",
    "cut_tree",
    "threshold_for_k",
    "cophenetic_distances",
    "pairwise_distances",
    "KScanResult",
    "silhouette_score",
    "silhouette_samples",
    "dunn_index",
    "davies_bouldin_index",
    "gap_statistic",
    "scan_k",
    "PCA",
    "SpectralClustering",
    "DBSCAN",
    "NOISE",
    "KMeans",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "cluster_purity",
    "ICNProfile",
    "ICNProfiler",
]
