"""Principal component analysis of the RSCA feature space.

A supporting tool for exploring the utilization-profile geometry: the
paper's clusters live in a 73-dimensional RSCA space, and a PCA view
shows how much of the separation a few directions carry (the dendrogram
groups separate in the leading components).  Implemented from scratch on
the covariance eigendecomposition; the test suite cross-checks it against
a direct SVD.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.checks import check_matrix


class PCA:
    """Principal component analysis via covariance eigendecomposition.

    Args:
        n_components: number of leading components kept (None = all).

    Fitted attributes:
        components_: (n_components, M) principal axes (unit vectors).
        explained_variance_: per-component variance.
        explained_variance_ratio_: fraction of total variance.
        mean_: per-feature training mean.
    """

    def __init__(self, n_components: Optional[int] = None) -> None:
        if n_components is not None and n_components < 1:
            raise ValueError(
                f"n_components must be >= 1, got {n_components}"
            )
        self.n_components = n_components
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None
        self.mean_: Optional[np.ndarray] = None

    def fit(self, features) -> "PCA":
        """Fit the principal axes of the rows of ``features``."""
        x = check_matrix(features, "features")
        if x.shape[0] < 2:
            raise ValueError("PCA needs at least two samples")
        k = self.n_components
        if k is not None and k > x.shape[1]:
            raise ValueError(
                f"n_components {k} exceeds feature count {x.shape[1]}"
            )
        self.mean_ = x.mean(axis=0)
        centered = x - self.mean_
        covariance = centered.T @ centered / (x.shape[0] - 1)
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        order = np.argsort(eigenvalues)[::-1]
        eigenvalues = np.maximum(eigenvalues[order], 0.0)
        eigenvectors = eigenvectors[:, order]
        if k is None:
            k = x.shape[1]
        # Sign convention: largest-magnitude loading positive (stable).
        axes = eigenvectors[:, :k].T
        for i in range(axes.shape[0]):
            j = int(np.argmax(np.abs(axes[i])))
            if axes[i, j] < 0:
                axes[i] = -axes[i]
        self.components_ = axes
        self.explained_variance_ = eigenvalues[:k]
        total = eigenvalues.sum()
        self.explained_variance_ratio_ = (
            eigenvalues[:k] / total if total > 0 else np.zeros(k)
        )
        return self

    def _check_fitted(self) -> None:
        if self.components_ is None:
            raise RuntimeError("PCA is not fitted; call fit() first")

    def transform(self, features) -> np.ndarray:
        """Project rows onto the fitted principal axes."""
        self._check_fitted()
        x = check_matrix(features, "features")
        if x.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"features have {x.shape[1]} columns, PCA was fitted on "
                f"{self.mean_.shape[0]}"
            )
        return (x - self.mean_) @ self.components_.T

    def fit_transform(self, features) -> np.ndarray:
        """Fit and project in one call."""
        return self.fit(features).transform(features)

    def inverse_transform(self, projected) -> np.ndarray:
        """Map projections back into the original feature space."""
        self._check_fitted()
        z = check_matrix(projected, "projected")
        if z.shape[1] != self.components_.shape[0]:
            raise ValueError(
                f"projected has {z.shape[1]} columns, PCA keeps "
                f"{self.components_.shape[0]} components"
            )
        return z @ self.components_ + self.mean_

    def variance_captured(self, n: int) -> float:
        """Total variance fraction carried by the first ``n`` components."""
        self._check_fitted()
        if not 1 <= n <= self.explained_variance_ratio_.shape[0]:
            raise ValueError(
                f"n must be in [1, {self.explained_variance_ratio_.shape[0]}]"
            )
        return float(self.explained_variance_ratio_[:n].sum())
