"""Cluster validity indices (paper Section 4.2.1, Fig. 2).

The paper selects the number of clusters k by scanning the Silhouette
score [Rousseeuw 1987] and the Dunn index [Dunn 1973] over candidate k and
looking for high values followed by an abrupt drop (observed at k = 6 and
k = 9).  Both indices are implemented from scratch here, plus the
Davies-Bouldin index as an extension, and a :func:`scan_k` helper that
evaluates a linkage across a k range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cluster import Dendrogram, pairwise_distances
from repro.utils.checks import check_matrix


def _validate_labels(features: np.ndarray, labels) -> Tuple[np.ndarray, np.ndarray]:
    x = check_matrix(features, "features")
    lab = np.asarray(labels, dtype=int)
    if lab.ndim != 1 or lab.shape[0] != x.shape[0]:
        raise ValueError(
            f"labels must be 1-D with one entry per row of features; "
            f"got {lab.shape} for {x.shape[0]} rows"
        )
    if np.unique(lab).size < 2:
        raise ValueError("validity indices need at least two clusters")
    return x, lab


def silhouette_samples(
    features: np.ndarray,
    labels,
    distances: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-sample silhouette coefficients ``(b - a) / max(a, b)``.

    ``a`` is the mean distance to the sample's own cluster, ``b`` the
    smallest mean distance to another cluster.  Singleton clusters get a
    silhouette of 0 by convention.

    Args:
        features: N x M matrix.
        labels: N cluster labels.
        distances: optional precomputed N x N distance matrix (reused by
            :func:`scan_k` to avoid recomputation per k).
    """
    x, lab = _validate_labels(features, labels)
    dist = pairwise_distances(x) if distances is None else np.asarray(distances)
    unique = np.unique(lab)
    n = x.shape[0]
    # Mean distance from every sample to every cluster.
    mean_to_cluster = np.empty((n, unique.size))
    counts = np.empty(unique.size)
    for col, cluster in enumerate(unique):
        members = lab == cluster
        counts[col] = members.sum()
        mean_to_cluster[:, col] = dist[:, members].mean(axis=1)
    own_col = np.searchsorted(unique, lab)
    silhouettes = np.zeros(n)
    for i in range(n):
        col = own_col[i]
        size = counts[col]
        if size <= 1:
            continue  # singleton cluster: silhouette 0 by convention
        # Within-cluster mean excludes the sample itself.
        a = mean_to_cluster[i, col] * size / (size - 1.0)
        others = np.delete(mean_to_cluster[i], col)
        b = others.min()
        denom = max(a, b)
        if denom > 0:
            silhouettes[i] = (b - a) / denom
    return silhouettes


def silhouette_score(
    features: np.ndarray,
    labels,
    distances: Optional[np.ndarray] = None,
) -> float:
    """Mean silhouette coefficient over all samples (cohesion/separation)."""
    return float(silhouette_samples(features, labels, distances).mean())


def dunn_index(
    features: np.ndarray,
    labels,
    distances: Optional[np.ndarray] = None,
) -> float:
    """Dunn index: min inter-cluster distance / max intra-cluster diameter.

    Higher is better — compact (small diameters) and well-separated (large
    inter-cluster gaps) partitions score high.  Uses single-linkage
    inter-cluster distance and complete diameter, the classical definition.
    """
    x, lab = _validate_labels(features, labels)
    dist = pairwise_distances(x) if distances is None else np.asarray(distances)
    unique = np.unique(lab)
    members = [np.flatnonzero(lab == cluster) for cluster in unique]
    max_diameter = 0.0
    for idx in members:
        if idx.size > 1:
            max_diameter = max(max_diameter, float(dist[np.ix_(idx, idx)].max()))
    min_separation = np.inf
    for i in range(len(members)):
        for j in range(i + 1, len(members)):
            block = dist[np.ix_(members[i], members[j])]
            min_separation = min(min_separation, float(block.min()))
    if max_diameter == 0.0:
        return np.inf if min_separation > 0 else 0.0
    return min_separation / max_diameter


def davies_bouldin_index(features: np.ndarray, labels) -> float:
    """Davies-Bouldin index (lower is better); extension beyond the paper."""
    x, lab = _validate_labels(features, labels)
    unique = np.unique(lab)
    centroids = np.vstack([x[lab == cluster].mean(axis=0) for cluster in unique])
    scatters = np.array([
        float(np.linalg.norm(x[lab == cluster] - centroids[i], axis=1).mean())
        for i, cluster in enumerate(unique)
    ])
    k = unique.size
    worst = np.zeros(k)
    for i in range(k):
        ratios = [
            (scatters[i] + scatters[j])
            / max(float(np.linalg.norm(centroids[i] - centroids[j])), 1e-12)
            for j in range(k) if j != i
        ]
        worst[i] = max(ratios)
    return float(worst.mean())


@dataclass
class KScanResult:
    """Validity indices over a range of candidate cluster counts (Fig. 2)."""

    ks: List[int]
    silhouette: List[float]
    dunn: List[float]
    davies_bouldin: List[float] = field(default_factory=list)

    def as_dict(self) -> Dict[int, Dict[str, float]]:
        """Per-k index values, keyed by k."""
        out: Dict[int, Dict[str, float]] = {}
        for i, k in enumerate(self.ks):
            row = {"silhouette": self.silhouette[i], "dunn": self.dunn[i]}
            if self.davies_bouldin:
                row["davies_bouldin"] = self.davies_bouldin[i]
            out[k] = row
        return out

    def drop_after(self, metric: str = "silhouette") -> Dict[int, float]:
        """Magnitude of the drop from k to k+1 for each scanned k.

        The paper's stopping criterion looks for "a high value ... followed
        by an abrupt drop"; this quantifies the drop so k = 6 and k = 9 can
        be identified programmatically.
        """
        series = {"silhouette": self.silhouette, "dunn": self.dunn,
                  "davies_bouldin": self.davies_bouldin}.get(metric)
        if series is None or not series:
            raise ValueError(f"unknown or empty metric {metric!r}")
        drops: Dict[int, float] = {}
        for i in range(len(self.ks) - 1):
            if self.ks[i + 1] == self.ks[i] + 1:
                drops[self.ks[i]] = series[i] - series[i + 1]
        return drops

    def local_peaks(self, metric: str = "silhouette") -> List[int]:
        """Candidate ks: local maxima of the index followed by a drop.

        This is the paper's stopping criterion ("a high value ... followed
        by an abrupt drop"); for the paper's data it flags k = 6 and k = 9.
        """
        series = {"silhouette": self.silhouette, "dunn": self.dunn,
                  "davies_bouldin": self.davies_bouldin}.get(metric)
        if series is None or not series:
            raise ValueError(f"unknown or empty metric {metric!r}")
        peaks = []
        for i in range(len(self.ks) - 1):
            rising = i == 0 or series[i] >= series[i - 1]
            dropping = series[i] > series[i + 1]
            if rising and dropping:
                peaks.append(self.ks[i])
        return peaks

    def best_k(self, metric: str = "silhouette") -> int:
        """The k whose high-value-then-drop signature is strongest.

        Among the local peaks of the index, returns the one followed by
        the steepest drop; falls back to the largest raw drop when the
        index is monotone.
        """
        drops = self.drop_after(metric)
        peaks = [k for k in self.local_peaks(metric) if k in drops]
        if peaks:
            return max(peaks, key=drops.get)
        return max(drops, key=drops.get)


def gap_statistic(
    features: np.ndarray,
    dendrogram: Dendrogram,
    ks: Sequence[int] = range(2, 16),
    n_references: int = 5,
    random_state: int = 0,
) -> Dict[int, float]:
    """Tibshirani's gap statistic over flat cuts of one dendrogram.

    Compares the log within-cluster dispersion of each cut against the
    expectation under uniform reference data drawn in the feature
    bounding box; larger gaps indicate stronger real structure.  An
    extension beyond the paper's Silhouette/Dunn criterion.
    """
    x = check_matrix(features, "features")
    if n_references < 1:
        raise ValueError(f"n_references must be >= 1, got {n_references}")

    def log_dispersion(data: np.ndarray, labels: np.ndarray) -> float:
        total = 0.0
        for cluster in np.unique(labels):
            members = data[labels == cluster]
            if members.shape[0] < 2:
                continue
            centroid = members.mean(axis=0)
            total += float(((members - centroid) ** 2).sum())
        return float(np.log(max(total, 1e-300)))

    rng = np.random.default_rng(random_state)
    lo, hi = x.min(axis=0), x.max(axis=0)
    reference_dispersions: Dict[int, List[float]] = {int(k): [] for k in ks}
    for _ in range(n_references):
        reference = rng.uniform(lo, hi, size=x.shape)
        from repro.core.cluster import AgglomerativeClustering

        model = AgglomerativeClustering(n_clusters=2).fit(reference)
        for k in ks:
            labels = model.dendrogram_.cut(int(k))
            reference_dispersions[int(k)].append(
                log_dispersion(reference, labels)
            )
    gaps: Dict[int, float] = {}
    for k in ks:
        labels = dendrogram.cut(int(k))
        observed = log_dispersion(x, labels)
        gaps[int(k)] = float(
            np.mean(reference_dispersions[int(k)]) - observed
        )
    return gaps


def scan_k(
    features: np.ndarray,
    dendrogram: Dendrogram,
    ks: Sequence[int] = range(2, 16),
    include_davies_bouldin: bool = False,
) -> KScanResult:
    """Evaluate validity indices for flat cuts of one dendrogram.

    Computes the pairwise distance matrix once and reuses it across all
    cuts, making the Fig. 2 scan a single O(N^2) pass plus cheap cuts.
    """
    x = check_matrix(features, "features")
    distances = pairwise_distances(x)
    result = KScanResult(ks=[], silhouette=[], dunn=[], davies_bouldin=[])
    for k in ks:
        labels = dendrogram.cut(int(k))
        result.ks.append(int(k))
        result.silhouette.append(silhouette_score(x, labels, distances))
        result.dunn.append(dunn_index(x, labels, distances))
        if include_davies_bouldin:
            result.davies_bouldin.append(davies_bouldin_index(x, labels))
    return result
