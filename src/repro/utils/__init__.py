"""Shared utilities: deterministic RNG derivation, assignment, checks."""

from repro.utils.rng import derive_rng, derive_seed
from repro.utils.assignment import hungarian, align_labels
from repro.utils.checks import (
    check_matrix,
    check_positive,
    check_probability,
    check_in_range,
)

__all__ = [
    "derive_rng",
    "derive_seed",
    "hungarian",
    "align_labels",
    "check_matrix",
    "check_positive",
    "check_probability",
    "check_in_range",
]
