"""Optimal assignment (Hungarian algorithm) and cluster-label alignment.

Cluster indices returned by unsupervised clustering are arbitrary.  To
report results with the paper's cluster numbering (0-8), discovered labels
are aligned to reference labels (the generator's latent archetypes) by
solving a maximum-overlap assignment problem.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np


def hungarian(cost: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Solve the rectangular linear assignment problem, minimizing cost.

    Implements the O(n^3) shortest augmenting path formulation of the
    Hungarian algorithm (Jonker-Volgenant style).  Returns ``(rows, cols)``
    index arrays such that ``cost[rows, cols].sum()`` is minimal; every row
    of a tall-or-square matrix is assigned (for wide matrices, every
    column's transpose-equivalent).

    >>> rows, cols = hungarian(np.array([[4.0, 1.0], [2.0, 8.0]]))
    >>> list(zip(rows.tolist(), cols.tolist()))
    [(0, 1), (1, 0)]
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError(f"cost must be a 2-D matrix, got shape {cost.shape}")
    if not np.all(np.isfinite(cost)):
        raise ValueError("cost matrix contains NaN or infinite entries")

    transposed = cost.shape[0] > cost.shape[1]
    if transposed:
        cost = cost.T
    n_rows, n_cols = cost.shape

    # Potentials and matching; col_match[j] is the row matched to column j.
    row_potential = np.zeros(n_rows + 1)
    col_potential = np.zeros(n_cols + 1)
    col_match = np.full(n_cols + 1, n_rows, dtype=int)  # n_rows = sentinel
    way = np.zeros(n_cols + 1, dtype=int)

    for row in range(n_rows):
        col_match[n_cols] = row
        current_col = n_cols
        min_to_col = np.full(n_cols + 1, np.inf)
        used = np.zeros(n_cols + 1, dtype=bool)
        while True:
            used[current_col] = True
            matched_row = col_match[current_col]
            delta = np.inf
            next_col = -1
            for col in range(n_cols):
                if used[col]:
                    continue
                reduced = (
                    cost[matched_row, col]
                    - row_potential[matched_row]
                    - col_potential[col]
                )
                if reduced < min_to_col[col]:
                    min_to_col[col] = reduced
                    way[col] = current_col
                if min_to_col[col] < delta:
                    delta = min_to_col[col]
                    next_col = col
            for col in range(n_cols + 1):
                if used[col]:
                    row_potential[col_match[col]] += delta
                    col_potential[col] -= delta
                else:
                    min_to_col[col] -= delta
            current_col = next_col
            if col_match[current_col] == n_rows:
                break
        while current_col != n_cols:
            previous_col = way[current_col]
            col_match[current_col] = col_match[previous_col]
            current_col = previous_col

    rows = col_match[:n_cols]
    valid = rows < n_rows
    row_idx = rows[valid]
    col_idx = np.arange(n_cols)[valid]
    order = np.argsort(row_idx)
    row_idx, col_idx = row_idx[order], col_idx[order]
    if transposed:
        return col_idx, row_idx
    return row_idx, col_idx


def align_labels(
    predicted: Sequence[int], reference: Sequence[int]
) -> Dict[int, int]:
    """Map predicted cluster labels onto reference labels by max overlap.

    Returns a dict ``{predicted_label: reference_label}`` chosen to maximize
    the number of samples on which the relabelled prediction agrees with the
    reference.  Extra predicted labels (if the prediction has more distinct
    labels than the reference) map to fresh labels beyond the reference's.
    """
    pred = np.asarray(predicted, dtype=int)
    ref = np.asarray(reference, dtype=int)
    if pred.shape != ref.shape:
        raise ValueError(
            f"predicted and reference must have the same length, "
            f"got {pred.shape} and {ref.shape}"
        )
    pred_labels = np.unique(pred)
    ref_labels = np.unique(ref)
    overlap = np.zeros((pred_labels.size, ref_labels.size))
    for i, plab in enumerate(pred_labels):
        mask = pred == plab
        for j, rlab in enumerate(ref_labels):
            overlap[i, j] = np.count_nonzero(ref[mask] == rlab)
    rows, cols = hungarian(-overlap)
    mapping = {int(pred_labels[r]): int(ref_labels[c]) for r, c in zip(rows, cols)}
    next_label = int(ref_labels.max()) + 1 if ref_labels.size else 0
    for plab in pred_labels:
        if int(plab) not in mapping:
            mapping[int(plab)] = next_label
            next_label += 1
    return mapping
