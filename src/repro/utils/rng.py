"""Deterministic random-number-generator derivation.

The trace generator must be able to re-synthesize the hourly traffic of any
(antenna, service) pair on demand without storing the full hourly tensor
(4,762 antennas x 73 services x 1,560 hours does not fit in memory
comfortably).  To make on-demand synthesis reproducible, every stochastic
component draws from a generator derived deterministically from a master
seed plus a tuple of string/int keys identifying the component.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

_Key = Union[str, int]


def derive_seed(master_seed: int, *keys: _Key) -> int:
    """Derive a stable 64-bit seed from a master seed and a key path.

    The derivation is a SHA-256 hash of the master seed and the keys, so it
    is stable across processes and Python versions (unlike ``hash()``).

    >>> derive_seed(0, "antenna", 12) == derive_seed(0, "antenna", 12)
    True
    >>> derive_seed(0, "antenna", 12) == derive_seed(1, "antenna", 12)
    False
    """
    if not isinstance(master_seed, (int, np.integer)):
        raise TypeError(f"master_seed must be an int, got {type(master_seed).__name__}")
    digest = hashlib.sha256()
    digest.update(str(int(master_seed)).encode("utf-8"))
    for key in keys:
        if not isinstance(key, (str, int, np.integer)):
            raise TypeError(f"seed keys must be str or int, got {type(key).__name__}")
        digest.update(b"\x00")
        digest.update(str(key).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little")


def derive_rng(master_seed: int, *keys: _Key) -> np.random.Generator:
    """Return a ``numpy`` generator seeded from :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(master_seed, *keys))
