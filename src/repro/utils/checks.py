"""Input-validation helpers used across the library.

These raise early, with messages naming the offending argument, so that
errors surface at the public API boundary rather than deep inside numpy.
"""

from __future__ import annotations

import numpy as np


def check_matrix(value, name: str, *, ndim: int = 2, non_negative: bool = False) -> np.ndarray:
    """Coerce ``value`` to a float array and validate its shape.

    Raises ``ValueError`` on wrong dimensionality, NaN/inf entries, or
    (optionally) negative entries.
    """
    arr = np.asarray(value, dtype=float)
    if arr.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite entries")
    if non_negative and np.any(arr < 0):
        raise ValueError(f"{name} contains negative entries")
    return arr


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite, strictly positive scalar."""
    val = float(value)
    if not np.isfinite(val) or val <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return val


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in [0, 1]."""
    val = float(value)
    if not np.isfinite(val) or not 0.0 <= val <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return val


def check_in_range(value: float, name: str, low: float, high: float) -> float:
    """Validate that ``value`` lies in the closed interval [low, high]."""
    val = float(value)
    if not np.isfinite(val) or not low <= val <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return val
