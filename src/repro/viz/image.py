"""Figure export as PPM images (no plotting library required).

The reproduction environment has no matplotlib, but the binary PPM (P6)
format is simple enough to write directly, so the heatmap figures can be
regenerated as real image files: a diverging blue-white-red colormap for
RSCA (Fig. 4's blue = over-utilization, red = under), and a sequential
colormap for the temporal heatmaps (Figs. 10-11).  Any image viewer or
converter (ImageMagick, Pillow, browsers via conversion) opens PPM.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.utils.checks import check_matrix


def _lerp(a: Tuple[int, int, int], b: Tuple[int, int, int],
          t: np.ndarray) -> np.ndarray:
    """Linear interpolation between two RGB colours for t in [0, 1]."""
    a_arr = np.array(a, dtype=float)
    b_arr = np.array(b, dtype=float)
    return a_arr[None, :] + (b_arr - a_arr)[None, :] * t[:, None]


def diverging_colormap(values: np.ndarray) -> np.ndarray:
    """Blue-white-red map for values in [-1, 1] (RSCA semantics).

    Positive (over-utilization) maps to blue, negative to red — matching
    the colour semantics of the paper's Fig. 4.
    """
    v = np.clip(np.asarray(values, dtype=float).ravel(), -1.0, 1.0)
    out = np.empty((v.size, 3))
    positive = v >= 0
    white = (255, 255, 255)
    blue = (33, 102, 172)
    red = (178, 24, 43)
    out[positive] = _lerp(white, blue, v[positive])
    out[~positive] = _lerp(white, red, -v[~positive])
    return out.astype(np.uint8)


def sequential_colormap(values: np.ndarray) -> np.ndarray:
    """White-to-dark-blue map for values in [0, 1] (load heatmaps)."""
    v = np.clip(np.asarray(values, dtype=float).ravel(), 0.0, 1.0)
    light = (247, 251, 255)
    dark = (8, 48, 107)
    return _lerp(light, dark, v).astype(np.uint8)


def write_ppm(path, pixels: np.ndarray) -> None:
    """Write an (H, W, 3) uint8 array as a binary PPM (P6) file."""
    image = np.asarray(pixels)
    if image.ndim != 3 or image.shape[2] != 3 or image.dtype != np.uint8:
        raise ValueError(
            f"pixels must be (H, W, 3) uint8, got {image.shape} {image.dtype}"
        )
    path = Path(path)
    with path.open("wb") as handle:
        handle.write(f"P6\n{image.shape[1]} {image.shape[0]}\n255\n".encode())
        handle.write(image.tobytes())


def read_ppm(path) -> np.ndarray:
    """Read back a binary PPM written by :func:`write_ppm`."""
    data = Path(path).read_bytes()
    if not data.startswith(b"P6"):
        raise ValueError("not a binary PPM (P6) file")
    parts = data.split(b"\n", 3)
    if len(parts) < 4:
        raise ValueError("truncated PPM header")
    width, height = (int(x) for x in parts[1].split())
    pixels = np.frombuffer(parts[3], dtype=np.uint8,
                           count=width * height * 3)
    return pixels.reshape(height, width, 3)


def matrix_to_image(
    matrix: np.ndarray,
    colormap: str = "sequential",
    cell_size: int = 4,
) -> np.ndarray:
    """Render a matrix as an RGB pixel array with block cells.

    Args:
        matrix: 2-D values; range [-1, 1] for ``"diverging"``, [0, 1] for
            ``"sequential"``.
        colormap: ``"sequential"`` or ``"diverging"``.
        cell_size: square pixels per matrix cell.
    """
    grid = check_matrix(matrix, "matrix")
    if cell_size < 1:
        raise ValueError(f"cell_size must be >= 1, got {cell_size}")
    if colormap == "diverging":
        colours = diverging_colormap(grid)
    elif colormap == "sequential":
        colours = sequential_colormap(grid)
    else:
        raise ValueError(
            f"unknown colormap {colormap!r}; use 'sequential' or 'diverging'"
        )
    image = colours.reshape(grid.shape[0], grid.shape[1], 3)
    return np.repeat(np.repeat(image, cell_size, axis=0), cell_size, axis=1)


def save_rsca_figure(
    path,
    rsca_matrix: np.ndarray,
    labels: Sequence[int],
    max_width: int = 1200,
) -> None:
    """Save the Fig. 4 RSCA heatmap (services x cluster-sorted antennas).

    Antenna columns are ordered by cluster; column blocks are averaged
    down to at most ``max_width`` pixels.
    """
    matrix = check_matrix(rsca_matrix, "rsca_matrix")
    labels = np.asarray(labels, dtype=int)
    if labels.shape[0] != matrix.shape[0]:
        raise ValueError("one label per antenna row is required")
    order = np.argsort(labels, kind="stable")
    blocks = np.array_split(order, min(max_width, order.size))
    compressed = np.stack(
        [matrix[idx].mean(axis=0) for idx in blocks], axis=1
    )  # services x column-blocks
    write_ppm(path, matrix_to_image(compressed, "diverging", cell_size=4))


def save_temporal_figure(path, heatmap, cell_size: int = 8) -> None:
    """Save a Fig. 10/11 temporal heatmap (days x hours) as PPM."""
    write_ppm(
        path, matrix_to_image(heatmap.values, "sequential", cell_size)
    )
