"""Terminal figure renderers (matplotlib-free)."""

from repro.viz.image import (
    matrix_to_image,
    read_ppm,
    save_rsca_figure,
    save_temporal_figure,
    write_ppm,
)
from repro.viz.operations import (
    render_capacity_schedule,
    render_forecast_strip,
    render_hour_profile,
    render_pca_scatter,
    render_sleep_calendar,
    render_weekly_profile,
)
from repro.viz.render import (
    render_beeswarm_table,
    render_dendrogram_summary,
    render_distribution,
    render_heatmap,
    render_histogram,
    render_rsca_heatmap,
    render_sankey,
    render_scan,
)

__all__ = [
    "render_beeswarm_table",
    "render_dendrogram_summary",
    "render_distribution",
    "render_heatmap",
    "render_histogram",
    "render_rsca_heatmap",
    "render_sankey",
    "render_scan",
    "render_hour_profile",
    "render_weekly_profile",
    "render_capacity_schedule",
    "render_sleep_calendar",
    "render_forecast_strip",
    "render_pca_scatter",
    "matrix_to_image",
    "write_ppm",
    "read_ppm",
    "save_rsca_figure",
    "save_temporal_figure",
]
