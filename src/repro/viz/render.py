"""Terminal renderings of the paper's figures.

matplotlib is unavailable in the reproduction environment, so figures are
regenerated as data series plus text renderings: unicode-shade heatmaps,
bar histograms, dendrogram outlines, Sankey flow listings, and beeswarm
ranking tables.  Every renderer returns a string (no printing side
effects).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Shade ramp for heatmaps, light to dark.
_SHADES = " .:-=+*#%@"


def _shade(value: float) -> str:
    """Map a [0, 1] value onto the shade ramp."""
    level = int(np.clip(value, 0.0, 1.0) * (len(_SHADES) - 1))
    return _SHADES[level]


def render_histogram(
    counts: np.ndarray,
    bin_edges: np.ndarray,
    title: str = "",
    width: int = 50,
) -> str:
    """Horizontal bar rendering of a histogram (Fig. 1 panels)."""
    counts = np.asarray(counts, dtype=float)
    edges = np.asarray(bin_edges, dtype=float)
    if counts.size + 1 != edges.size:
        raise ValueError(
            f"expected len(edges) == len(counts) + 1, got {edges.size} and {counts.size}"
        )
    peak = counts.max() if counts.size else 1.0
    lines = [title] if title else []
    for i, count in enumerate(counts):
        bar = "#" * int(round(width * count / peak)) if peak > 0 else ""
        lines.append(f"[{edges[i]:>8.2f}, {edges[i + 1]:>8.2f}) |{bar} {int(count)}")
    return "\n".join(lines)


def render_heatmap(
    values: np.ndarray,
    row_labels: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Shade-character heatmap of a [0, 1] matrix (Figs. 4, 10, 11)."""
    matrix = np.asarray(values, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"heatmap needs a 2-D matrix, got shape {matrix.shape}")
    if row_labels is not None and len(row_labels) != matrix.shape[0]:
        raise ValueError(
            f"{len(row_labels)} row labels for {matrix.shape[0]} rows"
        )
    label_width = max((len(str(l)) for l in row_labels), default=0) if row_labels else 0
    lines = [title] if title else []
    for i, row in enumerate(matrix):
        label = f"{row_labels[i]:>{label_width}} " if row_labels else ""
        lines.append(label + "".join(_shade(v) for v in row))
    return "\n".join(lines)


def render_rsca_heatmap(
    rsca_matrix: np.ndarray,
    labels: Sequence[int],
    service_names: Sequence[str],
    title: str = "RSCA by cluster (Fig. 4)",
) -> str:
    """Fig. 4: services (rows) x cluster-ordered antennas (columns).

    Antenna columns are grouped by cluster; the RSCA in [-1, 1] maps to
    shades with '-' (under), ' ' (neutral), '+' (over) semantics.
    """
    matrix = np.asarray(rsca_matrix, dtype=float)
    labels = np.asarray(labels, dtype=int)
    order = np.argsort(labels, kind="stable")
    # Column-compress: average antennas in blocks to fit a terminal.
    blocks = np.array_split(order, min(100, order.size))
    compressed = np.stack([matrix[idx].mean(axis=0) for idx in blocks], axis=1)
    lines = [title]
    for j, name in enumerate(service_names):
        row = compressed[j]
        cells = "".join(
            "+" if v > 0.25 else ("-" if v < -0.25 else ".") for v in row
        )
        lines.append(f"{name[:24]:>24} {cells}")
    return "\n".join(lines)


def render_dendrogram_summary(
    linkage_matrix: np.ndarray,
    n_clusters: int,
    cluster_sizes: Dict[int, int],
    group_of: Dict[int, int],
    title: str = "Dendrogram (Fig. 3)",
) -> str:
    """Textual dendrogram summary: cut heights, groups, cluster sizes."""
    z = np.asarray(linkage_matrix, dtype=float)
    lines = [title, f"leaves: {z.shape[0] + 1}"]
    top_heights = z[-max(0, n_clusters - 1):, 2][::-1]
    lines.append(
        "top merge heights: " + ", ".join(f"{h:.2f}" for h in top_heights)
    )
    by_group: Dict[int, List[int]] = {}
    for cluster, group in group_of.items():
        by_group.setdefault(group, []).append(cluster)
    for group in sorted(by_group):
        members = sorted(by_group[group])
        sizes = ", ".join(f"{c}({cluster_sizes.get(c, 0)})" for c in members)
        lines.append(f"group {group}: clusters {sizes}")
    return "\n".join(lines)


def render_sankey(
    flows: Sequence[Tuple[int, object, int]],
    title: str = "Cluster -> environment flows (Fig. 6)",
    top: int = 30,
) -> str:
    """Text listing of the largest cluster -> environment flows."""
    lines = [title]
    total = sum(f[2] for f in flows)
    for cluster, env, count in list(flows)[:top]:
        env_name = getattr(env, "value", str(env))
        bar = "=" * max(1, int(round(40 * count / max(total, 1) * 10)))
        lines.append(f"cluster {cluster:>2} -> {env_name:<12} {count:>5} {bar[:40]}")
    return "\n".join(lines)


def render_beeswarm_table(
    explanation, top: int = 25, title: Optional[str] = None
) -> str:
    """Ranked SHAP importance table for one cluster (one Fig. 5 panel)."""
    lines = [title or f"Cluster {explanation.cluster} SHAP importances (Fig. 5)"]
    lines.append(f"{'rank':>4} {'service':<26} {'mean|SHAP|':>10} {'direction':>9}")
    for rank, si in enumerate(explanation.top(top)):
        lines.append(
            f"{rank:>4} {si.service:<26} {si.mean_abs_shap:>10.4f} {si.direction:>9}"
        )
    return "\n".join(lines)


def render_scan(ks: Sequence[int], silhouette: Sequence[float],
                dunn: Sequence[float], title: str = "k-selection (Fig. 2)") -> str:
    """Silhouette / Dunn table over candidate k."""
    lines = [title, f"{'k':>3} {'silhouette':>11} {'dunn':>8}"]
    for k, sil, dn in zip(ks, silhouette, dunn):
        lines.append(f"{k:>3} {sil:>11.4f} {dn:>8.4f}")
    return "\n".join(lines)


def render_distribution(
    distribution: Dict[int, float],
    title: str = "Outdoor cluster distribution (Fig. 9)",
    width: int = 50,
) -> str:
    """Bar chart of a cluster -> fraction mapping."""
    lines = [title]
    for cluster in sorted(distribution):
        fraction = distribution[cluster]
        bar = "#" * int(round(width * fraction))
        lines.append(f"cluster {cluster:>2} {fraction:>6.1%} |{bar}")
    return "\n".join(lines)
