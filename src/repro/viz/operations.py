"""Terminal renderings for the operational extensions.

Companions to :mod:`repro.viz.render` for the Section 7 planners and the
forecasting module: weekly load profiles, per-slice capacity schedules,
sleep calendars, and forecast-vs-actual strips.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

#: Vertical bar glyphs, low to high.
_BARS = " ▁▂▃▄▅▆▇█"


def _sparkline(values: np.ndarray) -> str:
    """Unicode sparkline of a non-negative series."""
    values = np.asarray(values, dtype=float)
    peak = values.max()
    if peak <= 0:
        return " " * values.size
    levels = np.clip(values / peak * (len(_BARS) - 1), 0,
                     len(_BARS) - 1).astype(int)
    return "".join(_BARS[level] for level in levels)


def render_hour_profile(
    profile: np.ndarray, title: str = "hour-of-day profile"
) -> str:
    """24-hour load profile as a labelled sparkline."""
    values = np.asarray(profile, dtype=float)
    if values.shape != (24,):
        raise ValueError(f"profile must have 24 values, got {values.shape}")
    ticks = "0     6     12    18    23"
    return f"{title}\n{_sparkline(values)}\n{ticks}"


def render_weekly_profile(
    profile: np.ndarray, title: str = "week-hour profile"
) -> str:
    """168-hour weekly profile rendered day by day."""
    values = np.asarray(profile, dtype=float)
    if values.shape != (168,):
        raise ValueError(f"profile must have 168 values, got {values.shape}")
    days = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")
    lines = [title]
    for d, day in enumerate(days):
        lines.append(f"{day} {_sparkline(values[d * 24:(d + 1) * 24])}")
    return "\n".join(lines)


def render_capacity_schedule(
    schedule: np.ndarray, cluster: int
) -> str:
    """Per-hour capacity allocation of one slice as a sparkline."""
    values = np.asarray(schedule, dtype=float)
    if values.shape != (24,):
        raise ValueError(f"schedule must have 24 values, got {values.shape}")
    return render_hour_profile(values, title=f"slice c{cluster} capacity")


def render_sleep_calendar(schedule) -> str:
    """Weekly sleep calendar of one cluster ('z' = sleeping)."""
    weekday = np.zeros(24, dtype=bool)
    weekend = np.zeros(24, dtype=bool)
    weekday[list(schedule.weekday_sleep_hours)] = True
    weekend[list(schedule.weekend_sleep_hours)] = True

    def row(mask):
        return "".join("z" if asleep else "." for asleep in mask)

    return (
        f"cluster {schedule.cluster} sleep calendar "
        f"(saves {schedule.energy_saving:.0%}, "
        f"risks {schedule.traffic_at_risk:.1%})\n"
        f"weekdays {row(weekday)}\n"
        f"weekends {row(weekend)}\n"
        f"hours    0     6     12    18    23"
    )


def render_forecast_strip(
    actual: np.ndarray,
    forecast: np.ndarray,
    title: str = "forecast vs actual",
    width: int = 72,
) -> str:
    """Actual and forecast series as stacked sparklines (downsampled)."""
    a = np.asarray(actual, dtype=float)
    f = np.asarray(forecast, dtype=float)
    if a.shape != f.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {f.shape}")
    if a.size > width:
        # Downsample by block means to fit the terminal.
        edges = np.linspace(0, a.size, width + 1).astype(int)
        a = np.array([a[lo:hi].mean() for lo, hi in zip(edges, edges[1:])])
        f = np.array([f[lo:hi].mean() for lo, hi in zip(edges, edges[1:])])
    peak = max(a.max(), f.max(), 1e-12)
    return (
        f"{title}\n"
        f"actual   {_sparkline(a / peak * peak)}\n"
        f"forecast {_sparkline(f / peak * peak)}"
    )


def render_pca_scatter(
    projected: np.ndarray,
    labels: Sequence[int],
    width: int = 60,
    height: int = 20,
    title: str = "PCA projection (PC1 x PC2)",
) -> str:
    """Character scatter of the first two principal components.

    Each cell shows the digit of the modal cluster among its points.
    """
    points = np.asarray(projected, dtype=float)
    if points.ndim != 2 or points.shape[1] < 2:
        raise ValueError("projected must have at least two columns")
    labels = np.asarray(labels)
    if labels.shape[0] != points.shape[0]:
        raise ValueError("one label per projected row is required")
    x, y = points[:, 0], points[:, 1]
    x_lo, x_hi = x.min(), x.max()
    y_lo, y_hi = y.min(), y.max()
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)
    cols = np.clip(((x - x_lo) / x_span * (width - 1)).astype(int), 0, width - 1)
    rows = np.clip(((y_hi - y) / y_span * (height - 1)).astype(int), 0,
                   height - 1)
    grid = [[" "] * width for _ in range(height)]
    cell_votes: Dict = {}
    for r, c, label in zip(rows, cols, labels):
        cell_votes.setdefault((r, c), []).append(label)
    for (r, c), votes in cell_votes.items():
        values, counts = np.unique(votes, return_counts=True)
        grid[r][c] = str(values[np.argmax(counts)])[-1]
    lines = [title]
    lines.extend("".join(row) for row in grid)
    return "\n".join(lines)
