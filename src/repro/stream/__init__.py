"""Online ingestion and incremental profiling.

The batch pipeline (:class:`~repro.core.pipeline.ICNProfiler`) consumes a
frozen two-month dataset in one shot; this subsystem keeps antenna
profiles current as new hourly traffic arrives.  Replay sources turn
stored data into ordered :class:`HourlyBatch` streams; bounded-memory
accumulators maintain the running T-matrix, incremental RSCA features and
a sliding recent-history window; a :class:`StreamingProfiler` classifies
newly seen antennas against a :class:`FrozenProfile` and raises drift
signals when the live demand mix walks away from the fitted reference.
All accumulator state checkpoints to ``.npz`` so ingestion survives
restarts mid-stream.

Quickstart::

    from repro import generate_dataset, ICNProfiler
    from repro.stream import StreamingProfiler, replay_dataset

    dataset = generate_dataset(master_seed=0)
    frozen = ICNProfiler(n_clusters=9).fit(dataset).freeze()
    streamer = StreamingProfiler(frozen, window_hours=168)
    for batch in replay_dataset(dataset):
        result = streamer.ingest(batch)
    print(streamer.summary())
"""

from repro.stream.batch import HourlyBatch, batch_from_rows
from repro.stream.source import replay_dataset, replay_hourly_csv, replay_tensor
from repro.stream.accumulators import (
    IncrementalRSCA,
    RunningTotals,
    SlidingWindowTensor,
)
from repro.stream.checkpoint import (
    backup_path,
    checkpoint_path,
    load_state,
    load_state_with_rollback,
    merge_namespaces,
    save_state,
    split_namespace,
)
from repro.stream.frozen import FrozenProfile, freeze_profile
from repro.stream.metrics import StreamMetrics
from repro.stream.profiler import (
    DEFAULT_WINDOW_HOURS,
    BatchResult,
    DriftSignal,
    StreamingProfiler,
)

__all__ = [
    "HourlyBatch",
    "batch_from_rows",
    "replay_dataset",
    "replay_tensor",
    "replay_hourly_csv",
    "RunningTotals",
    "IncrementalRSCA",
    "SlidingWindowTensor",
    "FrozenProfile",
    "freeze_profile",
    "StreamMetrics",
    "StreamingProfiler",
    "BatchResult",
    "DriftSignal",
    "DEFAULT_WINDOW_HOURS",
    "save_state",
    "load_state",
    "load_state_with_rollback",
    "checkpoint_path",
    "backup_path",
    "split_namespace",
    "merge_namespaces",
]
