"""The unit of online ingestion: one hour of per-antenna traffic.

A live measurement platform emits traffic in hourly increments — the
finest aggregation the paper's dataset retains (Section 3).  An
:class:`HourlyBatch` is one such increment: the traffic matrix of the
antennas that reported during one calendar hour, with explicit antenna
ids (batches need not cover the same antennas every hour — deployments
grow, probes fail) and an explicit service column order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class HourlyBatch:
    """Traffic reported by a set of antennas during one hour.

    Attributes:
        hour: the calendar hour (``datetime64[h]``).
        antenna_ids: ids of the reporting antennas (unique, row order of
            ``traffic``).
        traffic: R x M non-negative traffic in MB, one row per reporting
            antenna, one column per service.
        service_names: service names in column order.
    """

    hour: np.datetime64
    antenna_ids: np.ndarray
    traffic: np.ndarray
    service_names: Tuple[str, ...]

    def __post_init__(self) -> None:
        hour = np.datetime64(self.hour, "h")
        ids = np.asarray(self.antenna_ids, dtype=np.int64)
        traffic = np.asarray(self.traffic, dtype=float)
        names = tuple(str(s) for s in self.service_names)
        if ids.ndim != 1:
            raise ValueError(f"antenna_ids must be 1-D, got shape {ids.shape}")
        if np.unique(ids).size != ids.size:
            raise ValueError("antenna_ids must be unique within a batch")
        if traffic.ndim != 2:
            raise ValueError(f"traffic must be 2-D, got shape {traffic.shape}")
        if traffic.shape != (ids.size, len(names)):
            raise ValueError(
                f"traffic shape {traffic.shape} does not match "
                f"{ids.size} antennas x {len(names)} services"
            )
        if not np.all(np.isfinite(traffic)):
            raise ValueError("traffic contains NaN or infinite entries")
        if np.any(traffic < 0):
            raise ValueError("traffic contains negative entries")
        object.__setattr__(self, "hour", hour)
        object.__setattr__(self, "antenna_ids", ids)
        object.__setattr__(self, "traffic", traffic)
        object.__setattr__(self, "service_names", names)

    @property
    def n_rows(self) -> int:
        """Number of reporting antennas (antenna-hours) in the batch."""
        return int(self.antenna_ids.size)

    @property
    def n_services(self) -> int:
        """Number of service columns."""
        return len(self.service_names)

    def total_mb(self) -> float:
        """All traffic carried in the batch, in MB."""
        return float(self.traffic.sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HourlyBatch(hour={self.hour}, rows={self.n_rows}, "
            f"services={self.n_services}, total={self.total_mb():.1f} MB)"
        )


def batch_from_rows(
    hour,
    antenna_ids: Sequence[int],
    traffic,
    service_names: Sequence[str],
) -> HourlyBatch:
    """Convenience constructor coercing plain sequences into a batch."""
    return HourlyBatch(
        hour=np.datetime64(hour, "h"),
        antenna_ids=np.asarray(antenna_ids, dtype=np.int64),
        traffic=np.asarray(traffic, dtype=float),
        service_names=tuple(service_names),
    )
