"""Bounded-memory online accumulators over an ordered hourly stream.

Three accumulators mirror the batch pipeline's data structures:

* :class:`RunningTotals` — the growing N x M T-matrix plus additively
  maintained marginals (per-antenna, per-service and grand totals), in
  O(N x M) memory regardless of stream length;
* :class:`IncrementalRSCA` — :class:`RunningTotals` extended with the
  Eq. 1/2 transforms, computed through the same
  :func:`~repro.core.rca.rca_from_components` kernel the batch
  :func:`~repro.core.rca.rca` uses, so streamed features match batch
  features on identical traffic;
* :class:`SlidingWindowTensor` — a ring buffer holding the last W hours
  of per-antenna traffic (the recent-history tensor temporal analyses
  and short-horizon forecasts consume), in O(N x M x W) memory.

All accumulators accept batches in strictly increasing hour order,
register previously unseen antennas on the fly (rows appear in
first-seen order), and serialize their complete state through
``state_dict()`` / ``from_state()`` so ingestion survives restarts — see
``repro.stream.checkpoint``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.rca import rca_from_components, rsca_from_rca
from repro.stream.batch import HourlyBatch

#: Initial antenna capacity of the growing row tables.
_INITIAL_CAPACITY = 64


class _AntennaTable:
    """Shared machinery: antenna-id -> row registry with geometric growth.

    Subclasses store per-antenna arrays with a capacity dimension and
    implement ``_grow_arrays`` to reallocate them when the registry
    outgrows the current capacity.
    """

    def __init__(self, service_names: Sequence[str]) -> None:
        names = tuple(str(s) for s in service_names)
        if not names:
            raise ValueError("at least one service is required")
        if len(set(names)) != len(names):
            raise ValueError("service names must be unique")
        self.service_names: Tuple[str, ...] = names
        self._ids: List[int] = []
        self._index: Dict[int, int] = {}
        self._capacity = 0
        self.hours_seen = 0
        self.last_hour: Optional[np.datetime64] = None

    # -- to be provided by subclasses ----------------------------------
    def _grow_arrays(self, new_capacity: int) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------

    @property
    def n_services(self) -> int:
        """Number of service columns M."""
        return len(self.service_names)

    @property
    def n_antennas(self) -> int:
        """Number of distinct antennas seen so far."""
        return len(self._ids)

    def antenna_ids(self) -> np.ndarray:
        """Ids of the antennas seen so far, in first-seen (row) order."""
        return np.array(self._ids, dtype=np.int64)

    def row_of(self, antenna_id: int) -> int:
        """Row index of one antenna; raises ``KeyError`` if unseen."""
        return self._index[int(antenna_id)]

    def _check_batch(self, batch: HourlyBatch) -> None:
        if batch.service_names != self.service_names:
            raise ValueError(
                f"batch service columns {batch.service_names[:3]}... do not "
                f"match accumulator columns {self.service_names[:3]}..."
            )
        if self.last_hour is not None and batch.hour <= self.last_hour:
            raise ValueError(
                f"batches must arrive in increasing hour order: "
                f"got {batch.hour} after {self.last_hour}"
            )

    def _rows_for(self, antenna_ids: np.ndarray) -> Tuple[np.ndarray, List[int]]:
        """Row indices for a batch's antennas, registering new ones."""
        rows = np.empty(antenna_ids.size, dtype=np.intp)
        new_ids: List[int] = []
        for k, raw in enumerate(antenna_ids):
            aid = int(raw)
            row = self._index.get(aid)
            if row is None:
                row = len(self._ids)
                if row >= self._capacity:
                    new_capacity = max(_INITIAL_CAPACITY, 2 * self._capacity)
                    self._grow_arrays(new_capacity)
                    self._capacity = new_capacity
                self._index[aid] = row
                self._ids.append(aid)
                new_ids.append(aid)
            rows[k] = row
        return rows, new_ids

    def _restore_registry(
        self, ids: np.ndarray, hours_seen: int, last_hour: Optional[np.datetime64]
    ) -> None:
        self._ids = [int(a) for a in ids]
        self._index = {aid: row for row, aid in enumerate(self._ids)}
        self.hours_seen = int(hours_seen)
        self.last_hour = last_hour


class RunningTotals(_AntennaTable):
    """Online T-matrix: per-antenna, per-service traffic totals.

    Numerically, the accumulated matrix equals the hour-axis sum of the
    replayed tensor (additions happen in the same hour order), and the
    marginals equal the matrix's row/column/grand sums up to float
    summation-order effects far below any analysis tolerance.
    """

    def __init__(self, service_names: Sequence[str]) -> None:
        super().__init__(service_names)
        m = self.n_services
        self._matrix = np.zeros((0, m))
        self._row_totals = np.zeros(0)
        self._col_totals = np.zeros(m)
        self._grand_total = 0.0

    def _grow_arrays(self, new_capacity: int) -> None:
        grown = np.zeros((new_capacity, self.n_services))
        grown[: self._matrix.shape[0]] = self._matrix
        self._matrix = grown
        grown_rows = np.zeros(new_capacity)
        grown_rows[: self._row_totals.shape[0]] = self._row_totals
        self._row_totals = grown_rows

    def update(self, batch: HourlyBatch) -> List[int]:
        """Fold one batch into the totals.

        Returns:
            ids of antennas first seen in this batch.
        """
        self._check_batch(batch)
        rows, new_ids = self._rows_for(batch.antenna_ids)
        self._matrix[rows] += batch.traffic
        self._row_totals[rows] += batch.traffic.sum(axis=1)
        self._col_totals += batch.traffic.sum(axis=0)
        self._grand_total += float(batch.traffic.sum())
        self.hours_seen += 1
        self.last_hour = batch.hour
        return new_ids

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def totals(self) -> np.ndarray:
        """Copy of the N x M totals accumulated so far (first-seen order)."""
        return self._matrix[: self.n_antennas].copy()

    def row_totals(self) -> np.ndarray:
        """Per-antenna traffic totals (first-seen order)."""
        return self._row_totals[: self.n_antennas].copy()

    def col_totals(self) -> np.ndarray:
        """Network-wide per-service traffic totals."""
        return self._col_totals.copy()

    @property
    def grand_total(self) -> float:
        """All traffic ingested so far, in MB."""
        return self._grand_total

    def nonzero_mask(self) -> np.ndarray:
        """Mask of antennas that have carried any traffic so far."""
        return self._row_totals[: self.n_antennas] > 0

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Complete state as a flat dict of arrays and scalars."""
        n = self.n_antennas
        return {
            "service_names": np.array(self.service_names, dtype=str),
            "ids": self.antenna_ids(),
            "matrix": self._matrix[:n].copy(),
            "row_totals": self._row_totals[:n].copy(),
            "col_totals": self._col_totals.copy(),
            "grand_total": float(self._grand_total),
            "hours_seen": int(self.hours_seen),
            "last_hour": "" if self.last_hour is None else str(self.last_hour),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "RunningTotals":
        """Rebuild an accumulator whose future updates continue exactly."""
        acc = cls([str(s) for s in np.asarray(state["service_names"])])
        ids = np.asarray(state["ids"], dtype=np.int64)
        matrix = np.asarray(state["matrix"], dtype=float)
        acc._capacity = max(matrix.shape[0], 0)
        acc._matrix = matrix.copy()
        acc._row_totals = np.asarray(state["row_totals"], dtype=float).copy()
        acc._col_totals = np.asarray(state["col_totals"], dtype=float).copy()
        acc._grand_total = float(state["grand_total"])
        last = str(state["last_hour"])
        acc._restore_registry(
            ids,
            int(state["hours_seen"]),
            np.datetime64(last, "h") if last else None,
        )
        return acc


class IncrementalRSCA(RunningTotals):
    """Running totals with the paper's Eq. 1/2 transforms on top.

    The transforms run through the exact same arithmetic kernel as the
    batch pipeline (:func:`repro.core.rca.rca_from_components`), fed with
    the additively maintained marginals, so a full-stream replay
    reproduces ``rsca(dataset.totals)`` to float-summation accuracy.
    """

    def rca(self) -> np.ndarray:
        """RCA of all antennas seen so far; requires every row non-zero."""
        n = self.n_antennas
        return rca_from_components(
            self._matrix[:n],
            self._row_totals[:n],
            self._col_totals,
            self._grand_total,
        )

    def rsca(self) -> np.ndarray:
        """RSCA of all antennas seen so far; requires every row non-zero."""
        return rsca_from_rca(self.rca())

    def rsca_nonzero(self) -> Tuple[np.ndarray, np.ndarray]:
        """RSCA restricted to antennas that have carried traffic.

        Zero rows carry no traffic, so dropping them leaves the service
        and grand totals unchanged — the remaining rows' features are
        identical to what a batch transform of the same rows yields.

        Returns:
            ``(antenna_ids, features)`` for the non-zero antennas, in
            first-seen order.
        """
        mask = self.nonzero_mask()
        if not np.any(mask):
            raise ValueError("no antenna has carried traffic yet")
        n = self.n_antennas
        features = rsca_from_rca(
            rca_from_components(
                self._matrix[:n][mask],
                self._row_totals[:n][mask],
                self._col_totals,
                self._grand_total,
            )
        )
        return self.antenna_ids()[mask], features


class SlidingWindowTensor(_AntennaTable):
    """Ring buffer of the last W hourly traffic matrices.

    Holds the (antennas, services, W) recent-history tensor in bounded
    memory: each ingested hour occupies one ring slot, evicting the
    oldest hour once W hours are resident.
    """

    def __init__(self, service_names: Sequence[str], window_hours: int) -> None:
        super().__init__(service_names)
        if window_hours < 1:
            raise ValueError(f"window_hours must be >= 1, got {window_hours}")
        self.window_hours = int(window_hours)
        self._buffer = np.zeros((0, self.n_services, self.window_hours))
        self._slot_hours: List[Optional[np.datetime64]] = (
            [None] * self.window_hours
        )
        self._start = 0  # ring index of the oldest resident hour
        self._count = 0  # resident hours (<= window_hours)

    def _grow_arrays(self, new_capacity: int) -> None:
        grown = np.zeros((new_capacity, self.n_services, self.window_hours))
        grown[: self._buffer.shape[0]] = self._buffer
        self._buffer = grown

    def update(self, batch: HourlyBatch) -> List[int]:
        """Insert one hour, evicting the oldest when the window is full."""
        self._check_batch(batch)
        rows, new_ids = self._rows_for(batch.antenna_ids)
        if self._count == self.window_hours:
            slot = self._start
            self._start = (self._start + 1) % self.window_hours
        else:
            slot = (self._start + self._count) % self.window_hours
            self._count += 1
        self._buffer[: self.n_antennas, :, slot] = 0.0
        self._buffer[rows, :, slot] = batch.traffic
        self._slot_hours[slot] = batch.hour
        self.hours_seen += 1
        self.last_hour = batch.hour
        return new_ids

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def n_resident_hours(self) -> int:
        """Hours currently held in the window (<= ``window_hours``)."""
        return self._count

    def _slots(self) -> List[int]:
        return [
            (self._start + k) % self.window_hours for k in range(self._count)
        ]

    def hours(self) -> np.ndarray:
        """The resident hours, oldest first."""
        return np.array(
            [self._slot_hours[s] for s in self._slots()], dtype="datetime64[h]"
        )

    def tensor(self) -> np.ndarray:
        """(antennas, services, resident-hours) tensor, oldest hour first."""
        slots = self._slots()
        return self._buffer[: self.n_antennas][:, :, slots].copy()

    def window_totals(self) -> np.ndarray:
        """N x M totals over the resident window."""
        return self.tensor().sum(axis=2)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Complete state, with the ring normalized to oldest-first."""
        return {
            "service_names": np.array(self.service_names, dtype=str),
            "ids": self.antenna_ids(),
            "window_hours": int(self.window_hours),
            "buffer": self.tensor(),
            "slot_hours": np.array([str(h) for h in self.hours()], dtype=str),
            "hours_seen": int(self.hours_seen),
            "last_hour": "" if self.last_hour is None else str(self.last_hour),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "SlidingWindowTensor":
        """Rebuild a window whose future updates continue exactly."""
        acc = cls(
            [str(s) for s in np.asarray(state["service_names"])],
            int(state["window_hours"]),
        )
        ids = np.asarray(state["ids"], dtype=np.int64)
        resident = np.asarray(state["buffer"], dtype=float)
        n, m, count = resident.shape
        acc._capacity = n
        acc._buffer = np.zeros((n, m, acc.window_hours))
        acc._buffer[:, :, :count] = resident
        stamps = [np.datetime64(str(h), "h")
                  for h in np.asarray(state["slot_hours"])]
        acc._slot_hours = list(stamps) + [None] * (acc.window_hours - count)
        acc._start = 0
        acc._count = count
        last = str(state["last_hour"])
        acc._restore_registry(
            ids,
            int(state["hours_seen"]),
            np.datetime64(last, "h") if last else None,
        )
        return acc
