"""Checkpoint/restore of accumulator state to ``.npz``, CRC-validated.

A checkpoint is a flat mapping ``key -> array | scalar | string``; nested
components namespace their keys with ``"component."`` prefixes (e.g.
``"totals.matrix"``).  Arrays round-trip losslessly through ``savez``,
so an ingestion process restored from a checkpoint continues bit-for-bit
identically to one that never stopped.  Scalars and strings are recorded
in a JSON manifest so their Python types survive the round trip.

Durability is belt-and-braces:

* writes are atomic (assembled in a ``<path>.tmp`` sibling, installed
  with :func:`os.replace`) so a process killed mid-write can never leave
  a torn file at the destination;
* every array's CRC32 (over dtype, shape, and bytes) is recorded in the
  manifest and re-verified on load, so silent corruption *after* the
  write — a torn copy, a bad sector, an injected truncation — surfaces
  as a typed :class:`~repro.relia.errors.CheckpointCorrupt` instead of a
  raw ``zipfile``/``numpy`` exception deep inside restore;
* each successful save rotates the previous checkpoint to a ``.bak``
  sibling, and :func:`load_state_with_rollback` falls back to it when
  the primary fails validation — preserving the corrupt file as
  ``<path>.corrupt`` for autopsy.

Checkpoints written before CRC validation existed (manifest format 1)
still load; they simply skip the CRC pass.
"""

from __future__ import annotations

import json
import os
import shutil
import zipfile
import zlib
from pathlib import Path
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.obs import get_logger, get_registry
from repro.relia.errors import CheckpointCorrupt
from repro.relia.faults import fault_point, maybe_truncate_file

#: Reserved key of the JSON manifest inside the archive.
_MANIFEST_KEY = "__manifest__"

#: Current manifest layout: {"format": 2, "scalars": {...}, "crc": {...}}.
_MANIFEST_FORMAT = 2

_log = get_logger("repro.stream.checkpoint")


def _saves_counter():
    return get_registry().counter(
        "repro_checkpoint_saves_total",
        "Checkpoint files successfully written",
    )


def _loads_counter():
    """``repro_checkpoint_loads_total`` on the process registry.

    Together with :func:`_corruptions_counter` this family feeds the
    ``checkpoint-integrity`` SLO (see :func:`repro.obs.slo.default_slos`):
    the SLI is corruptions per load *attempt*, so a retry loop replaying
    one corrupt file spends budget per attempt instead of multiplying a
    single bad save into 0% compliance.
    """
    return get_registry().counter(
        "repro_checkpoint_loads_total",
        "Checkpoint load attempts that reached validation",
    )


def _corruptions_counter():
    return get_registry().counter(
        "repro_checkpoint_corruptions_total",
        "Checkpoint loads that failed CRC/manifest validation",
    )


def checkpoint_path(path) -> Path:
    """Normalize a checkpoint destination (appends ``.npz`` when missing)."""
    destination = Path(path)
    if destination.suffix != ".npz":
        destination = destination.with_name(destination.name + ".npz")
    return destination


def backup_path(path) -> Path:
    """The ``.bak`` sibling holding the previous good checkpoint."""
    destination = checkpoint_path(path)
    return destination.with_name(destination.name + ".bak")


def _array_crc(value: np.ndarray) -> int:
    """CRC32 over an array's dtype, shape, and raw bytes."""
    crc = zlib.crc32(str(value.dtype).encode("ascii"))
    crc = zlib.crc32(str(value.shape).encode("ascii"), crc)
    crc = zlib.crc32(np.ascontiguousarray(value).tobytes(), crc)
    return crc & 0xFFFFFFFF


def save_state(path, state: Mapping[str, object],
               keep_backup: bool = True) -> None:
    """Write a flat state mapping to a ``.npz`` checkpoint file.

    The write is atomic: the archive is assembled in a ``<path>.tmp``
    sibling and moved into place with :func:`os.replace`, so a process
    killed mid-write can never leave a torn checkpoint — the destination
    either holds the previous complete checkpoint or the new one.  The
    manifest records a CRC32 per array, verified by :func:`load_state`.

    Args:
        path: destination path (``.npz`` is appended when missing, to
            match :func:`numpy.savez_compressed`).
        state: mapping of string keys to numpy arrays, ints, floats,
            bools, or strings.
        keep_backup: rotate an existing checkpoint at the destination to
            a ``.bak`` sibling before installing the new one, enabling
            :func:`load_state_with_rollback`.
    """
    arrays: Dict[str, np.ndarray] = {}
    scalars: Dict[str, Dict[str, object]] = {}
    for key, value in state.items():
        if key == _MANIFEST_KEY:
            raise ValueError(f"{_MANIFEST_KEY!r} is a reserved key")
        if isinstance(value, np.ndarray):
            arrays[key] = value
        elif isinstance(value, (bool, np.bool_)):
            scalars[key] = {"type": "bool", "value": bool(value)}
        elif isinstance(value, (int, np.integer)):
            scalars[key] = {"type": "int", "value": int(value)}
        elif isinstance(value, (float, np.floating)):
            # repr round-trips float64 exactly (shortest-repr guarantee).
            scalars[key] = {"type": "float", "value": repr(float(value))}
        elif isinstance(value, str):
            scalars[key] = {"type": "str", "value": value}
        else:
            raise TypeError(
                f"unsupported checkpoint value for {key!r}: "
                f"{type(value).__name__}"
            )
    manifest = json.dumps({
        "format": _MANIFEST_FORMAT,
        "scalars": scalars,
        "crc": {key: _array_crc(value) for key, value in arrays.items()},
    }).encode("utf-8")
    arrays[_MANIFEST_KEY] = np.frombuffer(manifest, dtype=np.uint8)
    destination = checkpoint_path(path)
    fault_point("stream.checkpoint.write", file=destination.name)
    staging = destination.with_name(destination.name + ".tmp")
    try:
        # Writing through a file handle keeps numpy from appending a
        # suffix to the staging name.
        with open(staging, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        if keep_backup and destination.exists():
            os.replace(destination, backup_path(destination))
        os.replace(staging, destination)
    finally:
        if staging.exists():
            staging.unlink()
    # Chaos hook: corrupt the installed file *after* a clean write — the
    # shape of a torn copy or bad sector that CRC validation must catch.
    maybe_truncate_file(destination, "stream.checkpoint",
                        file=destination.name)
    _saves_counter().inc()


def load_state(path) -> Dict[str, object]:
    """Read back and validate a checkpoint written by :func:`save_state`.

    Every attempt that reaches validation bumps
    ``repro_checkpoint_loads_total``; every validation failure also
    bumps ``repro_checkpoint_corruptions_total`` (the
    ``checkpoint-integrity`` SLO's total and bad-event counts).  A
    missing file counts as neither — absence is a different condition
    from corruption and should not spend integrity budget.

    Raises:
        CheckpointCorrupt: when the file is not a readable archive, the
            manifest is missing or malformed, an array named by the
            manifest is absent, or any array fails its CRC check.
        FileNotFoundError: when the file does not exist (a *missing*
            checkpoint is a different condition from a corrupt one).
    """
    try:
        state = _load_state_validated(path)
    except CheckpointCorrupt:
        _loads_counter().inc()
        _corruptions_counter().inc()
        raise
    _loads_counter().inc()
    return state


def _load_state_validated(path) -> Dict[str, object]:
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint at {path}")
    state: Dict[str, object] = {}
    try:
        with np.load(path, allow_pickle=False) as archive:
            if _MANIFEST_KEY not in archive.files:
                raise CheckpointCorrupt(path, "missing manifest")
            manifest_raw = archive[_MANIFEST_KEY]
            manifest = json.loads(
                bytes(manifest_raw.tobytes()).decode("utf-8")
            )
            for key in archive.files:
                if key != _MANIFEST_KEY:
                    state[key] = archive[key]
    except CheckpointCorrupt:
        raise
    except (zipfile.BadZipFile, zlib.error, OSError, EOFError, KeyError,
            ValueError) as exc:
        raise CheckpointCorrupt(
            path, f"unreadable archive ({type(exc).__name__}: {exc})"
        ) from exc
    if isinstance(manifest, dict) and "format" in manifest:
        scalars = manifest.get("scalars", {})
        checksums = manifest.get("crc", {})
        for key, expected in checksums.items():
            if key not in state:
                raise CheckpointCorrupt(path, f"missing array {key!r}")
            actual = _array_crc(state[key])
            if actual != int(expected):
                raise CheckpointCorrupt(
                    path,
                    f"crc mismatch for {key!r} "
                    f"(expected {int(expected)}, got {actual})",
                )
    else:
        # Format-1 manifest: a bare scalars dict, no CRC coverage.
        scalars = manifest
    for key, entry in scalars.items():
        kind, value = entry["type"], entry["value"]
        if kind == "bool":
            state[key] = bool(value)
        elif kind == "int":
            state[key] = int(value)
        elif kind == "float":
            state[key] = float(value)
        elif kind == "str":
            state[key] = str(value)
        else:  # pragma: no cover - forward compatibility guard
            raise ValueError(f"unknown scalar type {kind!r} for {key!r}")
    return state


def load_state_with_rollback(path) -> Tuple[Dict[str, object], bool]:
    """Load a checkpoint, falling back to its ``.bak`` on corruption.

    On a corrupt primary with a valid backup: the corrupt file is
    preserved as ``<path>.corrupt`` for autopsy, the backup is promoted
    back to the primary path, and the backup's state is returned.

    Returns:
        ``(state, rolled_back)`` — ``rolled_back`` is True when the
        state came from the backup.

    Raises:
        CheckpointCorrupt: when the primary is corrupt and no valid
            backup exists (the original corruption error).
        FileNotFoundError: when neither file exists.
    """
    primary = checkpoint_path(path)
    try:
        return load_state(primary), False
    except CheckpointCorrupt as primary_error:
        backup = backup_path(primary)
        try:
            state = load_state(backup)
        except (CheckpointCorrupt, FileNotFoundError):
            raise primary_error
        autopsy = primary.with_name(primary.name + ".corrupt")
        os.replace(primary, autopsy)
        shutil.copy2(backup, primary)
        _log.error(
            "checkpoint_rollback", path=str(primary),
            reason=primary_error.reason, backup=str(backup),
            corrupt_saved_as=str(autopsy),
        )
        return state, True


def split_namespace(
    state: Mapping[str, object], prefix: str
) -> Dict[str, object]:
    """Extract one component's sub-state from a namespaced checkpoint."""
    marker = prefix + "."
    sub = {
        key[len(marker):]: value
        for key, value in state.items()
        if key.startswith(marker)
    }
    if not sub:
        raise KeyError(f"checkpoint has no {prefix!r} component")
    return sub


def merge_namespaces(
    components: Mapping[str, Mapping[str, object]]
) -> Dict[str, object]:
    """Combine component states into one namespaced flat mapping."""
    merged: Dict[str, object] = {}
    for prefix, sub in components.items():
        for key, value in sub.items():
            merged[f"{prefix}.{key}"] = value
    return merged
