"""Checkpoint/restore of accumulator state to ``.npz``.

A checkpoint is a flat mapping ``key -> array | scalar | string``; nested
components namespace their keys with ``"component."`` prefixes (e.g.
``"totals.matrix"``).  Arrays round-trip losslessly through ``savez``,
so an ingestion process restored from a checkpoint continues bit-for-bit
identically to one that never stopped.  Scalars and strings are recorded
in a JSON manifest so their Python types survive the round trip.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Mapping

import numpy as np

#: Reserved key of the JSON manifest inside the archive.
_MANIFEST_KEY = "__manifest__"


def save_state(path, state: Mapping[str, object]) -> None:
    """Write a flat state mapping to a ``.npz`` checkpoint file.

    The write is atomic: the archive is assembled in a ``<path>.tmp``
    sibling and moved into place with :func:`os.replace`, so a process
    killed mid-write can never leave a torn checkpoint — the destination
    either holds the previous complete checkpoint or the new one.

    Args:
        path: destination path (``.npz`` is appended when missing, to
            match :func:`numpy.savez_compressed`).
        state: mapping of string keys to numpy arrays, ints, floats,
            bools, or strings.
    """
    arrays: Dict[str, np.ndarray] = {}
    scalars: Dict[str, Dict[str, object]] = {}
    for key, value in state.items():
        if key == _MANIFEST_KEY:
            raise ValueError(f"{_MANIFEST_KEY!r} is a reserved key")
        if isinstance(value, np.ndarray):
            arrays[key] = value
        elif isinstance(value, (bool, np.bool_)):
            scalars[key] = {"type": "bool", "value": bool(value)}
        elif isinstance(value, (int, np.integer)):
            scalars[key] = {"type": "int", "value": int(value)}
        elif isinstance(value, (float, np.floating)):
            # repr round-trips float64 exactly (shortest-repr guarantee).
            scalars[key] = {"type": "float", "value": repr(float(value))}
        elif isinstance(value, str):
            scalars[key] = {"type": "str", "value": value}
        else:
            raise TypeError(
                f"unsupported checkpoint value for {key!r}: "
                f"{type(value).__name__}"
            )
    manifest = json.dumps(scalars).encode("utf-8")
    arrays[_MANIFEST_KEY] = np.frombuffer(manifest, dtype=np.uint8)
    destination = Path(path)
    if destination.suffix != ".npz":
        destination = destination.with_name(destination.name + ".npz")
    staging = destination.with_name(destination.name + ".tmp")
    try:
        # Writing through a file handle keeps numpy from appending a
        # suffix to the staging name.
        with open(staging, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(staging, destination)
    finally:
        if staging.exists():
            staging.unlink()


def load_state(path) -> Dict[str, object]:
    """Read back a checkpoint written by :func:`save_state`."""
    path = Path(path)
    state: Dict[str, object] = {}
    with np.load(path, allow_pickle=False) as archive:
        manifest_raw = archive[_MANIFEST_KEY]
        scalars = json.loads(bytes(manifest_raw.tobytes()).decode("utf-8"))
        for key in archive.files:
            if key != _MANIFEST_KEY:
                state[key] = archive[key]
    for key, entry in scalars.items():
        kind, value = entry["type"], entry["value"]
        if kind == "bool":
            state[key] = bool(value)
        elif kind == "int":
            state[key] = int(value)
        elif kind == "float":
            state[key] = float(value)
        elif kind == "str":
            state[key] = str(value)
        else:  # pragma: no cover - forward compatibility guard
            raise ValueError(f"unknown scalar type {kind!r} for {key!r}")
    return state


def split_namespace(
    state: Mapping[str, object], prefix: str
) -> Dict[str, object]:
    """Extract one component's sub-state from a namespaced checkpoint."""
    marker = prefix + "."
    sub = {
        key[len(marker):]: value
        for key, value in state.items()
        if key.startswith(marker)
    }
    if not sub:
        raise KeyError(f"checkpoint has no {prefix!r} component")
    return sub


def merge_namespaces(
    components: Mapping[str, Mapping[str, object]]
) -> Dict[str, object]:
    """Combine component states into one namespaced flat mapping."""
    merged: Dict[str, object] = {}
    for prefix, sub in components.items():
        for key, value in sub.items():
            merged[f"{prefix}.{key}"] = value
    return merged
