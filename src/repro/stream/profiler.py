"""Online profiling: classify an hourly stream against a frozen profile.

:class:`StreamingProfiler` is the online counterpart of
:class:`~repro.core.pipeline.ICNProfiler`.  It never re-clusters; instead
it folds each arriving :class:`~repro.stream.batch.HourlyBatch` into the
incremental accumulators, classifies every antenna seen so far against a
:class:`~repro.stream.frozen.FrozenProfile` (nearest-centroid +
surrogate-forest vote), reports per-batch cluster occupancy, and raises
drift signals — via :func:`repro.analysis.drift.compare_partitions` —
when the streamed partition walks away from the frozen reference, which
is the operator's cue to re-run the batch pipeline (the "additional
clusters over time" scenario of paper Section 7).

The profiler's complete accumulator state checkpoints to ``.npz``
(:meth:`StreamingProfiler.checkpoint` / :meth:`StreamingProfiler.restore`)
so ingestion survives restarts mid-stream without replaying history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.drift import DriftReport, compare_partitions
from repro.obs import get_logger, span
from repro.obs.trace import TraceContext
from repro.stream.accumulators import IncrementalRSCA, SlidingWindowTensor
from repro.stream.batch import HourlyBatch
from repro.relia.faults import fault_point
from repro.stream.checkpoint import (
    checkpoint_path,
    load_state,
    load_state_with_rollback,
    merge_namespaces,
    save_state,
    split_namespace,
)
from repro.stream.frozen import FrozenProfile
from repro.stream.metrics import StreamMetrics

#: Default sliding-window span: one week of hours.
DEFAULT_WINDOW_HOURS = 168

_log = get_logger("repro.stream")


@dataclass(frozen=True)
class DriftSignal:
    """Outcome of one drift check against the frozen reference.

    Attributes:
        hour: stream position of the check.
        report: the full partition comparison.
        mean_centroid_drift: mean matched-centroid distance (``inf`` when
            nothing matched).
        n_common_antennas: antennas present in both the frozen profile
            and the stream (the comparison population).
        refit_recommended: True when drift exceeds the profiler's
            threshold or clusters emerged/vanished — time to re-run the
            batch pipeline.
    """

    hour: Optional[np.datetime64]
    report: DriftReport
    mean_centroid_drift: float
    n_common_antennas: int
    refit_recommended: bool

    def summary(self) -> str:
        """One-line drift statement plus the underlying report."""
        verdict = (
            "REFIT RECOMMENDED" if self.refit_recommended else "profile holds"
        )
        return (
            f"drift @ {self.hour} over {self.n_common_antennas} antennas: "
            f"{verdict}\n{self.report.summary()}"
        )


@dataclass(frozen=True)
class BatchResult:
    """Per-batch ingestion outcome.

    Attributes:
        hour: the batch's hour.
        n_rows: antenna-hours ingested.
        new_antennas: ids first seen in this batch.
        occupancy: cluster -> antenna count over all classified antennas,
            or None when this batch skipped classification.
        drift: drift signal, when this batch triggered a check.
    """

    hour: np.datetime64
    n_rows: int
    new_antennas: Tuple[int, ...]
    occupancy: Optional[Dict[int, int]]
    drift: Optional[DriftSignal]


class StreamingProfiler:
    """Classify an ordered hourly stream against a frozen profile.

    Args:
        frozen: the reference profile (see
            :func:`repro.stream.frozen.freeze_profile`).
        window_hours: span of the recent-history sliding window.
        classify_every: classify and report occupancy every k-th batch
            (0 disables per-batch classification; call
            :meth:`classify_current` manually).
        drift_check_every: run a drift check every k-th batch (0 = only
            on explicit :meth:`check_drift` calls).
        drift_threshold: centroid distance above which a matched cluster
            pair no longer counts as the same profile; also the
            mean-drift level that flips ``refit_recommended``.
        trace_parent: optional :class:`~repro.obs.trace.TraceContext`
            every ``stream.ingest`` span parents onto — a driver
            (``repro-icn stream`` feeding a serve hot-swap, a future
            worker process) passes its own context so the ingestion
            span tree joins the driver's trace instead of rooting new
            ones.
    """

    def __init__(
        self,
        frozen: FrozenProfile,
        window_hours: int = DEFAULT_WINDOW_HOURS,
        classify_every: int = 1,
        drift_check_every: int = 0,
        drift_threshold: float = 1.5,
        trace_parent: Optional["TraceContext"] = None,
    ) -> None:
        if classify_every < 0 or drift_check_every < 0:
            raise ValueError("classify_every/drift_check_every must be >= 0")
        if drift_threshold <= 0:
            raise ValueError(
                f"drift_threshold must be positive, got {drift_threshold}"
            )
        self.frozen = frozen
        self.classify_every = int(classify_every)
        self.drift_check_every = int(drift_check_every)
        self.drift_threshold = float(drift_threshold)
        self.trace_parent = trace_parent
        self.totals = IncrementalRSCA(frozen.service_names)
        self.window = SlidingWindowTensor(frozen.service_names, window_hours)
        self.metrics = StreamMetrics()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(self, batch: HourlyBatch) -> BatchResult:
        """Fold one batch in; classify / drift-check on schedule."""
        # Chaos hook, armed only under an installed FaultPlan.  Placed
        # before any accumulator mutation so a retried ingest is safe.
        fault_point("stream.ingest", hour=str(batch.hour))
        with span("stream.ingest", parent=self.trace_parent,
                  hour=str(batch.hour), n_rows=int(batch.n_rows)):
            with self.metrics.timer("ingest_seconds"):
                new_ids = self.totals.update(batch)
                self.window.update(batch)
        self.metrics.incr("batches_ingested")
        self.metrics.incr("rows_ingested", batch.n_rows)
        self.metrics.incr("antennas_discovered", len(new_ids))

        count = self.metrics.count("batches_ingested")
        occupancy: Optional[Dict[int, int]] = None
        if self.classify_every and count % self.classify_every == 0:
            with span("stream.classify", hour=str(batch.hour)):
                with self.metrics.timer("classify_seconds"):
                    _, labels = self.classify_current()
                    occupancy = self._occupancy_of(labels)
            self.metrics.incr("classify_calls")

        drift: Optional[DriftSignal] = None
        if self.drift_check_every and count % self.drift_check_every == 0:
            drift = self.check_drift(hour=batch.hour)

        return BatchResult(
            hour=batch.hour,
            n_rows=batch.n_rows,
            new_antennas=tuple(new_ids),
            occupancy=occupancy,
            drift=drift,
        )

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def classify_current(self) -> Tuple[np.ndarray, np.ndarray]:
        """Classify every antenna that has carried traffic so far.

        Returns:
            ``(antenna_ids, labels)`` from the running RSCA features and
            the frozen profile's vote.
        """
        ids, features = self.totals.rsca_nonzero()
        return ids, self.frozen.vote(features)

    def _occupancy_of(self, labels: np.ndarray) -> Dict[int, int]:
        occupancy = {int(c): 0 for c in self.frozen.clusters}
        unique, counts = np.unique(labels, return_counts=True)
        for cluster, count in zip(unique, counts):
            occupancy[int(cluster)] = int(count)
        return occupancy

    def occupancy(self) -> Dict[int, int]:
        """Current cluster -> antenna-count occupancy."""
        _, labels = self.classify_current()
        return self._occupancy_of(labels)

    # ------------------------------------------------------------------
    # Drift
    # ------------------------------------------------------------------

    def check_drift(
        self, hour: Optional[np.datetime64] = None
    ) -> DriftSignal:
        """Compare the streamed partition against the frozen reference.

        Restricts both sides to the antennas present in each (the frozen
        training rows that have reported traffic on the stream) and runs
        the longitudinal drift analysis on that common population.
        """
        with span("stream.drift"), self.metrics.timer("drift_seconds"):
            ids, features = self.totals.rsca_nonzero()
            labels = self.frozen.vote(features)
            frozen_pos = {
                int(aid): row for row, aid in enumerate(self.frozen.antenna_ids)
            }
            common = [k for k, aid in enumerate(ids) if int(aid) in frozen_pos]
            if len(common) < 2:
                raise ValueError(
                    "drift check requires at least 2 streamed antennas that "
                    "appear in the frozen profile"
                )
            stream_rows = np.array(common, dtype=np.intp)
            frozen_rows = np.array(
                [frozen_pos[int(ids[k])] for k in common], dtype=np.intp
            )
            report = compare_partitions(
                self.frozen.features[frozen_rows],
                self.frozen.labels[frozen_rows],
                features[stream_rows],
                labels[stream_rows],
                self.frozen.service_names,
                match_threshold=self.drift_threshold,
            )
            drifted = (
                not np.isfinite(report.mean_centroid_drift)
                or report.mean_centroid_drift > self.drift_threshold
                or bool(report.emerging)
                or bool(report.vanished)
            )
        self.metrics.incr("drift_checks")
        signal = DriftSignal(
            hour=hour if hour is not None else self.totals.last_hour,
            report=report,
            mean_centroid_drift=report.mean_centroid_drift,
            n_common_antennas=len(common),
            refit_recommended=drifted,
        )
        _log.log(
            "warning" if drifted else "info",
            "drift_check",
            hour=str(signal.hour),
            mean_centroid_drift=float(report.mean_centroid_drift),
            n_common_antennas=signal.n_common_antennas,
            emerging=len(report.emerging),
            vanished=len(report.vanished),
            refit_recommended=drifted,
        )
        return signal

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self, path) -> None:
        """Write all accumulator state (and counters) to a ``.npz`` file."""
        state = merge_namespaces(
            {
                "totals": self.totals.state_dict(),
                "window": self.window.state_dict(),
                "metrics": self.metrics.state_dict(),
            }
        )
        save_state(path, state)
        self.metrics.incr("checkpoints_written")

    @classmethod
    def restore(
        cls,
        path,
        frozen: FrozenProfile,
        classify_every: int = 1,
        drift_check_every: int = 0,
        drift_threshold: float = 1.5,
        rollback: bool = True,
    ) -> "StreamingProfiler":
        """Rebuild a profiler mid-stream from a checkpoint.

        The restored accumulators continue bit-for-bit identically to an
        uninterrupted run; only wall-clock timers restart.

        Args:
            rollback: on a corrupt checkpoint, fall back to the ``.bak``
                sibling kept by :func:`repro.stream.checkpoint.save_state`
                (the corrupt file is preserved as ``<path>.corrupt``).
                When False — or when no valid backup exists — corruption
                raises :class:`repro.relia.errors.CheckpointCorrupt`.
        """
        if rollback:
            state, rolled_back = load_state_with_rollback(path)
            if rolled_back:
                _log.warning("checkpoint_restored_from_backup",
                             path=str(path))
        else:
            state = load_state(checkpoint_path(path))
        totals = IncrementalRSCA.from_state(split_namespace(state, "totals"))
        if totals.service_names != tuple(frozen.service_names):
            raise ValueError(
                "checkpoint service columns do not match the frozen profile"
            )
        window = SlidingWindowTensor.from_state(
            split_namespace(state, "window")
        )
        profiler = cls(
            frozen,
            window_hours=window.window_hours,
            classify_every=classify_every,
            drift_check_every=drift_check_every,
            drift_threshold=drift_threshold,
        )
        profiler.totals = totals
        profiler.window = window
        profiler.metrics = StreamMetrics.from_state(
            split_namespace(state, "metrics")
        )
        return profiler

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> str:
        """Human-readable ingestion status block."""
        lines = [
            f"streaming profiler @ {self.totals.last_hour}: "
            f"{self.totals.n_antennas} antennas, "
            f"{self.totals.hours_seen} hours ingested, "
            f"{self.window.n_resident_hours}/{self.window.window_hours} "
            f"window hours resident",
            self.metrics.summary(),
        ]
        if self.totals.n_antennas and np.any(self.totals.nonzero_mask()):
            occupancy = self.occupancy()
            lines.insert(
                1,
                "occupancy: "
                + ", ".join(
                    f"{c}:{n}" for c, n in sorted(occupancy.items())
                ),
            )
        return "\n".join(lines)
