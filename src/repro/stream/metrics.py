"""Lightweight ingestion counters and timers.

:class:`StreamMetrics` tracks what an operator's dashboard needs from an
ingestion node: batches and antenna-hours ingested, newly discovered
antennas, and wall-clock spent in ingestion / classification / drift
checks, from which it derives throughput (antenna-hours per second) and
mean per-batch classification latency.  Counters checkpoint alongside
the accumulators; timers restart at zero on restore (wall-clock is a
property of the process, not the stream).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict


class StreamMetrics:
    """Counters and timers for one ingestion process."""

    #: Counter names, in reporting order.
    COUNTERS = (
        "batches_ingested",
        "rows_ingested",
        "antennas_discovered",
        "classify_calls",
        "drift_checks",
        "checkpoints_written",
    )
    #: Timer names, in reporting order.
    TIMERS = ("ingest_seconds", "classify_seconds", "drift_seconds")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {name: 0 for name in self.COUNTERS}
        self._timers: Dict[str, float] = {name: 0.0 for name in self.TIMERS}

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment one counter."""
        if name not in self._counters:
            raise KeyError(f"unknown counter {name!r}")
        self._counters[name] += int(amount)

    def count(self, name: str) -> int:
        """Current value of one counter."""
        return self._counters[name]

    def seconds(self, name: str) -> float:
        """Accumulated wall-clock of one timer."""
        return self._timers[name]

    @contextmanager
    def timer(self, name: str):
        """Context manager adding the enclosed wall-clock to a timer."""
        if name not in self._timers:
            raise KeyError(f"unknown timer {name!r}")
        start = time.perf_counter()
        try:
            yield
        finally:
            self._timers[name] += time.perf_counter() - start

    # ------------------------------------------------------------------
    # Derived rates
    # ------------------------------------------------------------------

    def rows_per_second(self) -> float:
        """Ingestion throughput in antenna-hours (rows) per second."""
        elapsed = self._timers["ingest_seconds"]
        return self._counters["rows_ingested"] / elapsed if elapsed > 0 else 0.0

    def classification_latency(self) -> float:
        """Mean wall-clock seconds per classification pass."""
        calls = self._counters["classify_calls"]
        return self._timers["classify_seconds"] / calls if calls else 0.0

    def summary(self) -> str:
        """Human-readable metrics block."""
        # Before any classification pass there is no latency to report;
        # "0.0 ms/batch" would read as a (suspiciously great) measurement.
        if self._counters["classify_calls"]:
            latency = f"{self.classification_latency() * 1e3:.1f} ms/batch"
        else:
            latency = "n/a"
        lines = [
            f"batches ingested:       {self._counters['batches_ingested']}",
            f"antenna-hours ingested: {self._counters['rows_ingested']}",
            f"antennas discovered:    {self._counters['antennas_discovered']}",
            f"ingest throughput:      {self.rows_per_second():,.0f} "
            f"antenna-hours/s",
            f"classification passes:  {self._counters['classify_calls']} "
            f"({latency})",
            f"drift checks:           {self._counters['drift_checks']}",
            f"checkpoints written:    {self._counters['checkpoints_written']}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (same shape as ServeMetrics).

        ``classification_latency_ms`` is None rather than 0.0 before the
        first pass — an export consumer must be able to tell "fast" from
        "never ran".
        """
        calls = self._counters["classify_calls"]
        return {
            "counters": dict(self._counters),
            "timers": dict(self._timers),
            "derived": {
                "rows_per_second": self.rows_per_second(),
                "classification_latency_ms": (
                    self.classification_latency() * 1e3 if calls else None
                ),
            },
        }

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Counters only — wall-clock does not survive a restart."""
        return {name: int(value) for name, value in self._counters.items()}

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "StreamMetrics":
        """Rebuild metrics with restored counters and zeroed timers."""
        metrics = cls()
        for name in metrics.COUNTERS:
            if name in state:
                metrics._counters[name] = int(state[name])
        return metrics
