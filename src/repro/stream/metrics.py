"""Lightweight ingestion counters and timers.

:class:`StreamMetrics` tracks what an operator's dashboard needs from an
ingestion node: batches and antenna-hours ingested, newly discovered
antennas, and wall-clock spent in ingestion / classification / drift
checks, from which it derives throughput (antenna-hours per second) and
mean per-batch classification latency.  Counters checkpoint alongside
the accumulators; timers restart at zero on restore (wall-clock is a
property of the process, not the stream).

Since the observability layer landed, the class is a facade over a
:class:`repro.obs.MetricsRegistry`: counters become
``repro_stream_<name>_total`` families and timers become
``repro_stream_<name>_total`` second-counters, so an ingestion node
exposes the same Prometheus text surface as a serving node
(:meth:`StreamMetrics.prometheus_text`).  All mutations are thread-safe
under the registry's per-family locks — an ingestion node may share its
metrics object between a reader thread and a checkpointing thread.
Each instance owns a private registry by default; pass a shared one to
merge components onto a single exposition surface.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Optional

from repro.obs.registry import MetricsRegistry


class StreamMetrics:
    """Counters and timers for one ingestion process.

    Args:
        registry: back the metrics onto this
            :class:`~repro.obs.MetricsRegistry` (a fresh private one by
            default).
    """

    #: Counter names, in reporting order.
    COUNTERS = (
        "batches_ingested",
        "rows_ingested",
        "antennas_discovered",
        "classify_calls",
        "drift_checks",
        "checkpoints_written",
    )
    #: Timer names, in reporting order.
    TIMERS = ("ingest_seconds", "classify_seconds", "drift_seconds")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(
                f"repro_stream_{name}_total",
                f"Ingestion counter: {name.replace('_', ' ')}",
            )
            for name in self.COUNTERS
        }
        self._timers = {
            name: self.registry.counter(
                f"repro_stream_{name}_total",
                f"Accumulated wall-clock: {name.replace('_', ' ')}",
            )
            for name in self.TIMERS
        }
        self.registry.gauge(
            "repro_stream_rows_per_second",
            "Ingestion throughput in antenna-hours per second",
        ).set_function(self.rows_per_second)

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment one counter."""
        counter = self._counters.get(name)
        if counter is None:
            raise KeyError(f"unknown counter {name!r}")
        counter.inc(int(amount))

    def count(self, name: str) -> int:
        """Current value of one counter."""
        counter = self._counters.get(name)
        if counter is None:
            raise KeyError(f"unknown counter {name!r}")
        return int(counter.value)

    def seconds(self, name: str) -> float:
        """Accumulated wall-clock of one timer."""
        timer = self._timers.get(name)
        if timer is None:
            raise KeyError(f"unknown timer {name!r}")
        return timer.value

    @contextmanager
    def timer(self, name: str):
        """Context manager adding the enclosed wall-clock to a timer."""
        timer = self._timers.get(name)
        if timer is None:
            raise KeyError(f"unknown timer {name!r}")
        start = time.perf_counter()
        try:
            yield
        finally:
            timer.inc(time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Derived rates
    # ------------------------------------------------------------------

    def rows_per_second(self) -> float:
        """Ingestion throughput in antenna-hours (rows) per second."""
        elapsed = self.seconds("ingest_seconds")
        return self.count("rows_ingested") / elapsed if elapsed > 0 else 0.0

    def classification_latency(self) -> float:
        """Mean wall-clock seconds per classification pass."""
        calls = self.count("classify_calls")
        return self.seconds("classify_seconds") / calls if calls else 0.0

    def summary(self) -> str:
        """Human-readable metrics block."""
        # Before any classification pass there is no latency to report;
        # "0.0 ms/batch" would read as a (suspiciously great) measurement.
        if self.count("classify_calls"):
            latency = f"{self.classification_latency() * 1e3:.1f} ms/batch"
        else:
            latency = "n/a"
        lines = [
            f"batches ingested:       {self.count('batches_ingested')}",
            f"antenna-hours ingested: {self.count('rows_ingested')}",
            f"antennas discovered:    {self.count('antennas_discovered')}",
            f"ingest throughput:      {self.rows_per_second():,.0f} "
            f"antenna-hours/s",
            f"classification passes:  {self.count('classify_calls')} "
            f"({latency})",
            f"drift checks:           {self.count('drift_checks')}",
            f"checkpoints written:    {self.count('checkpoints_written')}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (same shape as ServeMetrics).

        ``classification_latency_ms`` is None rather than 0.0 before the
        first pass — an export consumer must be able to tell "fast" from
        "never ran".
        """
        calls = self.count("classify_calls")
        return {
            "counters": {name: self.count(name) for name in self.COUNTERS},
            "timers": {name: self.seconds(name) for name in self.TIMERS},
            "derived": {
                "rows_per_second": self.rows_per_second(),
                "classification_latency_ms": (
                    self.classification_latency() * 1e3 if calls else None
                ),
            },
            # Monotonic stamp so TSDB ingestion and bench_compare diffs
            # can reject a stale (cached / re-served) snapshot.
            "snapshot_ts": time.monotonic(),
        }

    def prometheus_text(self) -> str:
        """This node's registry in the Prometheus text exposition format."""
        return self.registry.prometheus_text()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Counters only — wall-clock does not survive a restart."""
        return {name: self.count(name) for name in self.COUNTERS}

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "StreamMetrics":
        """Rebuild metrics with restored counters and zeroed timers."""
        metrics = cls()
        for name in metrics.COUNTERS:
            if name in state:
                metrics._counters[name].inc(int(state[name]))
        return metrics
