"""Frozen-profile artifacts: the fitted reference a streamer classifies against.

An :class:`~repro.core.pipeline.ICNProfile` is a heavyweight object
(clustering model, dendrogram, SHAP caches).  The online path needs only
the parts that define the *reference partition*: the RSCA features and
labels of the training antennas, the per-cluster centroids, and the
surrogate forest.  :class:`FrozenProfile` captures exactly that, serializes
to ``.npz``, and exposes the nearest-centroid + surrogate-forest vote the
:class:`~repro.stream.profiler.StreamingProfiler` classifies with.

Serialization stores the training features/labels and the forest's
hyper-parameters rather than the fitted trees: the from-scratch forest is
deterministic in (data, parameters, seed), so :meth:`FrozenProfile.load`
refits an identical ensemble — simpler and smaller than serializing tree
structures, at the cost of a short refit on load.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.rca import rca_from_components, rsca_from_rca
from repro.ml.compiled import CompiledForest, FusedProfileKernel
from repro.ml.forest import RandomForestClassifier
from repro.utils.checks import check_matrix

#: Forest constructor arguments captured in the artifact.
_FOREST_PARAMS = (
    "n_estimators",
    "max_depth",
    "min_samples_leaf",
    "max_features",
    "bootstrap",
    "random_state",
)


@dataclass
class FrozenProfile:
    """Immutable snapshot of a fitted profile, for online classification.

    Attributes:
        features: N x M RSCA matrix the reference clustering ran on.
        labels: reference cluster label per training antenna.
        antenna_ids: antenna ids of the training rows (drift checks match
            streamed antennas against these).
        clusters: sorted distinct cluster labels.
        centroids: K x M per-cluster mean RSCA, rows ordered like
            ``clusters``.
        service_names: feature names in column order.
        surrogate: the fitted surrogate forest.
        service_totals: optional length-M network-wide per-service traffic
            totals of the reference period.  When present, the profile can
            transform *raw* per-service volumes into RSCA features
            (:meth:`rsca_of_volumes`) — the serving layer's volume-query
            path — without the caller knowing the reference mix.
        compiled: optional pre-built array-compiled surrogate (embedded in
            ``.npz`` artifacts); built lazily from the object forest when
            absent.  :meth:`kernel` bundles it with the centroids into the
            fused serving kernel.
    """

    features: np.ndarray
    labels: np.ndarray
    antenna_ids: np.ndarray
    clusters: np.ndarray
    centroids: np.ndarray
    service_names: Tuple[str, ...]
    surrogate: RandomForestClassifier
    service_totals: Optional[np.ndarray] = None
    compiled: Optional[CompiledForest] = None

    @property
    def n_clusters(self) -> int:
        """Number of reference clusters K."""
        return int(self.clusters.size)

    def compiled_forest(self) -> CompiledForest:
        """The array-compiled surrogate, compiling (and caching) on demand."""
        if self.compiled is None:
            self.compiled = self.surrogate.compile()
        return self.compiled

    def kernel(self) -> FusedProfileKernel:
        """The fused batch serving kernel for this profile.

        Bundles the compiled forest, the reference centroids, and the
        frozen service totals so serving batches run one pass over
        contiguous arrays — ``kernel().vote`` is bit-identical to
        :meth:`vote` and ``kernel().vote_volumes`` to
        ``vote(rsca_of_volumes(...))``.
        """
        if self._kernel is None:
            self._kernel = FusedProfileKernel(
                self.compiled_forest(),
                self.clusters,
                self.centroids,
                service_totals=self.service_totals,
            )
        return self._kernel

    def __post_init__(self) -> None:
        self._kernel: Optional[FusedProfileKernel] = None

    def nearest_centroids(self, features: np.ndarray) -> np.ndarray:
        """Cluster of the closest centroid for each feature row."""
        x = check_matrix(features, "features")
        if x.shape[1] != self.centroids.shape[1]:
            raise ValueError(
                f"features have {x.shape[1]} columns, centroids have "
                f"{self.centroids.shape[1]}"
            )
        distances = np.linalg.norm(
            x[:, None, :] - self.centroids[None, :, :], axis=2
        )
        return self.clusters[np.argmin(distances, axis=1)]

    def vote(self, features: np.ndarray) -> np.ndarray:
        """Nearest-centroid + surrogate-forest vote per feature row.

        The surrogate contributes its class-probability distribution and
        the nearest centroid one full vote; the argmax decides.  Where
        forest and centroid agree the agreement wins outright; where they
        disagree, the forest's confidence margin settles it.
        """
        x = check_matrix(features, "features")
        scores = np.zeros((x.shape[0], self.n_clusters))
        proba = self.surrogate.predict_proba(x)
        cols = np.searchsorted(self.clusters, self.surrogate.classes_)
        scores[:, cols] += proba
        nearest = self.nearest_centroids(x)
        nearest_cols = np.searchsorted(self.clusters, nearest)
        scores[np.arange(x.shape[0]), nearest_cols] += 1.0
        return self.clusters[np.argmax(scores, axis=1)]

    def rsca_of_volumes(self, volumes: np.ndarray) -> np.ndarray:
        """RSCA features of raw per-service volumes vs. the reference mix.

        Applies :func:`repro.core.rca.rca_from_components` with this
        profile's frozen ``service_totals`` as the reference marginals —
        the Eq. 5 generalization: a queried antenna's service shares are
        compared against the *reference* network mix, not the query's own.

        Raises:
            ValueError: when the artifact was frozen without
                ``service_totals``, or the volumes are malformed.
        """
        if self.service_totals is None:
            raise ValueError(
                "profile was frozen without service_totals; re-freeze with "
                "freeze_profile(..., service_totals=dataset.totals.sum(axis=0))"
            )
        matrix = check_matrix(volumes, "volumes", non_negative=True)
        if matrix.shape[1] != len(self.service_names):
            raise ValueError(
                f"volumes have {matrix.shape[1]} columns, profile has "
                f"{len(self.service_names)} services"
            )
        rca = rca_from_components(
            matrix,
            matrix.sum(axis=1),
            self.service_totals,
            float(self.service_totals.sum()),
        )
        return rsca_from_rca(rca)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Write the artifact to ``.npz``.

        Alongside the training data and forest hyper-parameters, the
        archive embeds the array-compiled surrogate (flat ``compiled_*``
        vectors) so :meth:`load` can stand the batch kernel up without
        waiting for the object-forest refit to validate it.
        """
        params: Dict[str, object] = {
            name: getattr(self.surrogate, name) for name in _FOREST_PARAMS
        }
        meta = {
            "service_names": list(self.service_names),
            "surrogate_params": params,
        }
        arrays = {
            "features": self.features,
            "labels": self.labels,
            "antenna_ids": self.antenna_ids,
            "clusters": self.clusters,
            "centroids": self.centroids,
            "meta": np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            ),
        }
        if self.service_totals is not None:
            arrays["service_totals"] = self.service_totals
        arrays.update(self.compiled_forest().to_arrays())
        np.savez_compressed(Path(path), **arrays)

    @classmethod
    def load(cls, path) -> "FrozenProfile":
        """Load an artifact, refitting the deterministic surrogate.

        Archives written by this version carry the compiled forest's
        flat arrays; they are restored directly, so the batch kernel is
        exactly the one measured and committed at freeze time.  Older
        archives without ``compiled_*`` arrays still load — the compiled
        forest is then rebuilt lazily from the refitted surrogate.
        """
        with np.load(Path(path), allow_pickle=False) as archive:
            features = np.asarray(archive["features"], dtype=float)
            labels = np.asarray(archive["labels"], dtype=int)
            antenna_ids = np.asarray(archive["antenna_ids"], dtype=np.int64)
            clusters = np.asarray(archive["clusters"], dtype=int)
            centroids = np.asarray(archive["centroids"], dtype=float)
            service_totals = (
                np.asarray(archive["service_totals"], dtype=float)
                if "service_totals" in archive.files
                else None
            )
            compiled = (
                CompiledForest.from_arrays(archive)
                if "compiled_roots" in archive.files
                else None
            )
            meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
        params = dict(meta["surrogate_params"])
        # JSON round-trips "sqrt"/ints/None for max_features untouched.
        surrogate = RandomForestClassifier(**params)
        surrogate.fit(features, labels)
        return cls(
            features=features,
            labels=labels,
            antenna_ids=antenna_ids,
            clusters=clusters,
            centroids=centroids,
            service_names=tuple(meta["service_names"]),
            surrogate=surrogate,
            service_totals=service_totals,
            compiled=compiled,
        )


def freeze_profile(
    profile,
    antenna_ids: Optional[Sequence[int]] = None,
    service_totals: Optional[np.ndarray] = None,
) -> FrozenProfile:
    """Snapshot an :class:`~repro.core.pipeline.ICNProfile` for streaming.

    Args:
        profile: a fitted ICN profile.
        antenna_ids: ids of the profile's rows.  Defaults to
            ``0..N-1``, which matches profiles fitted on a
            :class:`~repro.datagen.dataset.TrafficDataset` (row order is
            antenna-id order there).
        service_totals: optional network-wide per-service traffic totals
            of the reference period (``dataset.totals.sum(axis=0)``);
            required later for raw-volume queries
            (:meth:`FrozenProfile.rsca_of_volumes`).

    Returns:
        the frozen artifact, sharing the profile's fitted surrogate.
    """
    features = np.asarray(profile.features, dtype=float)
    labels = np.asarray(profile.labels, dtype=int)
    if antenna_ids is None:
        ids = np.arange(features.shape[0], dtype=np.int64)
    else:
        ids = np.asarray(antenna_ids, dtype=np.int64)
    if ids.shape != (features.shape[0],):
        raise ValueError(
            f"antenna_ids must have shape ({features.shape[0]},), "
            f"got {ids.shape}"
        )
    totals = None
    if service_totals is not None:
        totals = np.asarray(service_totals, dtype=float)
        if totals.shape != (features.shape[1],):
            raise ValueError(
                f"service_totals must have shape ({features.shape[1]},), "
                f"got {totals.shape}"
            )
    clusters = np.unique(labels)
    centroids = np.vstack(
        [features[labels == c].mean(axis=0) for c in clusters]
    )
    return FrozenProfile(
        features=features,
        labels=labels,
        antenna_ids=ids,
        clusters=clusters,
        centroids=centroids,
        service_names=tuple(profile.service_names),
        surrogate=profile.surrogate,
        service_totals=totals,
    )
