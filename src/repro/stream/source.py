"""Stream sources: replay stored data as ordered per-hour batches.

Three sources cover the ingestion paths an operator has:

* :func:`replay_dataset` — replay a synthetic :class:`TrafficDataset`
  through its deterministic hourly synthesizer (the stand-in for a live
  measurement feed);
* :func:`replay_tensor` — replay an in-memory (antennas, services,
  hours) tensor, e.g. the output of ``repro.io.load_hourly_csv``;
* :func:`replay_hourly_csv` — stream a long-schema hourly CSV from disk
  in bounded memory via ``repro.io.iter_hourly_csv`` (one hour of rows
  resident at a time).

All sources yield :class:`~repro.stream.batch.HourlyBatch` objects in
strictly increasing hour order, which is the contract the accumulators
enforce.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.stream.batch import HourlyBatch


def replay_tensor(
    tensor: np.ndarray,
    hours: np.ndarray,
    antenna_ids: Sequence[int],
    service_names: Sequence[str],
) -> Iterator[HourlyBatch]:
    """Replay an (antennas, services, hours) tensor hour by hour.

    Args:
        tensor: 3-D non-negative traffic tensor.
        hours: the tensor's hour axis (``datetime64[h]``, strictly
            increasing).
        antenna_ids: ids matching the tensor's antenna axis.
        service_names: names matching the tensor's service axis.

    Yields:
        one :class:`HourlyBatch` per hour, in order.
    """
    cube = np.asarray(tensor, dtype=float)
    if cube.ndim != 3:
        raise ValueError(f"tensor must be 3-D, got shape {cube.shape}")
    stamps = np.asarray(hours, dtype="datetime64[h]")
    ids = np.asarray(antenna_ids, dtype=np.int64)
    names = tuple(str(s) for s in service_names)
    if cube.shape != (ids.size, len(names), stamps.size):
        raise ValueError(
            f"tensor shape {cube.shape} does not match {ids.size} antennas "
            f"x {len(names)} services x {stamps.size} hours"
        )
    if stamps.size > 1 and np.any(np.diff(stamps) <= np.timedelta64(0, "h")):
        raise ValueError("hours must be strictly increasing")
    for t in range(stamps.size):
        yield HourlyBatch(
            hour=stamps[t],
            antenna_ids=ids,
            traffic=cube[:, :, t],
            service_names=names,
        )


def replay_dataset(
    dataset,
    window: Optional[slice] = None,
    antenna_ids: Optional[Sequence[int]] = None,
    services: Optional[Sequence[str]] = None,
) -> Iterator[HourlyBatch]:
    """Replay a :class:`~repro.datagen.dataset.TrafficDataset` as batches.

    Synthesizes the per-service hourly series of the selected antennas
    over the selected window and yields them hour by hour — the exact
    feed a live measurement platform would have produced for this
    deployment.  Summed over the *full* calendar, the replayed batches
    reproduce the dataset's totals matrix.

    Args:
        dataset: the dataset to replay.
        window: slice over the calendar hour grid (default: all hours).
        antenna_ids: antenna subset (default: all antennas, row order).
        services: service subset in the given column order (default: the
            dataset's full catalog in catalog order).

    Yields:
        one :class:`HourlyBatch` per hour of the window.

    Note:
        the windowed (antennas, services, hours) tensor is materialized
        up front — re-synthesizing it per hour would repeat the full
        per-series RNG work every hour.  Memory-bounded ingestion from
        disk goes through :func:`replay_hourly_csv` instead.
    """
    names = (
        tuple(dataset.service_names) if services is None
        else tuple(str(s) for s in services)
    )
    ids = (
        np.array([a.antenna_id for a in dataset.antennas], dtype=np.int64)
        if antenna_ids is None
        else np.asarray(antenna_ids, dtype=np.int64)
    )
    window = window if window is not None else slice(0, dataset.calendar.n_hours)
    hours = dataset.calendar.hours[window]
    tensor = np.empty((ids.size, len(names), hours.size))
    for j, service in enumerate(names):
        tensor[:, j, :] = dataset.hourly_service(
            service, antenna_ids=ids, window=window
        )
    return replay_tensor(tensor, hours, ids, names)


def replay_hourly_csv(
    path, service_names: Sequence[str]
) -> Iterator[HourlyBatch]:
    """Stream a long-schema hourly CSV as batches, in bounded memory.

    Thin wrapper over :func:`repro.io.csvio.iter_hourly_csv`: the file is
    read sequentially and only one hour of rows is held in memory, so
    arbitrarily long traces ingest in O(antennas x services) space.

    Args:
        path: CSV path (``antenna_id,service,timestamp,traffic_mb``
            schema, rows grouped by timestamp, timestamps ascending).
        service_names: the column order batches should use; services in
            the file must all appear here.
    """
    from repro.io.csvio import iter_hourly_csv

    names = tuple(str(s) for s in service_names)
    for hour, ids, matrix in iter_hourly_csv(path, names):
        yield HourlyBatch(
            hour=hour, antenna_ids=ids, traffic=matrix, service_names=names
        )
