"""Two-state Markov model of hourly activity (related-work baseline).

The paper's related work (Section 2, citing Jin et al. [28]) characterizes
temporal data usage with a two-state Markov model — each hour an antenna
is *active* (traffic above a threshold) or *idle*, and the chain's
transition probabilities summarize its usage rhythm.  This module fits
that baseline on the generated data so the cluster-level temporal
characterization of Section 6 can be compared against the older
methodology: clusters discovered from RSCA also separate cleanly in
Markov-parameter space (duty cycle, persistence), but the Markov view
alone cannot tell apart clusters that differ in *which services* they use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.datagen.dataset import TrafficDataset
from repro.utils.checks import check_probability


@dataclass(frozen=True)
class MarkovUsageModel:
    """Fitted two-state (idle/active) hourly usage chain.

    Attributes:
        p_stay_active: P(active -> active).
        p_stay_idle: P(idle -> idle).
        duty_cycle: stationary probability of the active state.
    """

    p_stay_active: float
    p_stay_idle: float
    duty_cycle: float

    def __post_init__(self) -> None:
        check_probability(self.p_stay_active, "p_stay_active")
        check_probability(self.p_stay_idle, "p_stay_idle")
        check_probability(self.duty_cycle, "duty_cycle")

    @property
    def mean_active_run_hours(self) -> float:
        """Expected length of an active streak (geometric run length)."""
        leave = 1.0 - self.p_stay_active
        return 1.0 / leave if leave > 0 else float("inf")

    @property
    def mean_idle_run_hours(self) -> float:
        """Expected length of an idle streak."""
        leave = 1.0 - self.p_stay_idle
        return 1.0 / leave if leave > 0 else float("inf")


def activity_states(series, threshold_fraction: float = 0.2) -> np.ndarray:
    """Binarize an hourly series: active if above a fraction of its mean."""
    values = np.asarray(series, dtype=float)
    if values.ndim != 1 or values.size < 2:
        raise ValueError(
            f"series must be 1-D with >= 2 samples, got shape {values.shape}"
        )
    if not 0.0 < threshold_fraction < 10.0:
        raise ValueError(
            f"threshold_fraction must be in (0, 10), got {threshold_fraction}"
        )
    mean = values.mean()
    if mean == 0:
        return np.zeros(values.size, dtype=bool)
    return values > threshold_fraction * mean


def fit_markov(states) -> MarkovUsageModel:
    """Estimate the two-state chain from a boolean activity sequence.

    Transition probabilities use add-one smoothing so all-active or
    all-idle sequences stay well defined.
    """
    active = np.asarray(states, dtype=bool)
    if active.ndim != 1 or active.size < 2:
        raise ValueError(
            f"states must be 1-D with >= 2 samples, got shape {active.shape}"
        )
    current, following = active[:-1], active[1:]
    active_to_active = np.sum(current & following) + 1.0
    active_total = np.sum(current) + 2.0
    idle_to_idle = np.sum(~current & ~following) + 1.0
    idle_total = np.sum(~current) + 2.0
    p_aa = float(active_to_active / active_total)
    p_ii = float(idle_to_idle / idle_total)
    # Stationary distribution of the 2-state chain.
    leave_active = 1.0 - p_aa
    leave_idle = 1.0 - p_ii
    duty = leave_idle / (leave_idle + leave_active)
    return MarkovUsageModel(
        p_stay_active=p_aa, p_stay_idle=p_ii, duty_cycle=float(duty)
    )


def cluster_markov_models(
    dataset: TrafficDataset,
    labels: Sequence[int],
    threshold_fraction: float = 0.2,
    max_antennas: int = 30,
    random_state: int = 0,
) -> Dict[int, MarkovUsageModel]:
    """Fit one Markov usage model per cluster (on the mean member series)."""
    labels = np.asarray(labels, dtype=int)
    if labels.shape[0] != dataset.n_antennas:
        raise ValueError(
            f"labels length {labels.shape[0]} != {dataset.n_antennas}"
        )
    rng = np.random.default_rng(random_state)
    models: Dict[int, MarkovUsageModel] = {}
    for cluster in np.unique(labels):
        members = np.flatnonzero(labels == cluster)
        if members.size > max_antennas:
            members = rng.choice(members, size=max_antennas, replace=False)
        series = dataset.hourly_total(antenna_ids=members).mean(axis=0)
        models[int(cluster)] = fit_markov(
            activity_states(series, threshold_fraction)
        )
    return models
