"""Temporal analysis (paper Section 6, Figs. 10 and 11).

For each cluster, the paper plots the *normalized median* hourly traffic
across the cluster's antennas over the 04-24 January 2023 window — total
traffic for Fig. 10 and selected key services for Fig. 11.  This module
computes those day x hour heatmaps and exposes the pattern detectors the
reproduction benchmarks assert on: commute peaks, weekend/weekday ratios,
strike-day suppression, event burstiness, and nighttime shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.calendar import STRIKE_DAY
from repro.datagen.dataset import TrafficDataset
from repro.utils.checks import check_matrix


@dataclass
class TemporalHeatmap:
    """Day x hour heatmap of normalized median traffic for one cluster.

    Attributes:
        values: (n_days, 24) matrix, normalized so the peak cell is 1.
        dates: the n_days calendar dates (``datetime64[D]``).
        cluster: cluster id the heatmap describes.
        service: service name, or None for total traffic (Fig. 10).
    """

    values: np.ndarray
    dates: np.ndarray
    cluster: int
    service: Optional[str] = None

    def __post_init__(self) -> None:
        if self.values.ndim != 2 or self.values.shape[1] != 24:
            raise ValueError(
                f"heatmap values must be (n_days, 24), got {self.values.shape}"
            )
        if self.values.shape[0] != self.dates.shape[0]:
            raise ValueError("one date per heatmap row is required")

    # ------------------------------------------------------------------
    # Pattern detectors
    # ------------------------------------------------------------------

    def _weekday_mask(self) -> np.ndarray:
        days = self.dates.astype("datetime64[D]").view("int64")
        return ((days + 3) % 7) < 5

    def hour_profile(self, weekdays_only: bool = True) -> np.ndarray:
        """Mean normalized traffic per hour of day (length 24)."""
        mask = self._weekday_mask() if weekdays_only else np.ones(
            self.dates.size, dtype=bool
        )
        if not np.any(mask):
            raise ValueError("no days selected for the hour profile")
        return self.values[mask].mean(axis=0)

    def peak_hours(self, top: int = 4, weekdays_only: bool = True) -> List[int]:
        """The ``top`` busiest hours of day, descending."""
        profile = self.hour_profile(weekdays_only)
        return list(np.argsort(profile)[::-1][:top])

    def is_bimodal_commute(self) -> bool:
        """Whether the weekday profile peaks in both commute windows.

        The paper's commute windows are 7:30-9:30 and 17:30-19:30; we test
        that the top hours include one from {7, 8, 9} and one from
        {17, 18, 19}, and that mid-day traffic dips below both peaks.
        """
        profile = self.hour_profile(weekdays_only=True)
        morning = profile[7:10].max()
        evening = profile[17:20].max()
        midday = profile[11:15].mean()
        night = profile[1:5].mean()
        return (
            morning > 1.3 * midday
            and evening > 1.3 * midday
            and midday > night
        )

    def weekend_weekday_ratio(self) -> float:
        """Mean weekend traffic / mean weekday traffic."""
        weekday = self._weekday_mask()
        if not np.any(weekday) or not np.any(~weekday):
            raise ValueError("window lacks either weekdays or weekend days")
        return float(self.values[~weekday].mean() / self.values[weekday].mean())

    def day_total(self, date: np.datetime64) -> float:
        """Sum of normalized traffic over one date's 24 cells."""
        date = np.datetime64(date, "D")
        matches = np.flatnonzero(self.dates == date)
        if matches.size == 0:
            raise KeyError(f"{date} not in heatmap window")
        return float(self.values[matches[0]].sum())

    def strike_suppression(self) -> float:
        """Strike-day traffic relative to other weekdays (small = strike).

        Returns day-total(19 Jan) / mean day-total(other weekdays); values
        well below 1 reproduce the paper's "negligible traffic" strike-day
        observation for the commuter clusters.
        """
        weekday = self._weekday_mask()
        strike_rows = self.dates == STRIKE_DAY
        if not np.any(strike_rows):
            raise ValueError("strike day not inside heatmap window")
        others = weekday & ~strike_rows
        strike_total = self.values[strike_rows].sum(axis=1)[0]
        other_mean = self.values[others].sum(axis=1).mean()
        if other_mean == 0:
            raise ValueError("no traffic on comparison weekdays")
        return float(strike_total / other_mean)

    def burstiness(self) -> float:
        """Peak-cell to mean-cell ratio; event-driven venues score high."""
        mean = float(self.values.mean())
        if mean == 0:
            return 0.0
        return float(self.values.max() / mean)

    def night_share(self) -> float:
        """Share of traffic in the 22:00-06:00 hours (hotel/hospital tell)."""
        night_cols = list(range(22, 24)) + list(range(0, 6))
        total = self.values.sum()
        if total == 0:
            raise ValueError("heatmap is identically zero")
        return float(self.values[:, night_cols].sum() / total)

    def business_hours_share(self) -> float:
        """Share of weekday traffic inside 9:00-18:00 (office tell)."""
        weekday = self._weekday_mask()
        weekday_values = self.values[weekday]
        total = weekday_values.sum()
        if total == 0:
            raise ValueError("no weekday traffic in heatmap")
        return float(weekday_values[:, 9:18].sum() / total)


def _to_heatmap(
    hourly: np.ndarray,
    hours: np.ndarray,
    cluster: int,
    service: Optional[str],
) -> TemporalHeatmap:
    """Median across antennas -> normalize -> reshape to days x 24."""
    if hourly.ndim != 2:
        raise ValueError(f"hourly must be (antennas, hours), got {hourly.shape}")
    median = np.median(hourly, axis=0)
    peak = median.max()
    if peak > 0:
        median = median / peak
    dates = hours.astype("datetime64[D]")
    unique_dates = np.unique(dates)
    hour_of_day = ((hours - dates) / np.timedelta64(1, "h")).astype(int)
    values = np.zeros((unique_dates.size, 24))
    counts = np.zeros((unique_dates.size, 24))
    row_index = np.searchsorted(unique_dates, dates)
    values[row_index, hour_of_day] = median
    counts[row_index, hour_of_day] = 1
    if not np.all(counts[1:-1] == 1):
        # Interior days must be complete; ragged first/last day is allowed.
        full_rows = counts.sum(axis=1)
        bad = np.flatnonzero((full_rows != 24))
        interior_bad = [b for b in bad if 0 < b < unique_dates.size - 1]
        if interior_bad:
            raise ValueError(
                f"incomplete interior days at rows {interior_bad}"
            )
    return TemporalHeatmap(
        values=values, dates=unique_dates, cluster=cluster, service=service
    )


def cluster_temporal_heatmap(
    dataset: TrafficDataset,
    labels: Sequence[int],
    cluster: int,
    window: Optional[slice] = None,
    max_antennas: Optional[int] = 400,
    random_state: int = 0,
) -> TemporalHeatmap:
    """Fig. 10 panel: normalized median total traffic of one cluster.

    Args:
        dataset: the generated dataset.
        labels: cluster label per antenna (dataset row order).
        cluster: which cluster to render.
        window: calendar slice (defaults to the paper's 04-24 Jan window).
        max_antennas: cap on sampled member antennas (median is stable well
            below full membership; None = all members).
        random_state: sampling seed.
    """
    labels = np.asarray(labels, dtype=int)
    if labels.shape[0] != dataset.n_antennas:
        raise ValueError(
            f"labels length {labels.shape[0]} != {dataset.n_antennas} antennas"
        )
    members = np.flatnonzero(labels == cluster)
    if members.size == 0:
        raise ValueError(f"cluster {cluster} has no member antennas")
    if max_antennas is not None and members.size > max_antennas:
        rng = np.random.default_rng(random_state)
        members = rng.choice(members, size=max_antennas, replace=False)
    window = window if window is not None else dataset.temporal_window()
    hourly = dataset.hourly_total(antenna_ids=members, window=window)
    hours = dataset.calendar.hours[window]
    return _to_heatmap(hourly, hours, cluster, None)


def service_temporal_heatmap(
    dataset: TrafficDataset,
    labels: Sequence[int],
    cluster: int,
    service: str,
    window: Optional[slice] = None,
    max_antennas: Optional[int] = 400,
    random_state: int = 0,
) -> TemporalHeatmap:
    """Fig. 11 panel: normalized median traffic of one service, one cluster."""
    labels = np.asarray(labels, dtype=int)
    if labels.shape[0] != dataset.n_antennas:
        raise ValueError(
            f"labels length {labels.shape[0]} != {dataset.n_antennas} antennas"
        )
    members = np.flatnonzero(labels == cluster)
    if members.size == 0:
        raise ValueError(f"cluster {cluster} has no member antennas")
    if max_antennas is not None and members.size > max_antennas:
        rng = np.random.default_rng(random_state)
        members = rng.choice(members, size=max_antennas, replace=False)
    window = window if window is not None else dataset.temporal_window()
    hourly = dataset.hourly_service(service, antenna_ids=members, window=window)
    hours = dataset.calendar.hours[window]
    return _to_heatmap(hourly, hours, cluster, service)


def group_heatmaps(
    dataset: TrafficDataset,
    labels: Sequence[int],
    clusters: Sequence[int],
    service: Optional[str] = None,
    window: Optional[slice] = None,
    max_antennas: Optional[int] = 400,
) -> Dict[int, TemporalHeatmap]:
    """Heatmaps for several clusters (one dendrogram group's row of panels)."""
    out: Dict[int, TemporalHeatmap] = {}
    for cluster in clusters:
        if service is None:
            out[int(cluster)] = cluster_temporal_heatmap(
                dataset, labels, int(cluster), window, max_antennas
            )
        else:
            out[int(cluster)] = service_temporal_heatmap(
                dataset, labels, int(cluster), service, window, max_antennas
            )
    return out
