"""Downlink/uplink composition of the cluster demands.

The paper's traces are DL+UL aggregates, but its narratives have a
directional subtext: stadium crowds *upload* (Snapchat/Twitter photo
sharing, "via which one can upload photos and information relevant to
sports events") while streaming-heavy environments *download*.  The
generator carries per-service downlink fractions, so the uplink share of
each cluster's demand is computable and the directional story testable.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.datagen.services import ServiceCatalog
from repro.utils.checks import check_matrix


def uplink_share_per_cluster(
    totals: np.ndarray,
    labels: Sequence[int],
    catalog: ServiceCatalog,
) -> Dict[int, float]:
    """Fraction of each cluster's traffic on the uplink."""
    matrix = check_matrix(totals, "totals", non_negative=True)
    labels = np.asarray(labels, dtype=int)
    if labels.shape[0] != matrix.shape[0]:
        raise ValueError(
            f"labels length {labels.shape[0]} != rows {matrix.shape[0]}"
        )
    if matrix.shape[1] != len(catalog):
        raise ValueError(
            f"totals has {matrix.shape[1]} services, catalog has {len(catalog)}"
        )
    uplink_fraction = np.array(
        [1.0 - svc.downlink_fraction for svc in catalog]
    )
    shares: Dict[int, float] = {}
    for cluster in np.unique(labels):
        cluster_totals = matrix[labels == cluster].sum(axis=0)
        total = cluster_totals.sum()
        shares[int(cluster)] = float(
            (cluster_totals * uplink_fraction).sum() / total
        )
    return shares


def most_uplink_heavy_services(
    totals: np.ndarray,
    labels: Sequence[int],
    cluster: int,
    catalog: ServiceCatalog,
    top: int = 5,
) -> Dict[str, float]:
    """The services carrying the most uplink traffic in one cluster."""
    matrix = check_matrix(totals, "totals", non_negative=True)
    labels = np.asarray(labels, dtype=int)
    members = labels == cluster
    if not np.any(members):
        raise ValueError(f"cluster {cluster} has no member antennas")
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    uplink_fraction = np.array(
        [1.0 - svc.downlink_fraction for svc in catalog]
    )
    uplink_volume = matrix[members].sum(axis=0) * uplink_fraction
    order = np.argsort(uplink_volume)[::-1][:top]
    total = uplink_volume.sum()
    return {
        catalog.names[j]: float(uplink_volume[j] / total) for j in order
    }
