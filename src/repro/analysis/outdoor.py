"""Indoor/outdoor comparison (paper Section 5.3, Fig. 9).

Outdoor antennas near the ICN sites are transformed with the outdoor RCA
of Eq. 5 — their service shares measured against the *indoor* aggregate
mix — then classified with the surrogate random forest trained on the
indoor clustering.  The paper finds ~70% of outdoor antennas in the
general-use cluster 1, with the specialized indoor clusters nearly absent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.rca import outdoor_rsca
from repro.ml.forest import RandomForestClassifier
from repro.utils.checks import check_matrix


@dataclass
class OutdoorComparison:
    """Classification of outdoor antennas into the indoor clusters."""

    labels: np.ndarray  # predicted cluster per outdoor antenna
    distribution: Dict[int, float]  # cluster -> fraction of outdoor antennas

    def fraction_of(self, cluster: int) -> float:
        """Fraction of outdoor antennas assigned to one cluster."""
        return self.distribution.get(int(cluster), 0.0)

    def dominant_cluster(self) -> int:
        """The cluster that absorbs the most outdoor antennas."""
        return max(self.distribution, key=self.distribution.get)

    def fraction_in(self, clusters: Sequence[int]) -> float:
        """Combined fraction across a set of clusters (e.g. a group)."""
        return float(sum(self.fraction_of(c) for c in clusters))


def classify_outdoor(
    surrogate: RandomForestClassifier,
    outdoor_totals: np.ndarray,
    indoor_totals: np.ndarray,
    all_clusters: Optional[Sequence[int]] = None,
) -> OutdoorComparison:
    """Classify outdoor antennas via Eq. 5 RSCA + the indoor surrogate.

    Args:
        surrogate: random forest trained on the indoor RSCA -> cluster task.
        outdoor_totals: K x M outdoor totals matrix.
        indoor_totals: N x M indoor totals matrix (the Eq. 5 reference).
        all_clusters: full cluster id set for the distribution (defaults to
            the surrogate's classes), so absent clusters report 0.

    Returns:
        an :class:`OutdoorComparison` with per-cluster outdoor fractions
        (the bars of Fig. 9).
    """
    outdoor = check_matrix(outdoor_totals, "outdoor_totals", non_negative=True)
    indoor = check_matrix(indoor_totals, "indoor_totals", non_negative=True)
    features = outdoor_rsca(outdoor, indoor)
    labels = surrogate.predict(features).astype(int)
    clusters = (
        [int(c) for c in surrogate.classes_]
        if all_clusters is None
        else [int(c) for c in all_clusters]
    )
    distribution = {
        cluster: float(np.mean(labels == cluster)) for cluster in clusters
    }
    return OutdoorComparison(labels=labels, distribution=distribution)
