"""Longitudinal profile comparison (demand drift).

The paper's roadmap (Section 7) anticipates that new application families
will create *additional clusters* over time, requiring re-profiling.
This module compares two fitted partitions of the same antennas — e.g.
the two halves of the study period, or this quarter vs last quarter —
and reports:

* the optimal cluster correspondence (Hungarian matching on centroid
  distances),
* per-cluster *service-mix drift* (how far each matched cluster's mean
  RSCA moved, and which services moved most),
* *unmatched* clusters on either side — the "emerging" or "vanished"
  demand profiles the paper warns about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.assignment import hungarian
from repro.utils.checks import check_matrix


@dataclass(frozen=True)
class ClusterMatch:
    """One matched cluster pair across the two periods."""

    cluster_a: int
    cluster_b: int
    centroid_distance: float
    membership_overlap: float  # Jaccard of the two member sets
    top_drifting_services: Tuple[Tuple[str, float], ...]


@dataclass
class DriftReport:
    """Full comparison of two partitions of the same antennas."""

    matches: List[ClusterMatch]
    emerging: List[int]  # clusters of B with no counterpart in A
    vanished: List[int]  # clusters of A with no counterpart in B
    mean_centroid_drift: float

    def match_for(self, cluster_a: int) -> Optional[ClusterMatch]:
        """The match of one period-A cluster, or None if it vanished."""
        for match in self.matches:
            if match.cluster_a == cluster_a:
                return match
        return None

    def summary(self) -> str:
        """Human-readable drift summary."""
        lines = [
            f"{len(self.matches)} matched clusters, "
            f"{len(self.emerging)} emerging, {len(self.vanished)} vanished; "
            f"mean centroid drift {self.mean_centroid_drift:.3f}"
        ]
        for match in self.matches:
            services = ", ".join(
                f"{name} ({delta:+.2f})"
                for name, delta in match.top_drifting_services[:3]
            )
            lines.append(
                f"  A:{match.cluster_a} <-> B:{match.cluster_b} "
                f"distance {match.centroid_distance:.3f}, "
                f"overlap {match.membership_overlap:.0%}"
                + (f"; drifted: {services}" if services else "")
            )
        if self.emerging:
            lines.append(f"  emerging in B: {self.emerging}")
        if self.vanished:
            lines.append(f"  vanished from A: {self.vanished}")
        return "\n".join(lines)


def compare_partitions(
    features_a: np.ndarray,
    labels_a: Sequence[int],
    features_b: np.ndarray,
    labels_b: Sequence[int],
    service_names: Sequence[str],
    match_threshold: float = 1.5,
    top_services: int = 5,
) -> DriftReport:
    """Compare two clusterings of the same antenna population.

    Args:
        features_a / features_b: RSCA matrices of the two periods (same
            rows: the same antennas, same columns: the same services).
        labels_a / labels_b: the two partitions.
        service_names: feature names (drift attribution).
        match_threshold: centroid distance above which a best-match pair
            is *not* considered the same profile (emerging/vanished).
        top_services: drifting services reported per matched pair.

    Returns:
        a :class:`DriftReport`.
    """
    xa = check_matrix(features_a, "features_a")
    xb = check_matrix(features_b, "features_b")
    if xa.shape != xb.shape:
        raise ValueError(
            f"period features must share a shape, got {xa.shape} vs {xb.shape}"
        )
    if len(service_names) != xa.shape[1]:
        raise ValueError(
            f"{len(service_names)} service names for {xa.shape[1]} features"
        )
    la = np.asarray(labels_a, dtype=int)
    lb = np.asarray(labels_b, dtype=int)
    if la.shape[0] != xa.shape[0] or lb.shape[0] != xb.shape[0]:
        raise ValueError("one label per row is required for both periods")
    if match_threshold <= 0:
        raise ValueError(f"match_threshold must be positive, got {match_threshold}")

    clusters_a = sorted(int(c) for c in np.unique(la))
    clusters_b = sorted(int(c) for c in np.unique(lb))
    centroids_a = np.vstack([xa[la == c].mean(axis=0) for c in clusters_a])
    centroids_b = np.vstack([xb[lb == c].mean(axis=0) for c in clusters_b])
    cost = np.linalg.norm(
        centroids_a[:, None, :] - centroids_b[None, :, :], axis=2
    )
    rows, cols = hungarian(cost)

    matches: List[ClusterMatch] = []
    matched_a, matched_b = set(), set()
    for r, c in zip(rows, cols):
        distance = float(cost[r, c])
        if distance > match_threshold:
            continue
        cluster_a, cluster_b = clusters_a[r], clusters_b[c]
        members_a = set(np.flatnonzero(la == cluster_a).tolist())
        members_b = set(np.flatnonzero(lb == cluster_b).tolist())
        union = len(members_a | members_b)
        overlap = len(members_a & members_b) / union if union else 0.0
        delta = centroids_b[c] - centroids_a[r]
        order = np.argsort(np.abs(delta))[::-1][:top_services]
        drifting = tuple(
            (service_names[j], float(delta[j])) for j in order
        )
        matches.append(
            ClusterMatch(
                cluster_a=cluster_a,
                cluster_b=cluster_b,
                centroid_distance=distance,
                membership_overlap=overlap,
                top_drifting_services=drifting,
            )
        )
        matched_a.add(cluster_a)
        matched_b.add(cluster_b)

    emerging = [c for c in clusters_b if c not in matched_b]
    vanished = [c for c in clusters_a if c not in matched_a]
    mean_drift = (
        float(np.mean([m.centroid_distance for m in matches]))
        if matches else float("inf")
    )
    return DriftReport(
        matches=matches,
        emerging=emerging,
        vanished=vanished,
        mean_centroid_drift=mean_drift,
    )
