"""Spatial analysis: city and surrounding breakdowns of the clusters.

Section 5.2.2 of the paper interleaves the environment analysis with
geography: clusters 0/4 are >92% Parisian, cluster 7 is exclusively
non-capital, cluster 2 sits ~92% outside Paris, cluster 3 ~70% in Paris,
cluster 6 holds the provincial stadiums while ~60% of cluster 8 is in
Paris.  This module computes those per-cluster city mixes, the
urban/suburban/rural composition (Section 3 notes the deployments span
all three), and per-city cluster inventories for regional planning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.datagen.antennas import Antenna
from repro.datagen.environments import Surrounding


@dataclass
class SpatialBreakdown:
    """City/surrounding composition of every cluster."""

    clusters: List[int]
    city_shares: Dict[int, Dict[str, float]]  # cluster -> city -> share
    surrounding_shares: Dict[int, Dict[Surrounding, float]]
    paris_shares: Dict[int, float]

    def top_city(self, cluster: int) -> Tuple[str, float]:
        """The city holding the largest share of a cluster."""
        shares = self.city_shares.get(cluster)
        if not shares:
            raise KeyError(f"unknown cluster {cluster}")
        city = max(shares, key=shares.get)
        return city, shares[city]

    def is_capital_cluster(self, cluster: int, threshold: float = 0.7) -> bool:
        """Whether the cluster is predominantly Parisian."""
        if cluster not in self.paris_shares:
            raise KeyError(f"unknown cluster {cluster}")
        return self.paris_shares[cluster] >= threshold

    def non_capital_clusters(self, threshold: float = 0.2) -> List[int]:
        """Clusters whose Paris share stays below ``threshold``."""
        return [
            c for c in self.clusters if self.paris_shares[c] < threshold
        ]


def spatial_breakdown(
    antennas: Sequence[Antenna], labels: Sequence[int]
) -> SpatialBreakdown:
    """Compute per-cluster city / surrounding / Paris compositions."""
    labels = np.asarray(labels, dtype=int)
    if labels.shape[0] != len(antennas):
        raise ValueError(
            f"labels length {labels.shape[0]} != {len(antennas)} antennas"
        )
    clusters = sorted(int(c) for c in np.unique(labels))
    city_shares: Dict[int, Dict[str, float]] = {}
    surrounding_shares: Dict[int, Dict[Surrounding, float]] = {}
    paris_shares: Dict[int, float] = {}
    for cluster in clusters:
        members = [a for a, l in zip(antennas, labels) if l == cluster]
        total = len(members)
        cities: Dict[str, int] = {}
        surroundings: Dict[Surrounding, int] = {}
        paris = 0
        for antenna in members:
            cities[antenna.city] = cities.get(antenna.city, 0) + 1
            surroundings[antenna.surrounding] = (
                surroundings.get(antenna.surrounding, 0) + 1
            )
            paris += int(antenna.is_paris)
        city_shares[cluster] = {c: n / total for c, n in cities.items()}
        surrounding_shares[cluster] = {
            s: n / total for s, n in surroundings.items()
        }
        paris_shares[cluster] = paris / total
    return SpatialBreakdown(
        clusters=clusters,
        city_shares=city_shares,
        surrounding_shares=surrounding_shares,
        paris_shares=paris_shares,
    )


def city_cluster_inventory(
    antennas: Sequence[Antenna], labels: Sequence[int]
) -> Dict[str, Dict[int, int]]:
    """Per-city antenna counts by cluster (regional planning view)."""
    labels = np.asarray(labels, dtype=int)
    if labels.shape[0] != len(antennas):
        raise ValueError(
            f"labels length {labels.shape[0]} != {len(antennas)} antennas"
        )
    inventory: Dict[str, Dict[int, int]] = {}
    for antenna, label in zip(antennas, labels):
        by_cluster = inventory.setdefault(antenna.city, {})
        by_cluster[int(label)] = by_cluster.get(int(label), 0) + 1
    return inventory


def paper_geography_checks(
    breakdown: SpatialBreakdown, commuter_threshold: float = 0.85
) -> Dict[str, bool]:
    """Evaluate the paper's Section 5.2.2 geography statements.

    Returns a named dict of booleans, one per claim (with the cluster ids
    aligned to the paper numbering):

    * ``paris_commuters``: clusters 0 and 4 are predominantly Parisian
      (paper: >92%).
    * ``provincial_metro``: cluster 7 has no Parisian antennas.
    * ``provincial_retail``: cluster 2 is predominantly outside Paris
      (paper: ~92% outside).
    * ``paris_offices``: cluster 3 is mostly Parisian (paper: ~70%).
    * ``stadium_split``: cluster 6 is non-capital while cluster 8 is
      majority-Paris (paper: ~60%).
    """
    shares = breakdown.paris_shares
    required = {0, 2, 3, 4, 6, 7, 8}
    missing = required - set(shares)
    if missing:
        raise ValueError(f"breakdown lacks clusters {sorted(missing)}")
    return {
        "paris_commuters": (
            shares[0] > commuter_threshold and shares[4] > commuter_threshold
        ),
        "provincial_metro": shares[7] < 0.02,
        "provincial_retail": shares[2] < 0.3,
        "paris_offices": shares[3] > 0.55,
        "stadium_split": shares[6] < 0.2 and shares[8] > 0.5,
    }
