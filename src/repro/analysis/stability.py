"""Stability analysis of the clustering (bootstrap and temporal).

The paper's profiles are one two-month snapshot; before acting on them an
operator should know how *stable* they are.  Two instruments:

* :func:`bootstrap_stability` — resample antennas with replacement,
  recluster, and measure how consistently co-clustered pairs stay
  together (pairwise co-assignment agreement and per-replicate ARI
  against the reference partition).
* :func:`temporal_stability` — split the study period into windows,
  recompute RSCA per window, recluster, and compare partitions across
  windows; high agreement means the profiles are a property of the
  deployment, not of the particular weeks measured (the premise behind
  the paper's planning recommendations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cluster import AgglomerativeClustering
from repro.core.compare import adjusted_rand_index
from repro.core.rca import rsca
from repro.datagen.dataset import TrafficDataset
from repro.utils.checks import check_matrix


@dataclass
class StabilityResult:
    """Outcome of a bootstrap stability run."""

    replicate_ari: np.ndarray  # ARI of each replicate vs the reference
    per_cluster_stability: dict  # cluster -> co-assignment persistence

    @property
    def mean_ari(self) -> float:
        """Mean agreement of bootstrap partitions with the reference."""
        return float(self.replicate_ari.mean())

    def least_stable_cluster(self) -> int:
        """The cluster whose members most often drift apart."""
        return min(self.per_cluster_stability,
                   key=self.per_cluster_stability.get)


def bootstrap_stability(
    features: np.ndarray,
    reference_labels: Sequence[int],
    n_replicates: int = 10,
    n_clusters: Optional[int] = None,
    sample_fraction: float = 0.8,
    random_state: int = 0,
) -> StabilityResult:
    """Resample-and-recluster stability of a partition.

    Each replicate draws a subsample (without replacement, so ARI against
    the reference restriction is well defined), reclusters it, and scores
    agreement.  Per-cluster stability is the fraction of same-cluster
    pairs (in the reference) that stay together in the replicates.

    Args:
        features: the RSCA matrix used for the reference clustering.
        reference_labels: the reference partition.
        n_replicates: bootstrap repetitions.
        n_clusters: cluster count per replicate (defaults to the
            reference's).
        sample_fraction: subsample size as a fraction of N.
        random_state: sampling seed.
    """
    x = check_matrix(features, "features")
    reference = np.asarray(reference_labels, dtype=int)
    if reference.shape[0] != x.shape[0]:
        raise ValueError(
            f"labels length {reference.shape[0]} != rows {x.shape[0]}"
        )
    if not 0.0 < sample_fraction <= 1.0:
        raise ValueError(
            f"sample_fraction must be in (0, 1], got {sample_fraction}"
        )
    if n_replicates < 2:
        raise ValueError(f"n_replicates must be >= 2, got {n_replicates}")
    k = int(np.unique(reference).size if n_clusters is None else n_clusters)
    rng = np.random.default_rng(random_state)
    n = x.shape[0]
    size = max(k + 1, int(round(sample_fraction * n)))

    replicate_ari = np.empty(n_replicates)
    together_counts = {int(c): 0 for c in np.unique(reference)}
    pair_counts = {int(c): 0 for c in np.unique(reference)}
    for r in range(n_replicates):
        idx = rng.choice(n, size=size, replace=False)
        labels = AgglomerativeClustering(n_clusters=k).fit_predict(x[idx])
        replicate_ari[r] = adjusted_rand_index(labels, reference[idx])
        # Pair persistence per reference cluster (sampled pairs).
        for cluster in together_counts:
            members = np.flatnonzero(reference[idx] == cluster)
            if members.size < 2:
                continue
            pairs = min(200, members.size * (members.size - 1) // 2)
            a = rng.choice(members, size=pairs)
            b = rng.choice(members, size=pairs)
            valid = a != b
            together_counts[cluster] += int(
                np.sum(labels[a[valid]] == labels[b[valid]])
            )
            pair_counts[cluster] += int(valid.sum())
    per_cluster = {
        cluster: (together_counts[cluster] / pair_counts[cluster]
                  if pair_counts[cluster] else 0.0)
        for cluster in together_counts
    }
    return StabilityResult(
        replicate_ari=replicate_ari, per_cluster_stability=per_cluster
    )


def temporal_stability(
    dataset: TrafficDataset,
    n_windows: int = 2,
    n_clusters: int = 9,
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Cluster each time window independently and compare partitions.

    Splits the study calendar into ``n_windows`` equal spans, computes
    per-window totals analytically, reclusters each window's RSCA, and
    returns the matrix of pairwise ARIs plus the per-window labels.
    """
    if n_windows < 2:
        raise ValueError(f"n_windows must be >= 2, got {n_windows}")
    n_hours = dataset.calendar.n_hours
    edges = np.linspace(0, n_hours, n_windows + 1).astype(int)
    labelings: List[np.ndarray] = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        window_totals = dataset.model.window_totals(slice(int(lo), int(hi)))
        features = rsca(window_totals)
        labelings.append(
            AgglomerativeClustering(n_clusters=n_clusters).fit_predict(
                features
            )
        )
    agreement = np.eye(n_windows)
    for a in range(n_windows):
        for b in range(a + 1, n_windows):
            value = adjusted_rand_index(labelings[a], labelings[b])
            agreement[a, b] = agreement[b, a] = value
    return agreement, labelings
