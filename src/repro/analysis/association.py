"""Statistical strength of the cluster <-> environment association.

The paper argues qualitatively (Figs. 6-8) that clusters and indoor
environments are strongly linked.  This module quantifies that link:
Pearson's chi-square statistic over the contingency table, Cramér's V as
a bounded effect size, and a permutation test for the p-value (exact
chi-square reference distributions are unnecessary — and unavailable
without scipy — when permutations are cheap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class AssociationResult:
    """Chi-square association between two categorical labelings."""

    chi_square: float
    cramers_v: float
    p_value: float
    n_permutations: int

    def __post_init__(self) -> None:
        if self.chi_square < 0:
            raise ValueError("chi_square must be non-negative")
        if not 0.0 <= self.cramers_v <= 1.0 + 1e-9:
            raise ValueError(f"cramers_v out of range: {self.cramers_v}")
        if not 0.0 <= self.p_value <= 1.0:
            raise ValueError(f"p_value out of range: {self.p_value}")


def _contingency_codes(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    a_labels, a_codes = np.unique(a, return_inverse=True)
    b_labels, b_codes = np.unique(b, return_inverse=True)
    table = np.zeros((a_labels.size, b_labels.size))
    np.add.at(table, (a_codes, b_codes), 1.0)
    return table


def chi_square_statistic(table: np.ndarray) -> float:
    """Pearson chi-square of a contingency table."""
    counts = np.asarray(table, dtype=float)
    if counts.ndim != 2 or counts.size == 0:
        raise ValueError(f"table must be a non-empty matrix, got {counts.shape}")
    if np.any(counts < 0):
        raise ValueError("table counts must be non-negative")
    total = counts.sum()
    if total == 0:
        raise ValueError("table is empty")
    expected = np.outer(counts.sum(axis=1), counts.sum(axis=0)) / total
    mask = expected > 0
    return float((((counts - expected) ** 2)[mask] / expected[mask]).sum())


def cramers_v(table: np.ndarray) -> float:
    """Cramér's V effect size in [0, 1] (1 = perfect association)."""
    counts = np.asarray(table, dtype=float)
    chi2 = chi_square_statistic(counts)
    n = counts.sum()
    r, c = counts.shape
    k = min(r - 1, c - 1)
    if k == 0:
        return 0.0
    return float(np.sqrt(chi2 / (n * k)))


def association_test(
    labels_a: Sequence,
    labels_b: Sequence,
    n_permutations: int = 500,
    random_state: int = 0,
) -> AssociationResult:
    """Permutation test of independence between two labelings.

    The null distribution of the chi-square statistic is estimated by
    shuffling one labeling; the p-value is the (add-one-smoothed) fraction
    of permuted statistics at least as large as the observed one.
    """
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.ndim != 1 or a.shape != b.shape:
        raise ValueError(
            f"labelings must be 1-D and equal length, got {a.shape} "
            f"and {b.shape}"
        )
    if a.size < 2:
        raise ValueError("at least two samples are required")
    if n_permutations < 1:
        raise ValueError(
            f"n_permutations must be >= 1, got {n_permutations}"
        )
    observed_table = _contingency_codes(a, b)
    observed = chi_square_statistic(observed_table)
    v = cramers_v(observed_table)
    rng = np.random.default_rng(random_state)
    shuffled = a.copy()
    exceed = 0
    for _ in range(n_permutations):
        rng.shuffle(shuffled)
        stat = chi_square_statistic(_contingency_codes(shuffled, b))
        if stat >= observed:
            exceed += 1
    p_value = (exceed + 1) / (n_permutations + 1)
    return AssociationResult(
        chi_square=observed,
        cramers_v=v,
        p_value=float(p_value),
        n_permutations=n_permutations,
    )
