"""Interpretation analyses: environments, outdoor comparison, temporal."""

from repro.analysis.environment import (
    ContingencyTable,
    contingency,
    environment_table,
    extract_environment,
    paris_share,
)
from repro.analysis.outdoor import OutdoorComparison, classify_outdoor
from repro.analysis.association import (
    AssociationResult,
    association_test,
    chi_square_statistic,
    cramers_v,
)
from repro.analysis.drift import ClusterMatch, DriftReport, compare_partitions
from repro.analysis.markov import (
    MarkovUsageModel,
    activity_states,
    cluster_markov_models,
    fit_markov,
)
from repro.analysis.report import profile_report
from repro.analysis.stability import (
    StabilityResult,
    bootstrap_stability,
    temporal_stability,
)
from repro.analysis.spatial import (
    SpatialBreakdown,
    city_cluster_inventory,
    paper_geography_checks,
    spatial_breakdown,
)
from repro.analysis.updown import (
    most_uplink_heavy_services,
    uplink_share_per_cluster,
)
from repro.analysis.temporal import (
    TemporalHeatmap,
    cluster_temporal_heatmap,
    group_heatmaps,
    service_temporal_heatmap,
)

__all__ = [
    "ContingencyTable",
    "contingency",
    "environment_table",
    "extract_environment",
    "paris_share",
    "OutdoorComparison",
    "classify_outdoor",
    "profile_report",
    "MarkovUsageModel",
    "activity_states",
    "fit_markov",
    "cluster_markov_models",
    "AssociationResult",
    "association_test",
    "chi_square_statistic",
    "cramers_v",
    "ClusterMatch",
    "DriftReport",
    "compare_partitions",
    "StabilityResult",
    "bootstrap_stability",
    "temporal_stability",
    "SpatialBreakdown",
    "spatial_breakdown",
    "city_cluster_inventory",
    "paper_geography_checks",
    "uplink_share_per_cluster",
    "most_uplink_heavy_services",
    "TemporalHeatmap",
    "cluster_temporal_heatmap",
    "service_temporal_heatmap",
    "group_heatmaps",
]
