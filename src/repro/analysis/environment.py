"""Indoor-environment analysis (paper Section 5.2, Table 1, Figs. 6-8).

The paper identifies environment types "by inspecting the names of the
antennas, applying simple string manipulation to extract keywords", and
then cross-tabulates clusters against environments.  This module
implements the keyword extractor over the generated BS names and the
cluster <-> environment contingency views behind the Sankey diagram
(Fig. 6), the per-cluster composition (Fig. 7), and the per-environment
distribution (Fig. 8).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.environments import EnvironmentType, NAME_KEYWORDS

#: Keyword -> environment lookup, longest keywords first so compound
#: tokens ("CAMPUS-ENTREPRISE") win over any embedded shorter ones.
_KEYWORD_TO_ENV: List[Tuple[str, EnvironmentType]] = sorted(
    (
        (keyword, env)
        for env, keywords in NAME_KEYWORDS.items()
        for keyword in keywords
    ),
    key=lambda pair: len(pair[0]),
    reverse=True,
)


def extract_environment(name: str) -> Optional[EnvironmentType]:
    """Infer the environment type from a BS name, or None if no keyword.

    Matching is case-insensitive on hyphen/space-delimited tokens; compound
    keywords match as substrings of the hyphenated name.

    >>> extract_environment("PARIS-METRO-0007-ANT02")
    <EnvironmentType.METRO: 'metro'>
    >>> extract_environment("LYON-STADE-0001-ANT01")
    <EnvironmentType.STADIUM: 'stadium'>
    >>> extract_environment("UNKNOWN-SITE") is None
    True
    """
    if not name:
        return None
    upper = name.upper()
    tokens = set(re.split(r"[-_\s/]+", upper))
    for keyword, env in _KEYWORD_TO_ENV:
        if "-" in keyword:
            if keyword in upper:
                return env
        elif keyword in tokens:
            return env
    return None


def environment_table(names: Sequence[str]) -> Dict[EnvironmentType, int]:
    """Reproduce Table 1: antenna counts per recognized environment type."""
    counts: Dict[EnvironmentType, int] = {env: 0 for env in EnvironmentType}
    for name in names:
        env = extract_environment(name)
        if env is not None:
            counts[env] += 1
    return counts


@dataclass
class ContingencyTable:
    """Cluster x environment cross-tabulation with normalized views."""

    counts: np.ndarray  # (n_clusters, n_envs)
    clusters: List[int]
    environments: List[EnvironmentType]

    def __post_init__(self) -> None:
        expected = (len(self.clusters), len(self.environments))
        if self.counts.shape != expected:
            raise ValueError(
                f"counts shape {self.counts.shape} != {expected}"
            )

    def _cluster_row(self, cluster: int) -> int:
        try:
            return self.clusters.index(cluster)
        except ValueError:
            raise KeyError(f"unknown cluster {cluster}; have {self.clusters}") from None

    def _env_col(self, env: EnvironmentType) -> int:
        try:
            return self.environments.index(env)
        except ValueError:
            raise KeyError(f"unknown environment {env}") from None

    def cluster_composition(self) -> np.ndarray:
        """Row-normalized: which environments make up each cluster (Fig. 7)."""
        totals = self.counts.sum(axis=1, keepdims=True).astype(float)
        with np.errstate(invalid="ignore"):
            out = np.where(totals > 0, self.counts / totals, 0.0)
        return out

    def environment_distribution(self) -> np.ndarray:
        """Column-normalized: how each environment spreads over clusters
        (Fig. 8)."""
        totals = self.counts.sum(axis=0, keepdims=True).astype(float)
        with np.errstate(invalid="ignore"):
            out = np.where(totals > 0, self.counts / totals, 0.0)
        return out

    def composition_of(self, cluster: int) -> Dict[EnvironmentType, float]:
        """Environment shares inside one cluster."""
        row = self.cluster_composition()[self._cluster_row(cluster)]
        return {env: float(row[j]) for j, env in enumerate(self.environments)}

    def distribution_of(self, env: EnvironmentType) -> Dict[int, float]:
        """Cluster shares of one environment type."""
        col = self.environment_distribution()[:, self._env_col(env)]
        return {cluster: float(col[i]) for i, cluster in enumerate(self.clusters)}

    def sankey_flows(self) -> List[Tuple[int, EnvironmentType, int]]:
        """Non-zero (cluster, environment, count) flows — Fig. 6's links."""
        flows = []
        for i, cluster in enumerate(self.clusters):
            for j, env in enumerate(self.environments):
                count = int(self.counts[i, j])
                if count > 0:
                    flows.append((cluster, env, count))
        flows.sort(key=lambda f: f[2], reverse=True)
        return flows

    def dominant_environment(self, cluster: int) -> EnvironmentType:
        """The environment type holding the largest share of a cluster."""
        row = self.counts[self._cluster_row(cluster)]
        return self.environments[int(np.argmax(row))]


def contingency(
    labels: Sequence[int], env_types: Sequence[EnvironmentType]
) -> ContingencyTable:
    """Cross-tabulate cluster labels against environment types."""
    labels = np.asarray(labels, dtype=int)
    if labels.shape[0] != len(env_types):
        raise ValueError(
            f"labels length {labels.shape[0]} != env_types length {len(env_types)}"
        )
    clusters = sorted(int(c) for c in np.unique(labels))
    environments = list(EnvironmentType)
    env_index = {env: j for j, env in enumerate(environments)}
    counts = np.zeros((len(clusters), len(environments)), dtype=int)
    cluster_index = {c: i for i, c in enumerate(clusters)}
    for label, env in zip(labels.tolist(), env_types):
        counts[cluster_index[label], env_index[env]] += 1
    return ContingencyTable(counts=counts, clusters=clusters, environments=environments)


def paris_share(
    labels: Sequence[int], paris_mask: Sequence[bool]
) -> Dict[int, float]:
    """Fraction of each cluster's antennas located in Paris.

    The paper quotes these shares to separate, e.g., the Paris commuter
    clusters 0/4 (>92% Paris) from the non-capital cluster 7 and the
    provincial retail cluster 2 (~92% outside Paris).
    """
    labels = np.asarray(labels, dtype=int)
    mask = np.asarray(paris_mask, dtype=bool)
    if labels.shape != mask.shape:
        raise ValueError(
            f"labels shape {labels.shape} != paris_mask shape {mask.shape}"
        )
    shares: Dict[int, float] = {}
    for cluster in np.unique(labels):
        members = labels == cluster
        shares[int(cluster)] = float(mask[members].mean())
    return shares
