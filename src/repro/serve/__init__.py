"""Concurrent profile serving: registry, micro-batching, cache, admission.

The batch pipeline fits a profile and ``repro.stream`` keeps it current;
this subsystem *answers queries* against it under concurrent load — the
operational endpoint the paper's Section 6/7 applications poll.  A
versioned :class:`ProfileRegistry` hot-swaps
:class:`~repro.stream.frozen.FrozenProfile` checkpoints without dropping
in-flight requests; a :class:`MicroBatcher` worker pool aggregates
concurrent queries into vectorized forest votes; an LRU+TTL
:class:`ResultCache` short-circuits recurring vectors; and admission
control sheds load past a queue watermark instead of queueing unbounded
latency.  A stdlib ``ThreadingHTTPServer`` JSON endpoint
(:mod:`repro.serve.http`) and an in-process :class:`ServeClient` front
the same :class:`ProfileService`.

Quickstart::

    from repro import generate_dataset, ICNProfiler
    from repro.serve import ProfileService, ServeClient

    dataset = generate_dataset(master_seed=0)
    profile = ICNProfiler(n_clusters=9).fit(dataset)
    frozen = profile.freeze(service_totals=dataset.totals.sum(axis=0))

    with ProfileService(frozen, max_batch=64, n_workers=4) as service:
        client = ServeClient(service)
        print(client.classify(frozen.features[:5]).labels)
        print(client.classify_volumes(dataset.totals[:5]).labels)
        print(service.metrics_snapshot()["derived"])
"""

from repro.serve.cache import DEFAULT_DECIMALS, ResultCache, quantize_key
from repro.serve.client import HttpServeClient, ServeClient
from repro.serve.metrics import LatencyReservoir, ServeMetrics
from repro.serve.registry import ProfileRegistry
from repro.serve.scheduler import MicroBatcher, ShedRequest
from repro.serve.service import (
    ClassifyResult,
    PendingClassify,
    ProfileService,
    ServeDegradePolicy,
)
from repro.serve.bench import format_report, run_serve_benchmark
from repro.serve.http import ServeHTTPServer, make_server

__all__ = [
    "ClassifyResult",
    "DEFAULT_DECIMALS",
    "HttpServeClient",
    "LatencyReservoir",
    "MicroBatcher",
    "PendingClassify",
    "ProfileRegistry",
    "ProfileService",
    "ResultCache",
    "ServeClient",
    "ServeDegradePolicy",
    "ServeHTTPServer",
    "ServeMetrics",
    "ShedRequest",
    "format_report",
    "make_server",
    "quantize_key",
    "run_serve_benchmark",
]
