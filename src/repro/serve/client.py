"""Clients for the serving subsystem.

:class:`ServeClient` talks to an in-process :class:`ProfileService`
directly — the harness tests, benchmarks, and examples use it to drive
the full cache/admission/micro-batch path without a socket in the way.
:class:`HttpServeClient` speaks the JSON protocol of
:mod:`repro.serve.http` over ``urllib`` for end-to-end checks against a
live server.

Trace propagation: every :class:`HttpServeClient` request runs inside a
``client.request`` span and carries the active trace as a W3C
``traceparent`` header (:func:`repro.obs.trace.inject`), so the server's
``serve.http`` span tree parents onto the caller's trace — one merged
trace across the process boundary.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Optional

import numpy as np

from repro.obs.trace import inject, span
from repro.serve.scheduler import ShedRequest
from repro.serve.service import ClassifyResult, PendingClassify, ProfileService


class ServeClient:
    """In-process client over a :class:`ProfileService`."""

    def __init__(self, service: ProfileService) -> None:
        self._service = service

    def classify(self, vectors: np.ndarray,
                 timeout: Optional[float] = None) -> ClassifyResult:
        """Classify RSCA vectors (blocks for the answer)."""
        return self._service.classify(vectors, timeout=timeout)

    def classify_volumes(self, volumes: np.ndarray,
                         timeout: Optional[float] = None) -> ClassifyResult:
        """Classify raw per-service volumes (blocks for the answer)."""
        return self._service.classify_volumes(volumes, timeout=timeout)

    def submit(self, vectors: np.ndarray) -> PendingClassify:
        """Asynchronous classify — lets callers keep many queries in flight."""
        return self._service.submit(vectors)

    def clusters(self) -> Dict[str, object]:
        """Per-cluster occupancy/centroid summary."""
        return self._service.cluster_summaries()

    def metrics(self) -> Dict[str, object]:
        """Node metrics snapshot."""
        return self._service.metrics_snapshot()


class HttpServeClient:
    """Minimal ``urllib`` client for the JSON endpoint.

    Raises:
        ShedRequest: on HTTP 429 (mirrors the in-process behaviour).
        RuntimeError: on any other non-2xx response.
    """

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, path: str, payload: Optional[dict] = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers: Dict[str, str] = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        with span("client.request", path=path, url=self.base_url):
            # Inside the span so the header names *this* request's span
            # as the remote parent (a no-op when tracing is off).
            inject(headers)
            request = urllib.request.Request(url, data=data, headers=headers)
            try:
                with urllib.request.urlopen(
                        request, timeout=self.timeout) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                body = exc.read().decode("utf-8", errors="replace")
                if exc.code == 429:
                    retry_after = float(
                        exc.headers.get("Retry-After", "0.05")
                    )
                    raise ShedRequest(-1, -1, retry_after) from None
                raise RuntimeError(f"HTTP {exc.code}: {body}") from None

    def classify(self, vectors) -> dict:
        """POST /classify with RSCA rows; returns the raw JSON answer."""
        return self._request(
            "/classify", {"vectors": np.asarray(vectors, dtype=float).tolist()}
        )

    def classify_volumes(self, volumes) -> dict:
        """POST /classify with raw volumes; returns the raw JSON answer."""
        return self._request(
            "/classify", {"volumes": np.asarray(volumes, dtype=float).tolist()}
        )

    def healthz(self) -> dict:
        """GET /healthz."""
        return self._request("/healthz")

    def clusters(self) -> dict:
        """GET /clusters."""
        return self._request("/clusters")

    def metrics(self) -> dict:
        """GET /metrics.json — the structured node snapshot."""
        return self._request("/metrics.json")

    def metrics_text(self) -> str:
        """GET /metrics — the Prometheus text exposition."""
        url = f"{self.base_url}/metrics"
        with urllib.request.urlopen(url, timeout=self.timeout) as response:
            return response.read().decode("utf-8")
