"""Versioned in-process registry of :class:`FrozenProfile` artifacts.

A serving node answers queries against exactly one profile version at a
time, but operators refit and redeploy profiles while traffic is in
flight (the "refit recommended" outcome of a drift check).  The registry
makes that hand-over safe:

* :meth:`ProfileRegistry.load` installs a new version atomically — every
  request admitted after the swap sees the new profile;
* :meth:`ProfileRegistry.acquire` pins one ``(version, profile)`` pair
  for the duration of a classification, so a single answer can never mix
  versions;
* the displaced version is *drained* gracefully: it stays valid for the
  requests already holding it and is only considered retired once its
  reference count reaches zero (:meth:`ProfileRegistry.drain` blocks on
  that).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, List, Optional

import numpy as np

from repro.stream.frozen import FrozenProfile


class _VersionHandle:
    """One installed profile version with an in-flight reference count."""

    __slots__ = ("version", "profile", "refs", "retired", "drained")

    def __init__(self, version: int, profile: FrozenProfile) -> None:
        self.version = version
        self.profile = profile
        self.refs = 0
        self.retired = False
        self.drained = threading.Event()


class ProfileRegistry:
    """Hot-swappable holder of the currently served profile version."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._current: Optional[_VersionHandle] = None
        self._retiring: Dict[int, _VersionHandle] = {}
        self._next_version = 1

    # ------------------------------------------------------------------
    # Installation / hot swap
    # ------------------------------------------------------------------

    def load(
        self,
        frozen: FrozenProfile,
        drain_timeout: Optional[float] = None,
    ) -> int:
        """Install ``frozen`` as the new current version.

        The swap itself is atomic; requests that already pinned the old
        version finish against it.  With ``drain_timeout`` set, block up
        to that many seconds until the displaced version has no readers
        left (a no-op on the first load).

        Returns:
            the version number assigned to the new profile.
        """
        if not isinstance(frozen, FrozenProfile):
            raise TypeError(
                f"expected a FrozenProfile, got {type(frozen).__name__}"
            )
        with self._lock:
            version = self._next_version
            self._next_version += 1
            displaced = self._current
            self._current = _VersionHandle(version, frozen)
            if displaced is not None:
                displaced.retired = True
                if displaced.refs == 0:
                    displaced.drained.set()
                else:
                    self._retiring[displaced.version] = displaced
        if displaced is not None and drain_timeout is not None:
            displaced.drained.wait(drain_timeout)
        return version

    def load_path(self, path, drain_timeout: Optional[float] = None) -> int:
        """Load a ``FrozenProfile`` artifact from ``.npz`` and install it."""
        return self.load(FrozenProfile.load(path), drain_timeout=drain_timeout)

    # ------------------------------------------------------------------
    # Read-side access
    # ------------------------------------------------------------------

    @contextmanager
    def acquire(self):
        """Pin the current ``(version, profile)`` for one classification.

        The pinned version stays usable until the context exits even if
        a newer version is installed meanwhile; the registry only counts
        the old version drained once every such pin is released.
        """
        with self._lock:
            handle = self._current
            if handle is None:
                raise RuntimeError("no profile loaded in the registry")
            handle.refs += 1
        try:
            yield handle.version, handle.profile
        finally:
            with self._lock:
                handle.refs -= 1
                if handle.retired and handle.refs == 0:
                    handle.drained.set()
                    self._retiring.pop(handle.version, None)

    def current_version(self) -> Optional[int]:
        """Version number being served, or None before the first load."""
        with self._lock:
            return self._current.version if self._current else None

    def drain(self, version: int, timeout: Optional[float] = None) -> bool:
        """Wait until ``version`` has no in-flight readers.

        Returns True when drained (immediately for unknown or already
        drained versions), False on timeout.
        """
        with self._lock:
            if self._current is not None and self._current.version == version:
                raise ValueError(
                    f"version {version} is still current; load a replacement "
                    f"before draining it"
                )
            handle = self._retiring.get(version)
        if handle is None:
            return True
        return handle.drained.wait(timeout)

    def in_flight(self) -> int:
        """Readers currently pinning any version (current or retiring)."""
        with self._lock:
            total = self._current.refs if self._current else 0
            total += sum(h.refs for h in self._retiring.values())
            return total

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    def cluster_summaries(self) -> Dict[str, object]:
        """Per-cluster occupancy and centroid of the current version.

        The occupancy is the reference partition's training population —
        the third query type a serving node answers (cluster inventory
        for capacity planning), not live stream occupancy.
        """
        with self.acquire() as (version, profile):
            clusters: List[Dict[str, object]] = []
            total = int(profile.labels.size)
            for row, cluster in enumerate(profile.clusters):
                members = int(np.sum(profile.labels == cluster))
                clusters.append(
                    {
                        "cluster": int(cluster),
                        "occupancy": members,
                        "share": members / total if total else 0.0,
                        "centroid": [
                            float(v) for v in profile.centroids[row]
                        ],
                    }
                )
            return {
                "version": version,
                "n_clusters": profile.n_clusters,
                "n_antennas": total,
                "service_names": list(profile.service_names),
                "clusters": clusters,
            }
