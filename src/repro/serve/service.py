"""The profile-serving facade: registry + micro-batcher + cache + metrics.

:class:`ProfileService` is the in-process serving engine behind both the
HTTP endpoint (:mod:`repro.serve.http`) and the test/bench client
(:class:`repro.serve.client.ServeClient`).  It answers three query
types against the registry's current :class:`FrozenProfile` version:

* ``classify`` — label RSCA feature vectors;
* ``classify_volumes`` — label raw per-service traffic volumes; the
  service applies the frozen reference's
  :func:`repro.core.rca.rca_from_components` transform first, so clients
  need not know the network-wide service mix;
* ``cluster_summaries`` — per-cluster occupancy and centroids of the
  reference partition.

Requests flow cache -> admission -> micro-batch -> vote.  Version
consistency is guaranteed per answer: every label in one
:class:`ClassifyResult` comes from a single profile version.  When a hot
swap lands between a request's cache lookup and its batch execution, the
service transparently re-classifies the whole request against the new
version instead of mixing cached old-version labels with fresh ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.obs import get_logger, span, timed_stage
from repro.relia.degrade import ServeDegradePolicy
from repro.relia.errors import RetryExhausted, WorkerCrash
from repro.relia.retry import CircuitBreaker
from repro.serve.cache import DEFAULT_DECIMALS, ResultCache, quantize_key
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import ProfileRegistry
from repro.serve.scheduler import MicroBatcher, ShedRequest
from repro.stream.frozen import FrozenProfile
from repro.utils.checks import check_matrix

__all__ = [
    "ClassifyResult",
    "PendingClassify",
    "ProfileService",
    "ServeDegradePolicy",
    "ShedRequest",
]

_log = get_logger("repro.serve.service")


@dataclass(frozen=True)
class ClassifyResult:
    """One answered classification request.

    Attributes:
        labels: cluster label per query vector.
        version: the single profile version every label came from.
        cached: per-vector flag — True where the label was served from
            the result cache.
        degraded: True when the answer came from the nearest-centroid
            fallback path (worker pool unhealthy) instead of the full
            forest vote — a best-effort label, not full fidelity.
    """

    labels: np.ndarray
    version: int
    cached: np.ndarray
    degraded: bool = False

    @property
    def n_vectors(self) -> int:
        """Number of query vectors answered."""
        return int(self.labels.size)

    @property
    def n_cached(self) -> int:
        """How many of them were cache hits."""
        return int(np.sum(self.cached))


class PendingClassify:
    """Handle for an in-flight request; ``result()`` blocks for the answer.

    Created by :meth:`ProfileService.submit` /
    :meth:`ProfileService.submit_volumes`; the asynchronous form lets
    benchmarks and the HTTP layer keep many requests in flight so the
    micro-batcher actually has co-riders to aggregate.
    """

    def __init__(
        self,
        service: "ProfileService",
        features: np.ndarray,
        keys: List[bytes],
        cached_labels: Dict[int, int],
        item,
        missing: List[int],
        version: Optional[int],
        started_at: float,
        degrade_now: bool = False,
    ) -> None:
        self._service = service
        self._features = features
        self._keys = keys
        self._cached_labels = cached_labels
        self._item = item
        self._missing = missing
        self._version = version
        self._started_at = started_at
        self._degrade_now = degrade_now

    def _fallback(self) -> ClassifyResult:
        """Answer from nearest centroids, marked degraded (never cached)."""
        service = self._service
        n = self._features.shape[0]
        labels = np.empty(n, dtype=int)
        cached_mask = np.zeros(n, dtype=bool)
        if self._missing:
            fresh, version = service._degrade_labels(
                self._features[self._missing]
            )
            for slot, row in enumerate(self._missing):
                labels[row] = int(fresh[slot])
        else:
            version = self._version
        for row, label in self._cached_labels.items():
            labels[row] = label
            cached_mask[row] = True
        service._degraded_total.inc(len(self._missing))
        service.metrics.observe_request(
            time.perf_counter() - self._started_at, n_vectors=n
        )
        assert version is not None
        return ClassifyResult(
            labels=labels, version=int(version), cached=cached_mask,
            degraded=True,
        )

    def result(self, timeout: Optional[float] = None) -> ClassifyResult:
        """Block until classified; returns a version-consistent answer.

        Under an active :class:`ServeDegradePolicy`, a request whose
        batch died with the worker pool (crashes, vote failures) is
        answered from the nearest-centroid path with ``degraded=True``
        instead of raising — callers always get *an* answer or a typed
        admission error, never a silent drop.
        """
        service = self._service
        if self._degrade_now:
            return self._fallback()
        n = self._features.shape[0]
        labels = np.empty(n, dtype=int)
        cached_mask = np.zeros(n, dtype=bool)
        try:
            if self._item is None:
                # Fully served from cache: all entries share self._version.
                for row, label in self._cached_labels.items():
                    labels[row] = label
                    cached_mask[row] = True
                version = self._version
                assert version is not None
            else:
                fresh, version = MicroBatcher.wait(self._item, timeout)
                if self._cached_labels and version != self._version:
                    # A hot swap landed between the cache pass and the
                    # batch: cached labels are old-version.  Re-classify
                    # everything in one batch for a single-version answer.
                    retry = service._batcher.submit(self._features)
                    fresh, version = MicroBatcher.wait(retry, timeout)
                    for row in range(n):
                        labels[row] = int(fresh[row])
                        service._store(version, self._keys[row], labels[row])
                else:
                    for slot, row in enumerate(self._missing):
                        labels[row] = int(fresh[slot])
                        service._store(version, self._keys[row], labels[row])
                    for row, label in self._cached_labels.items():
                        labels[row] = label
                        cached_mask[row] = True
        except BaseException as exc:
            if service._may_degrade(exc):
                service._note_vote_failure(exc)
                return self._fallback()
            service.metrics.incr("errors")
            raise
        if self._item is not None:
            service._note_vote_success()
        service.metrics.observe_request(
            time.perf_counter() - self._started_at, n_vectors=n
        )
        return ClassifyResult(
            labels=labels, version=int(version), cached=cached_mask
        )


class ProfileService:
    """Concurrent query-serving engine over a versioned profile registry.

    Args:
        frozen: profile to install immediately (else call :meth:`reload`).
        max_batch: micro-batch row target (see :class:`MicroBatcher`).
        max_wait_ms: micro-batch gather window.
        n_workers: classification worker threads.
        cache_size: LRU capacity in vectors; 0 disables caching.
        cache_ttl_s: cache entry lifetime; None keeps until evicted.
        cache_decimals: feature quantization for cache keys.
        max_queue_depth: admission watermark (queued requests).
        shed_retry_after_s: back-off suggested to shed clients.
        metrics: share an existing :class:`ServeMetrics` (else create one).
        degrade: opt-in graceful degradation — a circuit breaker watches
            worker health (crashes, vote failures) and, while open,
            queries are answered from the frozen profile's
            nearest-centroid path marked ``degraded=true`` instead of
            failing.  None (the default) keeps strict fail-fast
            behavior.
        max_item_retries: times a request stranded by a worker crash is
            requeued before failing (see :class:`MicroBatcher`).
        use_compiled: route batch votes through the profile's fused
            array-compiled kernel (:meth:`FrozenProfile.kernel`) — the
            default.  Input errors (``ValueError``/``TypeError``) still
            propagate, but any unexpected kernel failure falls back to
            the object forest for that batch (counted in
            ``repro_kernel_fallback_total``), so the compiled path can
            never lose an answer the object path would have produced.
            False pins every vote to the object forest.
    """

    def __init__(
        self,
        frozen: Optional[FrozenProfile] = None,
        *,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        n_workers: int = 2,
        cache_size: int = 4096,
        cache_ttl_s: Optional[float] = None,
        cache_decimals: int = DEFAULT_DECIMALS,
        max_queue_depth: int = 256,
        shed_retry_after_s: float = 0.05,
        metrics: Optional[ServeMetrics] = None,
        degrade: Optional[ServeDegradePolicy] = None,
        max_item_retries: int = 2,
        use_compiled: bool = True,
    ) -> None:
        self.use_compiled = bool(use_compiled)
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.registry = ProfileRegistry()
        self.cache = ResultCache(maxsize=cache_size, ttl_seconds=cache_ttl_s)
        self.cache_decimals = int(cache_decimals)
        self.degrade = degrade
        self._batcher = MicroBatcher(
            self._classify_batch,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            n_workers=n_workers,
            max_queue_depth=max_queue_depth,
            shed_retry_after_s=shed_retry_after_s,
            on_batch=lambda n_requests, n_rows: self.metrics.observe_batch(
                n_rows
            ),
            on_queue_wait=self.metrics.observe_queue_wait,
            on_assembly=self.metrics.observe_assembly,
            max_item_retries=max_item_retries,
            on_worker_crash=self._note_worker_crash,
        )
        # Scrape-time node gauges on the metrics registry, so one
        # Prometheus text render covers the whole serving node.
        obs_registry = self.metrics.registry
        obs_registry.gauge(
            "repro_serve_queue_depth", "Requests currently queued"
        ).set_function(self._batcher.queue_depth)
        obs_registry.gauge(
            "repro_serve_profile_version",
            "Profile version being served (0 before the first load)",
        ).set_function(lambda: self.registry.current_version() or 0)
        obs_registry.gauge(
            "repro_serve_cache_entries", "Result-cache entries resident"
        ).set_function(lambda: self.cache.stats()["size"])
        self._degraded_total = obs_registry.counter(
            "repro_degraded_answers_total",
            "Queries answered from the nearest-centroid fallback path",
        )
        self._kernel_fallback_total = obs_registry.counter(
            "repro_kernel_fallback_total",
            "Batches answered by the object forest after an unexpected "
            "compiled-kernel failure",
        )
        self._breaker: Optional[CircuitBreaker] = None
        if degrade is not None:
            self._breaker = CircuitBreaker(
                "serve.workers",
                failure_threshold=degrade.failure_threshold,
                reset_timeout_s=degrade.reset_timeout_s,
                registry=obs_registry,
            )
        self._batcher.start()
        if frozen is not None:
            self.reload(frozen)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def reload(self, frozen: FrozenProfile,
               drain_timeout: Optional[float] = 5.0) -> int:
        """Hot-swap in a new profile version; returns its version number."""
        version = self.registry.load(frozen, drain_timeout=drain_timeout)
        self.metrics.incr("reloads")
        return version

    def close(self) -> None:
        """Stop the worker pool; queued requests fail fast."""
        self._batcher.stop()

    def __enter__(self) -> "ProfileService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Query paths
    # ------------------------------------------------------------------

    def submit(self, vectors: np.ndarray) -> PendingClassify:
        """Asynchronously classify RSCA vectors (one row per query).

        Raises:
            ShedRequest: when admission control rejects the request.
            RuntimeError: when no profile is loaded.
        """
        started_at = time.perf_counter()
        with self.registry.acquire() as (version, profile):
            features = check_matrix(vectors, "vectors")
            if features.shape[1] != profile.centroids.shape[1]:
                raise ValueError(
                    f"vectors have {features.shape[1]} columns, profile "
                    f"serves {profile.centroids.shape[1]} services"
                )
        keys = [
            quantize_key(features[row], self.cache_decimals)
            for row in range(features.shape[0])
        ]
        cached_labels: Dict[int, int] = {}
        missing: List[int] = []
        for row, key in enumerate(keys):
            hit = self.cache.get((version, key))
            if hit is None:
                missing.append(row)
            else:
                cached_labels[row] = int(hit)
        self.metrics.incr("cache_hits", len(cached_labels))
        self.metrics.incr("cache_misses", len(missing))
        item = None
        degrade_now = False
        if missing:
            if (
                self._breaker is not None
                and self.degrade is not None
                and self.degrade.fallback_to_centroids
                and not self._breaker.allow()
            ):
                # Worker pool unhealthy: skip the batcher entirely and
                # answer from centroids while the breaker stays open.
                degrade_now = True
            else:
                try:
                    item = self._batcher.submit(features[missing])
                except ShedRequest:
                    self.metrics.incr("shed_requests")
                    raise
        return PendingClassify(
            self,
            features,
            keys,
            cached_labels,
            item,
            missing,
            version,
            started_at,
            degrade_now=degrade_now,
        )

    def classify(self, vectors: np.ndarray,
                 timeout: Optional[float] = None) -> ClassifyResult:
        """Classify RSCA vectors and block for the answer."""
        return self.submit(vectors).result(timeout)

    def submit_volumes(self, volumes: np.ndarray) -> PendingClassify:
        """Asynchronously classify raw per-service traffic volumes.

        The current profile version's reference marginals drive the
        RCA -> RSCA transform; the classification itself then follows the
        ordinary vector path (and shares its cache namespace, since the
        transformed rows *are* RSCA vectors).
        """
        with self.registry.acquire() as (_version, profile):
            with timed_stage("serve.rsca_transform",
                             registry=self.metrics.registry):
                features = self._transform_volumes(profile, volumes)
        return self.submit(features)

    def classify_volumes(self, volumes: np.ndarray,
                         timeout: Optional[float] = None) -> ClassifyResult:
        """Classify raw volumes and block for the answer."""
        return self.submit_volumes(volumes).result(timeout)

    def cluster_summaries(self) -> Dict[str, object]:
        """Per-cluster occupancy/centroid summary of the current version."""
        return self.registry.cluster_summaries()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _classify_batch(self, features: np.ndarray):
        """Vote one stacked batch under a single pinned version.

        The compiled kernel is the primary path (bit-identical to the
        object forest); input errors propagate as-is, anything else
        falls back to the object forest for this batch so degraded mode
        keeps serving full-fidelity answers.
        """
        with timed_stage("serve.vote", registry=self.metrics.registry,
                         rows=int(features.shape[0])):
            with self.registry.acquire() as (version, profile):
                if self.use_compiled:
                    try:
                        with timed_stage(
                            "serve.kernel_vote",
                            registry=self.metrics.registry,
                            rows=int(features.shape[0]),
                        ):
                            return profile.kernel().vote(features), version
                    except (ValueError, TypeError):
                        raise  # malformed input fails the same on either path
                    except Exception as exc:
                        self._kernel_fallback_total.inc()
                        _log.warning(
                            "kernel_fallback", error_type=type(exc).__name__,
                            error=str(exc),
                        )
                return profile.vote(features), version

    def _transform_volumes(
        self, profile: FrozenProfile, volumes: np.ndarray
    ) -> np.ndarray:
        """Raw volumes -> RSCA via the fused kernel, object math on failure."""
        if self.use_compiled:
            try:
                return profile.kernel().rsca_of_volumes(volumes)
            except (ValueError, TypeError):
                raise  # malformed input fails the same on either path
            except Exception as exc:
                self._kernel_fallback_total.inc()
                _log.warning(
                    "kernel_fallback", error_type=type(exc).__name__,
                    error=str(exc),
                )
        return profile.rsca_of_volumes(volumes)

    def _store(self, version: int, key: bytes, label: int) -> None:
        self.cache.put((version, key), int(label))

    def _degrade_labels(self, features: np.ndarray):
        """Nearest-centroid labels under a single pinned version."""
        with span("serve.degraded_vote", rows=int(features.shape[0])):
            with self.registry.acquire() as (version, profile):
                return profile.nearest_centroids(features), version

    def _may_degrade(self, exc: BaseException) -> bool:
        """Whether this batch failure should fall back, not raise."""
        if self.degrade is None or not self.degrade.fallback_to_centroids:
            return False
        if isinstance(exc, ShedRequest):
            return False  # admission control stays fail-fast
        return isinstance(
            exc, (WorkerCrash, RetryExhausted, RuntimeError, TimeoutError)
        )

    def _note_worker_crash(self, index: int, exc: BaseException) -> None:
        if self._breaker is not None:
            self._breaker.record_failure()

    def _note_vote_failure(self, exc: BaseException) -> None:
        self.metrics.incr("errors")
        if self._breaker is not None:
            self._breaker.record_failure()
        _log.warning(
            "degraded_answer", error_type=type(exc).__name__,
            error=str(exc),
        )

    def _note_vote_success(self) -> None:
        if self._breaker is not None:
            self._breaker.record_success()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, object]:
        """JSON-serializable node status: metrics, cache, queue, version."""
        snapshot = self.metrics.to_dict()
        snapshot["cache"] = self.cache.stats()
        snapshot["queue_depth"] = self._batcher.queue_depth()
        snapshot["max_queue_depth"] = self._batcher.max_queue_depth
        snapshot["profile_version"] = self.registry.current_version()
        return snapshot

    def metrics_text(self) -> str:
        """This node's full metric surface as Prometheus exposition text."""
        return self.metrics.prometheus_text()
