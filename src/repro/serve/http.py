"""Stdlib HTTP endpoint over a :class:`ProfileService`.

A :class:`~http.server.ThreadingHTTPServer` front-end — one handler
thread per connection, all funnelling into the shared service (whose
micro-batcher aggregates them).  JSON in, JSON out, no dependencies:

* ``GET  /healthz``      — liveness + current profile version;
* ``GET  /clusters``     — per-cluster occupancy/centroid summaries;
* ``GET  /metrics``      — Prometheus text exposition of the node's
  :class:`~repro.obs.MetricsRegistry` (qps, latency histograms and
  quantiles, cache, shed, queue depth, profile version);
* ``GET  /metrics.json`` — :meth:`ProfileService.metrics_snapshot`;
* ``POST /classify``     — body ``{"vectors": [[...], ...]}`` (RSCA rows)
  or ``{"volumes": [[...], ...]}`` (raw per-service MB); responds
  ``{"labels": [...], "version": V, "cached": C, "degraded": bool}``.

Error mapping: malformed input -> 400; no profile loaded -> 503;
admission shed -> 429 with a ``Retry-After`` header; unknown path ->
404.  Anything unexpected inside a handler -> 500 with a **structured
JSON body** (``error``/``error_type``/``request_id``/``trace_id``) —
never a bare status line — and a structured log line carrying the same
correlation ids, so an operator can join the client-visible failure to
the server-side trace.  Each request runs inside a ``serve.http`` span
when tracing is enabled.
"""

from __future__ import annotations

import itertools
import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

import numpy as np

from repro.obs import current_trace_id, get_logger, span
from repro.serve.scheduler import ShedRequest
from repro.serve.service import ProfileService

#: Largest request body accepted, in bytes (guards the JSON parser).
MAX_BODY_BYTES = 8 * 1024 * 1024

_log = get_logger("repro.serve.http")
_request_ids = itertools.count(1)


class ServeHandler(BaseHTTPRequestHandler):
    """JSON request handler bound to the server's :class:`ProfileService`."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ProfileService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------

    def _respond(self, status: int, payload: dict,
                 headers: Optional[dict] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._respond_bytes(status, body, "application/json", headers)

    def _respond_bytes(self, status: int, body: bytes, content_type: str,
                       headers: Optional[dict] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str,
               headers: Optional[dict] = None) -> None:
        self._respond(status, {"error": message}, headers)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
        self._handle(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler naming
        self._handle(self._route_post)

    def _handle(self, route) -> None:
        """Run one route inside a span with last-resort error mapping.

        A route that raises anything its own mapping did not anticipate
        must still produce a structured JSON 500 (clients parse every
        body) and a correlated server-side log line — a silent bare 500
        is an operational dead end.
        """
        request_id = f"req-{next(_request_ids):08x}"
        with span("serve.http", method=self.command,
                  path=self.path, request_id=request_id) as record:
            try:
                route()
            except Exception as exc:  # noqa: BLE001 - last-resort mapping
                if record is not None:
                    record.attributes["error"] = True
                    record.attributes["error_type"] = type(exc).__name__
                trace_id = current_trace_id()
                _log.error(
                    "unhandled_handler_error",
                    request_id=request_id,
                    method=self.command,
                    path=self.path,
                    error_type=type(exc).__name__,
                    error=str(exc),
                )
                self.service.metrics.incr("errors")
                try:
                    self._respond(500, {
                        "error": "internal server error",
                        "error_type": type(exc).__name__,
                        "detail": str(exc),
                        "request_id": request_id,
                        "trace_id": trace_id,
                    })
                except OSError:
                    # Client already hung up; the log line above is all
                    # that remains of this request.
                    pass

    def _route_get(self) -> None:
        if self.path == "/healthz":
            self._respond(
                200,
                {
                    "status": "ok",
                    "profile_version": self.service.registry.current_version(),
                },
            )
        elif self.path == "/clusters":
            try:
                self._respond(200, self.service.cluster_summaries())
            except RuntimeError as exc:
                self._error(503, str(exc))
        elif self.path == "/metrics":
            self._respond_bytes(
                200,
                self.service.metrics_text().encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif self.path == "/metrics.json":
            self._respond(200, self.service.metrics_snapshot())
        else:
            self._error(404, f"unknown path {self.path!r}")

    def _route_post(self) -> None:
        if self.path != "/classify":
            self._error(404, f"unknown path {self.path!r}")
            return
        payload, failure = self._read_json()
        if failure is not None:
            self._error(400, failure)
            return
        vectors = payload.get("vectors")
        volumes = payload.get("volumes")
        if (vectors is None) == (volumes is None):
            self._error(
                400, "body must contain exactly one of 'vectors' or 'volumes'"
            )
            return
        try:
            if vectors is not None:
                result = self.service.classify(np.asarray(vectors, dtype=float))
            else:
                result = self.service.classify_volumes(
                    np.asarray(volumes, dtype=float)
                )
        except ShedRequest as exc:
            self._error(
                429, str(exc), {"Retry-After": f"{exc.retry_after:.3f}"}
            )
        except (TypeError, ValueError) as exc:
            self._error(400, str(exc))
        except RuntimeError as exc:
            self._error(503, str(exc))
        else:
            self._respond(
                200,
                {
                    "labels": [int(label) for label in result.labels],
                    "version": result.version,
                    "cached": result.n_cached,
                    "degraded": bool(result.degraded),
                },
            )

    def _read_json(self) -> Tuple[Optional[dict], Optional[str]]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            return None, "invalid Content-Length"
        if length <= 0:
            return None, "empty request body"
        if length > MAX_BODY_BYTES:
            return None, f"request body exceeds {MAX_BODY_BYTES} bytes"
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None, "request body is not valid JSON"
        if not isinstance(payload, dict):
            return None, "request body must be a JSON object"
        return payload, None

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class ServeHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server owning a shared :class:`ProfileService`."""

    daemon_threads = True

    def __init__(self, address, service: ProfileService,
                 verbose: bool = False) -> None:
        super().__init__(address, ServeHandler)
        self.service = service
        self.verbose = verbose


def make_server(
    service: ProfileService,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = False,
) -> ServeHTTPServer:
    """Bind a :class:`ServeHTTPServer` (``port=0`` picks a free port)."""
    return ServeHTTPServer((host, port), service, verbose=verbose)
