"""Stdlib HTTP endpoint over a :class:`ProfileService`.

A :class:`~http.server.ThreadingHTTPServer` front-end — one handler
thread per connection, all funnelling into the shared service (whose
micro-batcher aggregates them).  JSON in, JSON out, no dependencies:

* ``GET  /healthz``      — liveness + readiness: runs the standard
  :func:`repro.obs.health.service_health_checks` probe set (profile
  loaded, queue headroom, breaker state, error budgets) and answers
  200 while healthy, 503 with the failing checks otherwise;
* ``GET  /slo``          — JSON error-budget report from the attached
  :class:`~repro.obs.slo.SLOEngine` plus the
  :class:`~repro.obs.alerts.AlertManager` alert states (404 when the
  server was built without an engine);
* ``GET  /clusters``     — per-cluster occupancy/centroid summaries;
* ``GET  /metrics``      — Prometheus text exposition of the node's
  :class:`~repro.obs.MetricsRegistry` (qps, latency histograms and
  quantiles, cache, shed, queue depth, profile version);
* ``GET  /metrics.json`` — :meth:`ProfileService.metrics_snapshot`;
* ``GET  /query``        — metric-history queries against the attached
  :class:`~repro.obs.tsdb.MetricsTSDB` (404 when the server was built
  without one): ``?expr=rate(repro_serve_requests_total[60s])`` with an
  optional ``&range=N`` seconds override; answers the evaluated value
  plus the per-interval sample series behind it;
* ``GET  /debug/prof``   — the attached continuous profiler's
  (:class:`~repro.obs.prof.ContinuousProfiler`; 404 when absent) view
  of the trailing ``?seconds=N``: speedscope JSON by default,
  collapsed-stack text with ``&format=collapsed``;
* ``POST /classify``     — body ``{"vectors": [[...], ...]}`` (RSCA rows)
  or ``{"volumes": [[...], ...]}`` (raw per-service MB); responds
  ``{"labels": [...], "version": V, "cached": C, "degraded": bool}``.

Every scrape of ``/metrics``, ``/metrics.json``, ``/slo``, ``/query``,
or ``/healthz`` first ticks the attached SLO engine, re-evaluates the
alert rules, and records a TSDB snapshot, so the exported series are
current as of the scrape — no background evaluator thread needed.

Trace propagation: every request runs inside a ``serve.http`` span, and
when the request carries a W3C ``traceparent`` header the span parents
onto the caller's trace (see :func:`repro.obs.trace.extract`) — a
client-side trace and the server-side handler/vote spans assemble into
one tree in the Chrome export.

Error mapping: malformed input -> 400; no profile loaded -> 503;
admission shed -> 429 with a ``Retry-After`` header; unknown path ->
404.  Anything unexpected inside a handler -> 500 with a **structured
JSON body** (``error``/``error_type``/``request_id``/``trace_id``) —
never a bare status line — and a structured log line carrying the same
correlation ids, so an operator can join the client-visible failure to
the server-side trace.  Each request runs inside a ``serve.http`` span
when tracing is enabled.
"""

from __future__ import annotations

import itertools
import json
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

import numpy as np

from repro.obs import current_trace_id, get_logger, span
from repro.obs.alerts import AlertManager
from repro.obs.health import run_checks, service_health_checks
from repro.obs.prof import ContinuousProfiler
from repro.obs.slo import SLOEngine
from repro.obs.trace import extract
from repro.obs.tsdb import MetricsTSDB, QueryError
from repro.serve.scheduler import ShedRequest
from repro.serve.service import ProfileService

#: Largest request body accepted, in bytes (guards the JSON parser).
MAX_BODY_BYTES = 8 * 1024 * 1024

_log = get_logger("repro.serve.http")
_request_ids = itertools.count(1)


class ServeHandler(BaseHTTPRequestHandler):
    """JSON request handler bound to the server's :class:`ProfileService`."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ProfileService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------

    def _respond(self, status: int, payload: dict,
                 headers: Optional[dict] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._respond_bytes(status, body, "application/json", headers)

    def _respond_bytes(self, status: int, body: bytes, content_type: str,
                       headers: Optional[dict] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str,
               headers: Optional[dict] = None) -> None:
        self._respond(status, {"error": message}, headers)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
        self._handle(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler naming
        self._handle(self._route_post)

    def _handle(self, route) -> None:
        """Run one route inside a span with last-resort error mapping.

        A route that raises anything its own mapping did not anticipate
        must still produce a structured JSON 500 (clients parse every
        body) and a correlated server-side log line — a silent bare 500
        is an operational dead end.
        """
        request_id = f"req-{next(_request_ids):08x}"
        # A caller that propagates trace context (HttpServeClient does,
        # any W3C-instrumented client will) parents this request's span
        # tree onto its own trace instead of rooting a fresh one.
        parent = extract(dict(self.headers.items()))
        with span("serve.http", parent=parent, method=self.command,
                  path=self.path, request_id=request_id) as record:
            try:
                route()
            except Exception as exc:  # noqa: BLE001 - last-resort mapping
                if record is not None:
                    record.attributes["error"] = True
                    record.attributes["error_type"] = type(exc).__name__
                trace_id = current_trace_id()
                _log.error(
                    "unhandled_handler_error",
                    request_id=request_id,
                    method=self.command,
                    path=self.path,
                    error_type=type(exc).__name__,
                    error=str(exc),
                )
                self.service.metrics.incr("errors")
                try:
                    self._respond(500, {
                        "error": "internal server error",
                        "error_type": type(exc).__name__,
                        "detail": str(exc),
                        "request_id": request_id,
                        "trace_id": trace_id,
                    })
                except OSError:
                    # Client already hung up; the log line above is all
                    # that remains of this request.
                    pass

    def _refresh_slo(self) -> None:
        """Tick the SLO/alert/TSDB layers so this scrape sees fresh state."""
        engine = getattr(self.server, "slo_engine", None)
        if engine is not None:
            engine.tick()
        manager = getattr(self.server, "alert_manager", None)
        if manager is not None:
            manager.evaluate()
        tsdb = getattr(self.server, "tsdb", None)
        if tsdb is not None:
            tsdb.record()

    def _query_params(self) -> Dict[str, str]:
        """Single-valued query parameters of this request's URL."""
        query = urllib.parse.urlsplit(self.path).query
        return {
            name: values[-1]
            for name, values in urllib.parse.parse_qs(query).items()
        }

    def _route_query(self) -> None:
        """``GET /query?expr=...&range=...`` against the attached TSDB."""
        tsdb = getattr(self.server, "tsdb", None)
        if tsdb is None:
            self._error(404, "no metrics TSDB attached to this server")
            return
        self._refresh_slo()
        params = self._query_params()
        expr = params.get("expr")
        if not expr:
            self._error(400, "missing required parameter 'expr'")
            return
        range_s: Optional[float] = None
        if "range" in params:
            try:
                range_s = float(params["range"])
            except ValueError:
                self._error(400, f"invalid range {params['range']!r}")
                return
        try:
            self._respond(200, tsdb.query(expr, range_s=range_s))
        except QueryError as exc:
            self._error(400, str(exc))

    def _route_prof(self) -> None:
        """``GET /debug/prof?seconds=N&format=...`` from the profiler."""
        profiler = getattr(self.server, "profiler", None)
        if profiler is None:
            self._error(404, "no continuous profiler attached to this server")
            return
        params = self._query_params()
        seconds: Optional[float] = None
        if "seconds" in params:
            try:
                seconds = float(params["seconds"])
            except ValueError:
                self._error(400, f"invalid seconds {params['seconds']!r}")
                return
            if seconds <= 0:
                self._error(400, "seconds must be positive")
                return
        fmt = params.get("format", "speedscope")
        if fmt == "collapsed":
            self._respond_bytes(
                200,
                profiler.collapsed_text(seconds=seconds).encode("utf-8"),
                "text/plain; charset=utf-8",
            )
        elif fmt == "speedscope":
            self._respond(200, profiler.speedscope(seconds=seconds))
        else:
            self._error(
                400, f"unknown format {fmt!r} (speedscope or collapsed)"
            )

    def _route_get(self) -> None:
        if self.path.startswith("/query"):
            self._route_query()
            return
        if self.path.startswith("/debug/prof"):
            self._route_prof()
            return
        if self.path == "/healthz":
            self._refresh_slo()
            engine = getattr(self.server, "slo_engine", None)
            report = run_checks(
                service_health_checks(self.service, engine=engine)
            )
            body = report.to_dict()
            # Kept from the pre-SLO handler: clients and tests key off
            # the served profile version in the health body.
            body["profile_version"] = self.service.registry.current_version()
            self._respond(200 if report.ok else 503, body)
        elif self.path == "/slo":
            self._refresh_slo()
            engine = getattr(self.server, "slo_engine", None)
            if engine is None:
                self._error(404, "no SLO engine attached to this server")
                return
            body = engine.report()
            manager = getattr(self.server, "alert_manager", None)
            body["alerts"] = manager.report() if manager is not None else []
            self._respond(200, body)
        elif self.path == "/clusters":
            try:
                self._respond(200, self.service.cluster_summaries())
            except RuntimeError as exc:
                self._error(503, str(exc))
        elif self.path == "/metrics":
            self._refresh_slo()
            self._respond_bytes(
                200,
                self.service.metrics_text().encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif self.path == "/metrics.json":
            self._refresh_slo()
            self._respond(200, self.service.metrics_snapshot())
        else:
            self._error(404, f"unknown path {self.path!r}")

    def _route_post(self) -> None:
        if self.path != "/classify":
            self._error(404, f"unknown path {self.path!r}")
            return
        payload, failure = self._read_json()
        if failure is not None or payload is None:
            self._error(400, failure or "empty request body")
            return
        vectors = payload.get("vectors")
        volumes = payload.get("volumes")
        if (vectors is None) == (volumes is None):
            self._error(
                400, "body must contain exactly one of 'vectors' or 'volumes'"
            )
            return
        try:
            if vectors is not None:
                result = self.service.classify(np.asarray(vectors, dtype=float))
            else:
                result = self.service.classify_volumes(
                    np.asarray(volumes, dtype=float)
                )
        except ShedRequest as exc:
            self._error(
                429, str(exc), {"Retry-After": f"{exc.retry_after:.3f}"}
            )
        except (TypeError, ValueError) as exc:
            self._error(400, str(exc))
        except RuntimeError as exc:
            self._error(503, str(exc))
        else:
            self._respond(
                200,
                {
                    "labels": [int(label) for label in result.labels],
                    "version": result.version,
                    "cached": result.n_cached,
                    "degraded": bool(result.degraded),
                },
            )

    def _read_json(self) -> Tuple[Optional[dict], Optional[str]]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            return None, "invalid Content-Length"
        if length <= 0:
            return None, "empty request body"
        if length > MAX_BODY_BYTES:
            return None, f"request body exceeds {MAX_BODY_BYTES} bytes"
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None, "request body is not valid JSON"
        if not isinstance(payload, dict):
            return None, "request body must be a JSON object"
        return payload, None

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class ServeHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server owning a shared :class:`ProfileService`.

    When built with an :class:`SLOEngine` (and optionally an
    :class:`AlertManager`), the server exposes ``GET /slo`` and folds
    budget state into ``GET /healthz`` readiness; both are refreshed on
    every scrape.
    """

    daemon_threads = True

    def __init__(self, address, service: ProfileService,
                 verbose: bool = False,
                 slo_engine: Optional[SLOEngine] = None,
                 alert_manager: Optional[AlertManager] = None,
                 profiler: Optional[ContinuousProfiler] = None,
                 tsdb: Optional[MetricsTSDB] = None) -> None:
        super().__init__(address, ServeHandler)
        self.service = service
        self.verbose = verbose
        self.slo_engine = slo_engine
        self.alert_manager = alert_manager
        self.profiler = profiler
        self.tsdb = tsdb


def make_server(
    service: ProfileService,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = False,
    slo_engine: Optional[SLOEngine] = None,
    alert_manager: Optional[AlertManager] = None,
    profiler: Optional[ContinuousProfiler] = None,
    tsdb: Optional[MetricsTSDB] = None,
) -> ServeHTTPServer:
    """Bind a :class:`ServeHTTPServer` (``port=0`` picks a free port)."""
    return ServeHTTPServer(
        (host, port), service, verbose=verbose,
        slo_engine=slo_engine, alert_manager=alert_manager,
        profiler=profiler, tsdb=tsdb,
    )
