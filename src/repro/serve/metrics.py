"""Serving-side counters, latency reservoir, and batch-size histogram.

:class:`ServeMetrics` is the serving counterpart of
:class:`repro.stream.metrics.StreamMetrics`: where the stream metrics
describe an ingestion node, these describe a query-serving node — request
and query counts, executed micro-batches with their size distribution,
cache hits/misses, shed (load-rejected) requests, and a bounded
reservoir of per-request latencies from which p50/p95/p99 are derived.
Both classes export the same ``to_dict()`` JSON shape (``counters`` /
``derived`` sections) so one dashboard can scrape either node type.

Since the observability layer landed, both classes are thin facades over
a :class:`repro.obs.MetricsRegistry`: every counter is a registry
counter family (``repro_serve_<name>_total``), latencies and the new
request-lifecycle timings (queue wait, batch assembly) additionally feed
registry histograms, and :meth:`ServeMetrics.prometheus_text` renders
the whole node state in the Prometheus text format for the serve
endpoint's ``GET /metrics``.  Each instance owns a private registry by
default so independent services stay independent; pass a shared
registry explicitly to merge several components onto one exposition
surface.

All mutators are thread-safe: the serving layer updates metrics from
worker threads, HTTP handler threads, and client threads concurrently.
Audit note: quantile reads (:meth:`LatencyReservoir.quantiles_ms`) now
sort **one** locked snapshot of the reservoir instead of re-locking per
percentile, so the reported p50/p95/p99 trio is always internally
consistent even while worker threads keep swapping reservoir slots.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import current_trace_id

#: Default number of latency samples the reservoir retains.
DEFAULT_RESERVOIR_SIZE = 2048

#: Bucket bounds of the exposition latency histograms (seconds).
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)

#: Bucket bounds of the rows-per-batch exposition histogram.
BATCH_ROW_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class LatencyReservoir:
    """Fixed-size uniform reservoir of latency samples (seconds).

    Keeps at most ``capacity`` samples via Vitter's algorithm R, so the
    retained set is a uniform sample of everything observed; quantiles
    over the reservoir estimate quantiles of the full latency stream
    without unbounded memory.  The replacement RNG is seeded, so a
    replayed request sequence yields the same reservoir.
    """

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_SIZE,
                 seed: int = 0xA5) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._samples: List[float] = []
        self._seen = 0
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        """Fold one latency sample into the reservoir.

        The seen-count bump, slot draw, and slot swap happen under one
        lock acquisition — concurrent observers can never double-assign
        a slot or skew the replacement probability.
        """
        value = float(seconds)
        with self._lock:
            self._seen += 1
            if len(self._samples) < self.capacity:
                self._samples.append(value)
            else:
                slot = self._rng.randrange(self._seen)
                if slot < self.capacity:
                    self._samples[slot] = value

    @property
    def n_seen(self) -> int:
        """Total samples observed (retained or not)."""
        with self._lock:
            return self._seen

    def snapshot(self) -> List[float]:
        """Sorted copy of the retained samples (one lock acquisition)."""
        with self._lock:
            return sorted(self._samples)

    @staticmethod
    def _percentile_of(samples: Sequence[float], q: float) -> float:
        if not samples:
            return 0.0
        if len(samples) == 1:
            return samples[0]
        rank = (q / 100.0) * (len(samples) - 1)
        low = int(rank)
        high = min(low + 1, len(samples) - 1)
        frac = rank - low
        return samples[low] * (1.0 - frac) + samples[high] * frac

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile ``q`` in [0, 100] (0.0 if empty)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return self._percentile_of(self.snapshot(), q)

    def quantiles_ms(self) -> Dict[str, float]:
        """The dashboard trio — p50/p95/p99 in milliseconds.

        All three quantiles come from a single locked snapshot, so the
        trio is internally consistent under concurrent observers (the
        old per-percentile locking could interleave reservoir swaps
        between the p50 and p99 reads).
        """
        samples = self.snapshot()
        return {
            "p50_ms": self._percentile_of(samples, 50.0) * 1e3,
            "p95_ms": self._percentile_of(samples, 95.0) * 1e3,
            "p99_ms": self._percentile_of(samples, 99.0) * 1e3,
        }


class ServeMetrics:
    """Counters, latency reservoir, and batch histogram for one server.

    Args:
        reservoir_size: latency reservoir capacity.
        registry: back the metrics onto this
            :class:`~repro.obs.MetricsRegistry` (a fresh private one by
            default).  Sharing a registry between components merges them
            onto one Prometheus exposition surface.
    """

    #: Counter names, in reporting order.
    COUNTERS = (
        "requests",
        "vectors_classified",
        "batches_executed",
        "cache_hits",
        "cache_misses",
        "shed_requests",
        "errors",
        "reloads",
    )

    def __init__(self, reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(
                f"repro_serve_{name}_total",
                f"Serving counter: {name.replace('_', ' ')}",
            )
            for name in self.COUNTERS
        }
        self._batch_sizes: Dict[int, int] = {}
        self._lock = threading.Lock()
        self.latency = LatencyReservoir(reservoir_size)
        self._latency_hist = self.registry.histogram(
            "repro_serve_request_latency_seconds",
            "End-to-end request latency",
            buckets=LATENCY_BUCKETS,
        )
        self._queue_wait_hist = self.registry.histogram(
            "repro_serve_queue_wait_seconds",
            "Time requests spent queued before batch execution",
            buckets=LATENCY_BUCKETS,
        )
        self._assembly_hist = self.registry.histogram(
            "repro_serve_batch_assembly_seconds",
            "Gather window spent assembling each micro-batch",
            buckets=LATENCY_BUCKETS,
        )
        self._batch_rows_hist = self.registry.histogram(
            "repro_serve_batch_rows",
            "Stacked rows per executed micro-batch",
            buckets=BATCH_ROW_BUCKETS,
        )
        self._first_request: Optional[float] = None
        self._last_request: Optional[float] = None
        # Scrape-time gauges: evaluated at exposition, never stored.
        self.registry.gauge(
            "repro_serve_qps", "Completed requests per second"
        ).set_function(self.qps)
        self.registry.gauge(
            "repro_serve_cache_hit_rate",
            "Fraction of vector lookups answered from cache (0 before any)",
        ).set_function(lambda: self.cache_hit_rate() or 0.0)
        quantile_gauge = self.registry.gauge(
            "repro_serve_latency_ms",
            "Reservoir latency quantiles in milliseconds",
            labelnames=("quantile",),
        )
        for q in (50.0, 95.0, 99.0):
            quantile_gauge.labels(quantile=f"p{q:.0f}").set_function(
                lambda q=q: self.latency.percentile(q) * 1e3
            )

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment one counter."""
        counter = self._counters.get(name)
        if counter is None:
            raise KeyError(f"unknown counter {name!r}")
        counter.inc(int(amount))

    def count(self, name: str) -> int:
        """Current value of one counter."""
        counter = self._counters.get(name)
        if counter is None:
            raise KeyError(f"unknown counter {name!r}")
        return int(counter.value)

    def observe_request(self, latency_seconds: float,
                        n_vectors: int = 1) -> None:
        """Record one completed request and its end-to-end latency."""
        now = time.perf_counter()
        self._counters["requests"].inc()
        self._counters["vectors_classified"].inc(int(n_vectors))
        with self._lock:
            if self._first_request is None:
                self._first_request = now
            self._last_request = now
        self.latency.observe(latency_seconds)
        # With tracing on, the active trace id rides along as the
        # histogram exemplar, so a latency-SLO violation names the
        # exact trace to replay.  One thread-local read per request.
        self._latency_hist.observe(
            latency_seconds, exemplar=current_trace_id()
        )

    def observe_batch(self, n_rows: int) -> None:
        """Record one executed micro-batch of ``n_rows`` stacked vectors."""
        rows = int(n_rows)
        self._counters["batches_executed"].inc()
        self._batch_rows_hist.observe(rows)
        with self._lock:
            self._batch_sizes[rows] = self._batch_sizes.get(rows, 0) + 1

    def observe_queue_wait(self, seconds: float) -> None:
        """Record one request's queue wait (submit -> batch execution)."""
        self._queue_wait_hist.observe(seconds)

    def observe_assembly(self, seconds: float) -> None:
        """Record one micro-batch's gather (assembly) window."""
        self._assembly_hist.observe(seconds)

    # ------------------------------------------------------------------
    # Derived rates
    # ------------------------------------------------------------------

    def qps(self) -> float:
        """Completed requests per second over the observed request span."""
        requests = self.count("requests")
        with self._lock:
            first, last = self._first_request, self._last_request
        if requests < 2 or first is None or last is None or last <= first:
            return 0.0
        return requests / (last - first)

    def cache_hit_rate(self) -> Optional[float]:
        """Fraction of vector lookups answered from cache (None if no lookups)."""
        hits = self.count("cache_hits")
        misses = self.count("cache_misses")
        total = hits + misses
        return hits / total if total else None

    def batch_size_histogram(self) -> Dict[int, int]:
        """Rows-per-batch -> batch count."""
        with self._lock:
            return dict(self._batch_sizes)

    def mean_batch_size(self) -> float:
        """Average rows per executed micro-batch (0.0 before any batch)."""
        batches = self.count("batches_executed")
        with self._lock:
            total = sum(size * n for size, n in self._batch_sizes.items())
        return total / batches if batches else 0.0

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> str:
        """Human-readable metrics block."""
        hit_rate = self.cache_hit_rate()
        quantiles = self.latency.quantiles_ms()
        lines = [
            f"requests served:   {self.count('requests')} "
            f"({self.qps():,.0f} qps)",
            f"vectors classified: {self.count('vectors_classified')}",
            f"micro-batches:     {self.count('batches_executed')} "
            f"(mean size {self.mean_batch_size():.1f})",
            f"latency:           p50 {quantiles['p50_ms']:.2f} ms, "
            f"p95 {quantiles['p95_ms']:.2f} ms, "
            f"p99 {quantiles['p99_ms']:.2f} ms",
            f"cache hit rate:    "
            + (f"{hit_rate:.1%}" if hit_rate is not None else "n/a"),
            f"shed requests:     {self.count('shed_requests')}",
            f"errors:            {self.count('errors')}",
            f"profile reloads:   {self.count('reloads')}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (same shape as StreamMetrics)."""
        counters = {name: self.count(name) for name in self.COUNTERS}
        with self._lock:
            histogram = {str(k): v for k, v in sorted(self._batch_sizes.items())}
        hit_rate = self.cache_hit_rate()
        derived: Dict[str, object] = {
            "qps": self.qps(),
            "mean_batch_size": self.mean_batch_size(),
            "cache_hit_rate": hit_rate,
        }
        derived.update(self.latency.quantiles_ms())
        return {
            "counters": counters,
            "batch_size_histogram": histogram,
            "derived": derived,
            # Monotonic stamp so TSDB ingestion and bench_compare diffs
            # can reject a stale (cached / re-served) snapshot: any
            # fresh read has a strictly larger value within a process.
            "snapshot_ts": time.monotonic(),
        }

    def prometheus_text(self) -> str:
        """This node's registry in the Prometheus text exposition format."""
        return self.registry.prometheus_text()


def merge_batch_histograms(
    histograms: Sequence[Dict[int, int]]
) -> Dict[int, int]:
    """Sum batch-size histograms from several servers into one."""
    merged: Dict[int, int] = {}
    for histogram in histograms:
        for size, count in histogram.items():
            merged[int(size)] = merged.get(int(size), 0) + int(count)
    return merged
