"""Serving-side counters, latency reservoir, and batch-size histogram.

:class:`ServeMetrics` is the serving counterpart of
:class:`repro.stream.metrics.StreamMetrics`: where the stream metrics
describe an ingestion node, these describe a query-serving node — request
and query counts, executed micro-batches with their size distribution,
cache hits/misses, shed (load-rejected) requests, and a bounded
reservoir of per-request latencies from which p50/p95/p99 are derived.
Both classes export the same ``to_dict()`` JSON shape (``counters`` /
``derived`` sections) so one dashboard can scrape either node type.

All mutators are thread-safe: the serving layer updates metrics from
worker threads, HTTP handler threads, and client threads concurrently.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Optional, Sequence

#: Default number of latency samples the reservoir retains.
DEFAULT_RESERVOIR_SIZE = 2048


class LatencyReservoir:
    """Fixed-size uniform reservoir of latency samples (seconds).

    Keeps at most ``capacity`` samples via Vitter's algorithm R, so the
    retained set is a uniform sample of everything observed; quantiles
    over the reservoir estimate quantiles of the full latency stream
    without unbounded memory.  The replacement RNG is seeded, so a
    replayed request sequence yields the same reservoir.
    """

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_SIZE,
                 seed: int = 0xA5) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._samples: List[float] = []
        self._seen = 0
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        """Fold one latency sample into the reservoir."""
        value = float(seconds)
        with self._lock:
            self._seen += 1
            if len(self._samples) < self.capacity:
                self._samples.append(value)
            else:
                slot = self._rng.randrange(self._seen)
                if slot < self.capacity:
                    self._samples[slot] = value

    @property
    def n_seen(self) -> int:
        """Total samples observed (retained or not)."""
        with self._lock:
            return self._seen

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile ``q`` in [0, 100] (0.0 if empty)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        if len(samples) == 1:
            return samples[0]
        rank = (q / 100.0) * (len(samples) - 1)
        low = int(rank)
        high = min(low + 1, len(samples) - 1)
        frac = rank - low
        return samples[low] * (1.0 - frac) + samples[high] * frac

    def quantiles_ms(self) -> Dict[str, float]:
        """The dashboard trio — p50/p95/p99 in milliseconds."""
        return {
            "p50_ms": self.percentile(50.0) * 1e3,
            "p95_ms": self.percentile(95.0) * 1e3,
            "p99_ms": self.percentile(99.0) * 1e3,
        }


class ServeMetrics:
    """Counters, latency reservoir, and batch histogram for one server."""

    #: Counter names, in reporting order.
    COUNTERS = (
        "requests",
        "vectors_classified",
        "batches_executed",
        "cache_hits",
        "cache_misses",
        "shed_requests",
        "errors",
        "reloads",
    )

    def __init__(self, reservoir_size: int = DEFAULT_RESERVOIR_SIZE) -> None:
        self._counters: Dict[str, int] = {name: 0 for name in self.COUNTERS}
        self._batch_sizes: Dict[int, int] = {}
        self._lock = threading.Lock()
        self.latency = LatencyReservoir(reservoir_size)
        self._first_request: Optional[float] = None
        self._last_request: Optional[float] = None

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment one counter."""
        if name not in self._counters:
            raise KeyError(f"unknown counter {name!r}")
        with self._lock:
            self._counters[name] += int(amount)

    def count(self, name: str) -> int:
        """Current value of one counter."""
        with self._lock:
            return self._counters[name]

    def observe_request(self, latency_seconds: float,
                        n_vectors: int = 1) -> None:
        """Record one completed request and its end-to-end latency."""
        now = time.perf_counter()
        with self._lock:
            self._counters["requests"] += 1
            self._counters["vectors_classified"] += int(n_vectors)
            if self._first_request is None:
                self._first_request = now
            self._last_request = now
        self.latency.observe(latency_seconds)

    def observe_batch(self, n_rows: int) -> None:
        """Record one executed micro-batch of ``n_rows`` stacked vectors."""
        rows = int(n_rows)
        with self._lock:
            self._counters["batches_executed"] += 1
            self._batch_sizes[rows] = self._batch_sizes.get(rows, 0) + 1

    # ------------------------------------------------------------------
    # Derived rates
    # ------------------------------------------------------------------

    def qps(self) -> float:
        """Completed requests per second over the observed request span."""
        with self._lock:
            requests = self._counters["requests"]
            first, last = self._first_request, self._last_request
        if requests < 2 or first is None or last is None or last <= first:
            return 0.0
        return requests / (last - first)

    def cache_hit_rate(self) -> Optional[float]:
        """Fraction of vector lookups answered from cache (None if no lookups)."""
        with self._lock:
            hits = self._counters["cache_hits"]
            misses = self._counters["cache_misses"]
        total = hits + misses
        return hits / total if total else None

    def batch_size_histogram(self) -> Dict[int, int]:
        """Rows-per-batch -> batch count."""
        with self._lock:
            return dict(self._batch_sizes)

    def mean_batch_size(self) -> float:
        """Average rows per executed micro-batch (0.0 before any batch)."""
        with self._lock:
            total = sum(size * n for size, n in self._batch_sizes.items())
            batches = self._counters["batches_executed"]
        return total / batches if batches else 0.0

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> str:
        """Human-readable metrics block."""
        hit_rate = self.cache_hit_rate()
        quantiles = self.latency.quantiles_ms()
        lines = [
            f"requests served:   {self.count('requests')} "
            f"({self.qps():,.0f} qps)",
            f"vectors classified: {self.count('vectors_classified')}",
            f"micro-batches:     {self.count('batches_executed')} "
            f"(mean size {self.mean_batch_size():.1f})",
            f"latency:           p50 {quantiles['p50_ms']:.2f} ms, "
            f"p95 {quantiles['p95_ms']:.2f} ms, "
            f"p99 {quantiles['p99_ms']:.2f} ms",
            f"cache hit rate:    "
            + (f"{hit_rate:.1%}" if hit_rate is not None else "n/a"),
            f"shed requests:     {self.count('shed_requests')}",
            f"errors:            {self.count('errors')}",
            f"profile reloads:   {self.count('reloads')}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (same shape as StreamMetrics)."""
        with self._lock:
            counters = dict(self._counters)
            histogram = {str(k): v for k, v in sorted(self._batch_sizes.items())}
        hit_rate = self.cache_hit_rate()
        derived: Dict[str, object] = {
            "qps": self.qps(),
            "mean_batch_size": self.mean_batch_size(),
            "cache_hit_rate": hit_rate,
        }
        derived.update(self.latency.quantiles_ms())
        return {
            "counters": counters,
            "batch_size_histogram": histogram,
            "derived": derived,
        }


def merge_batch_histograms(
    histograms: Sequence[Dict[int, int]]
) -> Dict[int, int]:
    """Sum batch-size histograms from several servers into one."""
    merged: Dict[int, int] = {}
    for histogram in histograms:
        for size, count in histogram.items():
            merged[int(size)] = merged.get(int(size), 0) + int(count)
    return merged
