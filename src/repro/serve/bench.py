"""Serving throughput/latency benchmark harness.

:func:`run_serve_benchmark` drives a :class:`ProfileService` through
three workloads against one :class:`FrozenProfile` and returns a
JSON-serializable report (the CLI's ``bench-serve`` writes it to
``BENCH_serve.json``, the repo's recorded perf baseline):

* **unbatched** — single-vector queries issued strictly sequentially
  against a ``max_batch=1`` service: the no-concurrency floor;
* **batched** — the same query count submitted asynchronously (many in
  flight) against micro-batching services at several worker-pool sizes:
  demonstrates the vectorization win;
* **cached** — a hot working set replayed through the LRU+TTL cache to
  measure the hit-rate path.

Caching is disabled in the first two workloads so the speedup isolates
micro-batching, not memoization.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serve.service import ProfileService
from repro.stream.frozen import FrozenProfile

#: Worker-pool sizes the standard report sweeps.
DEFAULT_WORKER_COUNTS = (1, 4, 8)


def _derived(snapshot: Dict[str, object]) -> Dict[str, float]:
    """The snapshot's derived-latency block, shape-checked for typing."""
    derived = snapshot["derived"]
    assert isinstance(derived, dict)
    return derived


def _query_pool(frozen: FrozenProfile, n_queries: int,
                seed: int = 0) -> np.ndarray:
    """Single-vector queries cycled from the profile's own feature rows.

    Re-using training rows keeps the workload realistic (RSCA-scaled)
    and the expected answers checkable against ``frozen.vote``.
    """
    rows = np.arange(n_queries) % frozen.features.shape[0]
    rng = np.random.default_rng(seed)
    jitter = rng.normal(0.0, 1e-4, size=(n_queries, frozen.features.shape[1]))
    return np.clip(frozen.features[rows] + jitter, -1.0, 1.0)


def _bench_unbatched(frozen: FrozenProfile, queries: np.ndarray) -> Dict[str, float]:
    with ProfileService(
        frozen, max_batch=1, max_wait_ms=0.0, n_workers=1, cache_size=0,
        max_queue_depth=max(16, queries.shape[0]),
    ) as service:
        start = time.perf_counter()
        for row in range(queries.shape[0]):
            service.classify(queries[row:row + 1])
        elapsed = time.perf_counter() - start
        derived = _derived(service.metrics_snapshot())
    return {
        "qps": queries.shape[0] / elapsed,
        "elapsed_s": elapsed,
        "p50_ms": derived["p50_ms"],
        "p95_ms": derived["p95_ms"],
        "mean_batch_size": derived["mean_batch_size"],
    }


def _bench_batched(
    frozen: FrozenProfile,
    queries: np.ndarray,
    n_workers: int,
    max_batch: int,
    max_wait_ms: float,
    window: int = 512,
) -> Dict[str, float]:
    """Async single-vector submissions with a bounded in-flight window."""
    n = queries.shape[0]
    with ProfileService(
        frozen, max_batch=max_batch, max_wait_ms=max_wait_ms,
        n_workers=n_workers, cache_size=0,
        max_queue_depth=max(window * 2, 16),
    ) as service:
        start = time.perf_counter()
        pending = []
        for row in range(n):
            pending.append(service.submit(queries[row:row + 1]))
            if len(pending) >= window:
                for handle in pending:
                    handle.result(timeout=60.0)
                pending = []
        for handle in pending:
            handle.result(timeout=60.0)
        elapsed = time.perf_counter() - start
        derived = _derived(service.metrics_snapshot())
    return {
        "workers": n_workers,
        "qps": n / elapsed,
        "elapsed_s": elapsed,
        "p50_ms": derived["p50_ms"],
        "p95_ms": derived["p95_ms"],
        "mean_batch_size": derived["mean_batch_size"],
    }


def _bench_cached(
    frozen: FrozenProfile,
    queries: np.ndarray,
    hot_set: int,
    max_batch: int,
) -> Dict[str, float]:
    """Replay a small working set so most lookups hit the cache."""
    n = queries.shape[0]
    hot = queries[: max(1, min(hot_set, n))]
    with ProfileService(
        frozen, max_batch=max_batch, max_wait_ms=0.5, n_workers=2,
        cache_size=4 * hot.shape[0], max_queue_depth=max(n, 16),
    ) as service:
        start = time.perf_counter()
        for row in range(n):
            service.classify(hot[row % hot.shape[0]:row % hot.shape[0] + 1])
        elapsed = time.perf_counter() - start
        derived = _derived(service.metrics_snapshot())
    return {
        "qps": n / elapsed,
        "hit_rate": derived["cache_hit_rate"],
        "p50_ms": derived["p50_ms"],
        "p95_ms": derived["p95_ms"],
    }


def run_serve_benchmark(
    frozen: FrozenProfile,
    n_queries: int = 2000,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    max_batch: int = 64,
    max_wait_ms: float = 2.0,
    hot_set: int = 64,
    seed: int = 0,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Run the three workloads and assemble the perf report.

    Returns a dict with ``unbatched``, ``batched`` (one entry per worker
    count), ``cached`` sections plus the headline ``speedup`` =
    best batched qps / unbatched qps.
    """
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    queries = _query_pool(frozen, n_queries, seed=seed)
    unbatched = _bench_unbatched(frozen, queries)
    batched: List[Dict[str, float]] = [
        _bench_batched(frozen, queries, workers, max_batch, max_wait_ms)
        for workers in worker_counts
    ]
    cached = _bench_cached(frozen, queries, hot_set, max_batch)
    best_qps = max(entry["qps"] for entry in batched)
    report: Dict[str, object] = {
        "config": {
            "n_queries": int(n_queries),
            "worker_counts": [int(w) for w in worker_counts],
            "max_batch": int(max_batch),
            "max_wait_ms": float(max_wait_ms),
            "hot_set": int(hot_set),
            "n_reference_antennas": int(frozen.features.shape[0]),
            "n_services": int(frozen.features.shape[1]),
            "n_clusters": int(frozen.n_clusters),
        },
        "unbatched": unbatched,
        "batched": batched,
        "cached": cached,
        "speedup": best_qps / unbatched["qps"] if unbatched["qps"] else 0.0,
    }
    if extra:
        report.update(extra)
    return report


def format_report(report: Dict[str, object]) -> str:
    """Human-readable view of :func:`run_serve_benchmark`'s output."""
    config = report["config"]
    unbatched = report["unbatched"]
    batched = report["batched"]
    cached = report["cached"]
    speedup = report["speedup"]
    assert isinstance(config, dict) and isinstance(unbatched, dict)
    assert isinstance(batched, list) and isinstance(cached, dict)
    assert isinstance(speedup, (int, float))
    lines = [
        f"serve benchmark — {config['n_reference_antennas']} reference "
        f"antennas, {config['n_services']} services, "
        f"{config['n_queries']} queries",
        f"unbatched:  {unbatched['qps']:,.0f} qps "
        f"(p95 {unbatched['p95_ms']:.2f} ms)",
    ]
    for entry in batched:
        lines.append(
            f"batched x{entry['workers']}: {entry['qps']:,.0f} qps "
            f"(p95 {entry['p95_ms']:.2f} ms, "
            f"mean batch {entry['mean_batch_size']:.1f})"
        )
    hit_rate = cached["hit_rate"]
    hit_text = f"{hit_rate:.1%}" if hit_rate is not None else "n/a"
    lines.append(
        f"cached:     {cached['qps']:,.0f} qps "
        f"(hit rate {hit_text})"
    )
    lines.append(f"micro-batching speedup: {speedup:.1f}x")
    return "\n".join(lines)
