"""Micro-batching scheduler with a worker pool and admission control.

The forest vote is vastly cheaper per row when rows are stacked: one
``vote()`` over 64 vectors costs little more than one over a single
vector, because the per-tree Python overhead is paid once per batch
instead of once per query.  The :class:`MicroBatcher` exploits that —
incoming requests land on a bounded queue; each worker thread takes the
first pending request, keeps gathering until it holds ``max_batch`` rows
or ``max_wait_ms`` elapsed since the gather started, stacks the feature
rows, classifies them in one call, and scatters the labels back to the
waiting requests.

Admission control is the bounded queue itself: when the queue holds
``max_queue_depth`` requests the node is past its high-watermark and
further submissions are *shed* immediately with a suggested retry delay
(:class:`ShedRequest`) rather than queued into ever-growing latency —
fail fast and let the load balancer retry elsewhere.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import get_logger, get_registry
from repro.relia.errors import WorkerCrash
from repro.relia.faults import fault_point

#: Sentinel instructing a worker to exit.
_STOP = object()

# Rate-limited: shed/crash events arrive per-request under overload;
# 100 lines/s keeps the hot path and the sink safe (suppressed lines
# land in repro_logs_suppressed_total).
_log = get_logger("repro.serve.scheduler", sample=100.0)


class ShedRequest(RuntimeError):
    """Raised when admission control rejects a request (queue over watermark).

    Attributes:
        depth: queue depth observed at rejection.
        watermark: the configured admission limit.
        retry_after: suggested client back-off in seconds (maps to an
            HTTP ``Retry-After`` header).
    """

    def __init__(self, depth: int, watermark: int, retry_after: float) -> None:
        super().__init__(
            f"request shed: queue depth {depth} at watermark {watermark}; "
            f"retry after {retry_after:.3f}s"
        )
        self.depth = depth
        self.watermark = watermark
        self.retry_after = retry_after


class _WorkItem:
    """One submitted request: feature rows in, labels + version out."""

    __slots__ = ("features", "done", "labels", "version", "error",
                 "enqueued_at", "retries")

    def __init__(self, features: np.ndarray) -> None:
        self.features = features
        self.done = threading.Event()
        self.labels: Optional[np.ndarray] = None
        self.version: Optional[int] = None
        self.error: Optional[BaseException] = None
        self.enqueued_at = time.monotonic()
        self.retries = 0


class MicroBatcher:
    """Collect concurrent requests into vectorized classification batches.

    Args:
        classify_fn: callable ``(features) -> (labels, version)`` run once
            per batch on the stacked rows; must be thread-safe.
        max_batch: target rows per batch.  A gather stops adding requests
            once it holds at least this many rows (a single over-sized
            request still runs alone, never split).
        max_wait_ms: longest a gathered batch waits for co-riders.  Zero
            disables waiting — batches only aggregate what is already
            queued, trading throughput for minimum latency.
        n_workers: classification worker threads.
        max_queue_depth: admission watermark — queued requests beyond
            which submissions are shed.
        shed_retry_after_s: back-off suggested to shed clients.
        on_batch: optional callback ``(n_requests, n_rows)`` per executed
            batch (metrics hook).
        on_queue_wait: optional callback ``(seconds)`` per request with
            its submit-to-execution queue wait (request-lifecycle
            metrics hook).
        on_assembly: optional callback ``(seconds)`` per executed batch
            with the gather-window duration spent assembling it.
        max_item_retries: times a request held by a crashed worker is
            requeued before it is failed with :class:`WorkerCrash` —
            a request is never dropped silently either way.
        on_worker_crash: optional callback ``(worker_index, error)`` per
            worker death (health hook; called before the respawn).
    """

    def __init__(
        self,
        classify_fn: Callable[[np.ndarray], Tuple[np.ndarray, int]],
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        n_workers: int = 2,
        max_queue_depth: int = 256,
        shed_retry_after_s: float = 0.05,
        on_batch: Optional[Callable[[int, int], None]] = None,
        on_queue_wait: Optional[Callable[[float], None]] = None,
        on_assembly: Optional[Callable[[float], None]] = None,
        max_item_retries: int = 2,
        on_worker_crash: Optional[Callable[[int, BaseException], None]] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self._classify = classify_fn
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1e3
        self.n_workers = int(n_workers)
        self.max_queue_depth = int(max_queue_depth)
        self.shed_retry_after_s = float(shed_retry_after_s)
        if max_item_retries < 0:
            raise ValueError(
                f"max_item_retries must be >= 0, got {max_item_retries}"
            )
        self._on_batch = on_batch
        self._on_queue_wait = on_queue_wait
        self._on_assembly = on_assembly
        self.max_item_retries = int(max_item_retries)
        self._on_worker_crash = on_worker_crash
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.max_queue_depth)
        self._threads: List[threading.Thread] = []
        self._started = False
        self._stopped = False
        self._lifecycle = threading.Lock()
        self._next_worker = 0
        self._crashes = 0
        self._inflight: Dict[int, List[_WorkItem]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _spawn_worker(self) -> None:
        # Caller holds the lifecycle lock.
        index = self._next_worker
        self._next_worker += 1
        thread = threading.Thread(
            target=self._worker_main,
            args=(index,),
            name=f"repro-serve-worker-{index}",
            daemon=True,
        )
        thread.start()
        self._threads.append(thread)

    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        with self._lifecycle:
            if self._started:
                return
            self._started = True
            for _ in range(self.n_workers):
                self._spawn_worker()

    def stop(self, timeout: float = 5.0) -> None:
        """Drain the pool: workers finish gathered batches, then exit.

        Requests still queued when the pool exits are failed with a
        ``RuntimeError`` so no caller blocks forever.
        """
        with self._lifecycle:
            if not self._started or self._stopped:
                self._stopped = True
                return
            self._stopped = True
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout)
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                continue
            item.error = RuntimeError("micro-batcher stopped")
            item.done.set()

    def __enter__(self) -> "MicroBatcher":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def queue_depth(self) -> int:
        """Requests currently queued (approximate, racy by nature)."""
        return self._queue.qsize()

    def submit(self, features: np.ndarray) -> _WorkItem:
        """Enqueue one request; sheds when the queue is at the watermark."""
        if self._stopped:
            raise RuntimeError("micro-batcher stopped")
        if not self._started:
            raise RuntimeError("micro-batcher not started")
        item = _WorkItem(np.asarray(features, dtype=float))
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            raise ShedRequest(
                self._queue.qsize(),
                self.max_queue_depth,
                self.shed_retry_after_s,
            ) from None
        return item

    @staticmethod
    def wait(item: _WorkItem,
             timeout: Optional[float] = None) -> Tuple[np.ndarray, int]:
        """Block for one submitted request's ``(labels, version)``."""
        if not item.done.wait(timeout):
            raise TimeoutError("classification did not complete in time")
        if item.error is not None:
            raise item.error
        assert item.labels is not None and item.version is not None
        return item.labels, item.version

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------

    def _gather(self, first: _WorkItem) -> Tuple[List[_WorkItem], bool]:
        """Collect co-riders for ``first`` until rows or deadline run out."""
        batch = [first]
        rows = first.features.shape[0]
        deadline = time.monotonic() + self.max_wait_s
        saw_stop = False
        while rows < self.max_batch:
            remaining = deadline - time.monotonic()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                # Preserve the sentinel count for the other workers, then
                # let this worker finish the batch it already holds.
                self._queue.put(_STOP)
                saw_stop = True
                break
            batch.append(item)
            rows += item.features.shape[0]
        return batch, saw_stop

    def _execute(self, batch: List[_WorkItem]) -> None:
        # Hand the classifier one C-contiguous block: the compiled-forest
        # kernel's level-order gathers stride row-major through the batch.
        stacked = np.ascontiguousarray(
            batch[0].features
            if len(batch) == 1
            else np.vstack([item.features for item in batch])
        )
        try:
            labels, version = self._classify(stacked)
        except BaseException as exc:  # propagate to every waiting caller
            for item in batch:
                item.error = exc
                item.done.set()
            return
        if self._on_batch is not None:
            self._on_batch(len(batch), int(stacked.shape[0]))
        offset = 0
        for item in batch:
            rows = item.features.shape[0]
            item.labels = np.asarray(labels[offset:offset + rows])
            item.version = int(version)
            offset += rows
            item.done.set()

    def _worker_loop(self, index: int) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            self._inflight[index] = [item]
            gather_start = time.monotonic()
            batch, saw_stop = self._gather(item)
            self._inflight[index] = batch
            # Chaos hook: a crash here kills the worker while it holds a
            # gathered batch — the supervisor must requeue every member.
            fault_point("serve.worker", worker=index)
            now = time.monotonic()
            if self._on_assembly is not None:
                self._on_assembly(now - gather_start)
            if self._on_queue_wait is not None:
                for member in batch:
                    self._on_queue_wait(now - member.enqueued_at)
            self._execute(batch)
            self._inflight.pop(index, None)
            if saw_stop:
                return

    def _worker_main(self, index: int) -> None:
        """Worker entry point: run the loop, supervise its death.

        A crash (injected or real) with a gathered batch in hand must
        never drop requests silently: every in-flight item is either
        requeued for another worker (up to ``max_item_retries`` times)
        or failed with :class:`WorkerCrash` so its caller unblocks.  A
        replacement worker is spawned unless the pool is stopping.
        """
        try:
            self._worker_loop(index)
        except BaseException as exc:
            stranded = self._inflight.pop(index, [])
            with self._lifecycle:
                self._crashes += 1
                crashes = self._crashes
            get_registry().counter(
                "repro_worker_crashes_total",
                "Micro-batcher worker threads that died and were respawned",
            ).inc()
            _log.error(
                "worker_crashed", worker=index,
                error_type=type(exc).__name__, error=str(exc),
                stranded_requests=len(stranded), total_crashes=crashes,
            )
            for item in stranded:
                item.retries += 1
                if item.retries > self.max_item_retries:
                    item.error = WorkerCrash(
                        f"request abandoned after {item.retries} worker "
                        f"crashes"
                    )
                    item.done.set()
                    continue
                try:
                    self._queue.put_nowait(item)
                except queue.Full:
                    item.error = exc
                    item.done.set()
            if self._on_worker_crash is not None:
                self._on_worker_crash(index, exc)
            with self._lifecycle:
                if self._started and not self._stopped:
                    self._spawn_worker()

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------

    def alive_workers(self) -> int:
        """Worker threads currently alive."""
        with self._lifecycle:
            return sum(1 for t in self._threads if t.is_alive())

    def crash_count(self) -> int:
        """Worker deaths observed (and supervised) so far."""
        with self._lifecycle:
            return self._crashes
