"""LRU + TTL result cache keyed on quantized feature vectors.

Operators poll the same antennas on a cadence, so identical (or
float-noise-identical) RSCA vectors recur within minutes; caching the
vote per vector removes those from the classification path entirely.
Keys are built by :func:`quantize_key` — the vector rounded to a fixed
number of decimals and serialized to bytes — so two requests that differ
only below the quantization step share an entry.  Entries are evicted by
least-recent-use when the cache is full and by TTL when results must not
outlive a profile refresh cadence.

The cache itself is version-agnostic; callers namespace their keys with
the registry version (see :meth:`repro.serve.service.ProfileService`)
so a hot swap can never serve a stale vote.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional, Tuple

import numpy as np

#: Default quantization: six decimals is far below RSCA's meaningful
#: resolution (the index lives in [-1, 1]) yet absorbs float jitter.
DEFAULT_DECIMALS = 6


def quantize_key(vector: np.ndarray, decimals: int = DEFAULT_DECIMALS) -> bytes:
    """Stable bytes key of one feature vector, rounded to ``decimals``.

    Rounding collapses float jitter; adding ``0.0`` normalizes ``-0.0``
    so the two zero encodings share a key.
    """
    row = np.asarray(vector, dtype=float).ravel()
    quantized = np.round(row, int(decimals)) + 0.0
    return quantized.tobytes()


class ResultCache:
    """Thread-safe bounded mapping with LRU eviction and optional TTL.

    Args:
        maxsize: entry capacity; ``0`` disables the cache entirely
            (every ``get`` misses, ``put`` is a no-op).
        ttl_seconds: entry lifetime; None keeps entries until evicted.
        clock: monotonic time source, injectable for TTL tests.
    """

    def __init__(
        self,
        maxsize: int = 4096,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(
                f"ttl_seconds must be positive or None, got {ttl_seconds}"
            )
        self.maxsize = int(maxsize)
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: "OrderedDict[Hashable, Tuple[object, Optional[float]]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def enabled(self) -> bool:
        """False when constructed with ``maxsize=0``."""
        return self.maxsize > 0

    def get(self, key: Hashable):
        """Value for ``key``, or None on miss/expiry (touches LRU order)."""
        if not self.enabled:
            with self._lock:
                self._misses += 1
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            value, expires_at = entry
            if expires_at is not None and self._clock() >= expires_at:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        """Insert/refresh ``key``; evicts least-recently-used on overflow."""
        if not self.enabled:
            return
        expires_at = (
            self._clock() + self.ttl_seconds
            if self.ttl_seconds is not None
            else None
        )
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, expires_at)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (stats are preserved)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, object]:
        """Hit/miss/eviction/expiration counters and current size."""
        with self._lock:
            hits, misses = self._hits, self._misses
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": hits,
                "misses": misses,
                "evictions": self._evictions,
                "expirations": self._expirations,
                "hit_rate": hits / (hits + misses) if hits + misses else None,
            }
