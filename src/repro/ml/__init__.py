"""From-scratch supervised-learning substrate (trees, forest, metrics)."""

from repro.ml.tree import DecisionTreeClassifier, TreeStructure, LEAF
from repro.ml.forest import RandomForestClassifier
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.compiled import (
    CompiledForest,
    CompiledTree,
    FusedProfileKernel,
    compile_forest,
    compile_tree,
)
from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    f1_scores,
    macro_f1,
    train_test_split,
)

__all__ = [
    "DecisionTreeClassifier",
    "TreeStructure",
    "LEAF",
    "RandomForestClassifier",
    "GradientBoostingClassifier",
    "CompiledForest",
    "CompiledTree",
    "FusedProfileKernel",
    "compile_forest",
    "compile_tree",
    "accuracy",
    "confusion_matrix",
    "f1_scores",
    "macro_f1",
    "train_test_split",
]
