"""Classification metrics and data-splitting helpers for the surrogate."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def accuracy(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("cannot compute accuracy of empty arrays")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Confusion matrix C with C[i, j] = count(true == i, pred == j)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    matrix = np.zeros((labels.size, labels.size), dtype=int)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        matrix[index[t], index[p]] += 1
    return matrix


def f1_scores(y_true, y_pred, labels=None) -> np.ndarray:
    """Per-class F1 scores (0 where precision + recall is 0)."""
    if labels is None:
        labels = np.unique(np.concatenate([np.asarray(y_true), np.asarray(y_pred)]))
    matrix = confusion_matrix(y_true, y_pred, labels)
    true_pos = np.diag(matrix).astype(float)
    predicted = matrix.sum(axis=0).astype(float)
    actual = matrix.sum(axis=1).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, true_pos / predicted, 0.0)
        recall = np.where(actual > 0, true_pos / actual, 0.0)
        f1 = np.where(
            precision + recall > 0,
            2 * precision * recall / (precision + recall),
            0.0,
        )
    return f1


def macro_f1(y_true, y_pred) -> float:
    """Unweighted mean of per-class F1 scores."""
    return float(f1_scores(y_true, y_pred).mean())


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.25,
    stratify: bool = True,
    random_state: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split (x, y) into train/test parts, optionally stratified by label.

    Returns ``(x_train, x_test, y_train, y_test)``.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape[0] != y.shape[0]:
        raise ValueError(
            f"x and y disagree on sample count: {x.shape[0]} vs {y.shape[0]}"
        )
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(random_state)
    test_mask = np.zeros(x.shape[0], dtype=bool)
    if stratify:
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            n_test = max(1, int(round(members.size * test_fraction)))
            if n_test >= members.size:
                n_test = members.size - 1 if members.size > 1 else 0
            chosen = rng.choice(members, size=n_test, replace=False)
            test_mask[chosen] = True
    else:
        n_test = max(1, int(round(x.shape[0] * test_fraction)))
        chosen = rng.choice(x.shape[0], size=n_test, replace=False)
        test_mask[chosen] = True
    return x[~test_mask], x[test_mask], y[~test_mask], y[test_mask]
