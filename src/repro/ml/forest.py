"""Random-forest classifier built on the from-scratch CART trees.

The paper trains "a random forest classifier with 100 trees to infer the
antenna cluster based on the mobile service RSCA" and explains it with
TreeSHAP (Section 5.1.2).  This implementation provides bootstrap
aggregation, per-split feature subsampling, out-of-bag accuracy, and
access to the individual fitted trees for the TreeSHAP walker.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.tree import DecisionTreeClassifier
from repro.utils.checks import check_matrix
from repro.utils.rng import derive_seed


class RandomForestClassifier:
    """Bagged ensemble of CART trees with feature subsampling.

    Args:
        n_estimators: number of trees (the paper uses 100).
        max_depth: per-tree depth cap (None = unbounded).
        min_samples_leaf: minimum samples per leaf.
        max_features: features examined per split (default ``"sqrt"``).
        bootstrap: draw each tree's training set with replacement.
        random_state: master seed; per-tree seeds derive deterministically.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        random_state: Optional[int] = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = 0 if random_state is None else int(random_state)
        self.trees_: List[DecisionTreeClassifier] = []
        self.classes_: Optional[np.ndarray] = None
        self.n_features_: Optional[int] = None
        self.oob_score_: Optional[float] = None

    def fit(self, x, y, compute_oob: bool = False) -> "RandomForestClassifier":
        """Fit the ensemble; optionally compute the out-of-bag accuracy."""
        x = check_matrix(x, "x")
        y = np.asarray(y)
        if y.ndim != 1 or y.shape[0] != x.shape[0]:
            raise ValueError(
                f"y must be 1-D with one label per row of x; got {y.shape}"
            )
        self.classes_ = np.unique(y)
        self.n_features_ = x.shape[1]
        n = x.shape[0]
        self.trees_ = []
        oob_votes = (
            np.zeros((n, self.classes_.size)) if compute_oob and self.bootstrap else None
        )
        for t in range(self.n_estimators):
            seed = derive_seed(self.random_state, "tree", t)
            rng = np.random.default_rng(seed)
            if self.bootstrap:
                sample_idx = rng.integers(0, n, size=n)
            else:
                sample_idx = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=seed,
            )
            # Guard against bootstrap samples that miss a class entirely:
            # predict_proba columns must align across trees, so fit on the
            # global class set by appending one pseudo-sample per missing
            # class is avoided — instead we map tree classes into the
            # forest's class space at vote time (see predict_proba).
            tree.fit(x[sample_idx], y[sample_idx])
            self.trees_.append(tree)
            if oob_votes is not None:
                out_of_bag = np.ones(n, dtype=bool)
                out_of_bag[np.unique(sample_idx)] = False
                if np.any(out_of_bag):
                    proba = tree.predict_proba(x[out_of_bag])
                    cols = np.searchsorted(self.classes_, tree.classes_)
                    oob_votes[np.ix_(np.flatnonzero(out_of_bag), cols)] += proba
        if oob_votes is not None:
            voted = oob_votes.sum(axis=1) > 0
            if np.any(voted):
                predictions = self.classes_[np.argmax(oob_votes[voted], axis=1)]
                self.oob_score_ = float(np.mean(predictions == y[voted]))
        return self

    def _check_fitted(self) -> None:
        if not self.trees_:
            raise RuntimeError("forest is not fitted; call fit() first")

    def predict_proba(self, x) -> np.ndarray:
        """Mean class-probability estimate over all trees."""
        self._check_fitted()
        assert self.classes_ is not None
        x = check_matrix(x, "x")
        proba = np.zeros((x.shape[0], self.classes_.size))
        for tree in self.trees_:
            tree_proba = tree.predict_proba(x)
            cols = np.searchsorted(self.classes_, tree.classes_)
            proba[:, cols] += tree_proba
        return proba / len(self.trees_)

    def predict(self, x) -> np.ndarray:
        """Majority-vote class prediction."""
        self._check_fitted()
        assert self.classes_ is not None
        proba = self.predict_proba(x)
        return self.classes_[np.argmax(proba, axis=1)]

    def compile(self):
        """Export the fitted ensemble as a flat-array compiled forest.

        Returns a :class:`repro.ml.compiled.CompiledForest` whose batch
        ``predict``/``predict_proba`` are bit-identical to this object's
        but evaluate whole micro-batches with vectorized level-order
        traversal instead of per-row Python loops.
        """
        from repro.ml.compiled import compile_forest

        return compile_forest(self)

    def score(self, x, y) -> float:
        """Mean accuracy of ``predict`` on the given data."""
        y = np.asarray(y)
        return float(np.mean(self.predict(x) == y))
