"""CART decision-tree classifier, implemented from scratch.

Used as the base learner of the random-forest surrogate that the paper
trains on the clustering labels (Section 5.1.2).  The fitted tree exposes
flat node arrays (``children_left``, ``children_right``, ``feature``,
``threshold``, ``value``, ``n_node_samples``) so the TreeSHAP algorithm in
``repro.explain.treeshap`` can walk it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.checks import check_matrix

#: Sentinel for leaf nodes in the flat arrays (mirrors sklearn).
LEAF = -1


@dataclass
class TreeStructure:
    """Flat array representation of a fitted binary decision tree."""

    children_left: np.ndarray
    children_right: np.ndarray
    feature: np.ndarray
    threshold: np.ndarray
    value: np.ndarray  # (n_nodes, n_classes) class-probability vectors
    n_node_samples: np.ndarray

    @property
    def n_nodes(self) -> int:
        return self.children_left.shape[0]

    def is_leaf(self, node: int) -> bool:
        return self.children_left[node] == LEAF

    def max_depth(self) -> int:
        """Depth of the deepest leaf (root = depth 0)."""
        depth = 0
        stack: List[Tuple[int, int]] = [(0, 0)]
        while stack:
            node, d = stack.pop()
            depth = max(depth, d)
            if not self.is_leaf(node):
                stack.append((int(self.children_left[node]), d + 1))
                stack.append((int(self.children_right[node]), d + 1))
        return depth


def _gini_for_splits(
    class_counts_left: np.ndarray, class_counts_total: np.ndarray
) -> np.ndarray:
    """Weighted Gini impurity of every candidate split, vectorized.

    Args:
        class_counts_left: (n_candidates, n_classes) counts left of each
            candidate threshold.
        class_counts_total: (n_classes,) counts at the node.

    Returns:
        (n_candidates,) weighted impurity (lower is better).
    """
    total = class_counts_total.sum()
    left_sizes = class_counts_left.sum(axis=1)
    right_counts = class_counts_total[None, :] - class_counts_left
    right_sizes = total - left_sizes
    with np.errstate(divide="ignore", invalid="ignore"):
        gini_left = 1.0 - np.sum(
            (class_counts_left / left_sizes[:, None]) ** 2, axis=1
        )
        gini_right = 1.0 - np.sum(
            (right_counts / right_sizes[:, None]) ** 2, axis=1
        )
    gini_left = np.where(left_sizes > 0, gini_left, 0.0)
    gini_right = np.where(right_sizes > 0, gini_right, 0.0)
    return (left_sizes * gini_left + right_sizes * gini_right) / total


class DecisionTreeClassifier:
    """Binary-split CART classifier with Gini impurity.

    Args:
        max_depth: maximum tree depth (None = grow until pure/exhausted).
        min_samples_split: minimum node size eligible for splitting.
        min_samples_leaf: minimum samples required in each child.
        max_features: number of features examined per split; ``"sqrt"``
            (the random-forest default), an int, or None for all features.
        random_state: seed for per-split feature subsampling.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state: Optional[int] = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise ValueError(f"min_samples_split must be >= 2, got {min_samples_split}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.tree_: Optional[TreeStructure] = None
        self.classes_: Optional[np.ndarray] = None
        self.n_features_: Optional[int] = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(self.max_features, (int, np.integer)):
            if not 1 <= self.max_features <= n_features:
                raise ValueError(
                    f"max_features must be in [1, {n_features}], got {self.max_features}"
                )
            return int(self.max_features)
        raise ValueError(f"unsupported max_features {self.max_features!r}")

    def _best_split(
        self,
        x: np.ndarray,
        y_codes: np.ndarray,
        sample_idx: np.ndarray,
        feature_candidates: np.ndarray,
        n_classes: int,
    ) -> Optional[Tuple[int, float, np.ndarray]]:
        """Search candidate features for the impurity-minimizing split.

        Returns ``(feature, threshold, left_mask_over_sample_idx)`` or None
        when no valid split exists.
        """
        node_y = y_codes[sample_idx]
        counts_total = np.bincount(node_y, minlength=n_classes).astype(float)
        best: Optional[Tuple[float, int, float]] = None
        for feat in feature_candidates:
            values = x[sample_idx, feat]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            sorted_y = node_y[order]
            # Candidate boundaries: positions where the value changes.
            change = np.flatnonzero(np.diff(sorted_values)) + 1
            if change.size == 0:
                continue
            onehot = np.zeros((sorted_y.size, n_classes))
            onehot[np.arange(sorted_y.size), sorted_y] = 1.0
            cum = np.cumsum(onehot, axis=0)
            left_counts = cum[change - 1]
            left_sizes = change
            right_sizes = sorted_y.size - left_sizes
            valid = (left_sizes >= self.min_samples_leaf) & (
                right_sizes >= self.min_samples_leaf
            )
            if not np.any(valid):
                continue
            impurity = _gini_for_splits(left_counts, counts_total)
            impurity = np.where(valid, impurity, np.inf)
            pos = int(np.argmin(impurity))
            if not np.isfinite(impurity[pos]):
                continue
            boundary = change[pos]
            threshold = 0.5 * (sorted_values[boundary - 1] + sorted_values[boundary])
            if best is None or impurity[pos] < best[0]:
                best = (float(impurity[pos]), int(feat), float(threshold))
        if best is None:
            return None
        _, feat, threshold = best
        left_mask = x[sample_idx, feat] <= threshold
        return feat, threshold, left_mask

    def fit(self, x, y) -> "DecisionTreeClassifier":
        """Fit the tree on features ``x`` (N x M) and labels ``y`` (N)."""
        x = check_matrix(x, "x")
        y = np.asarray(y)
        if y.ndim != 1 or y.shape[0] != x.shape[0]:
            raise ValueError(
                f"y must be 1-D with one label per row of x; got {y.shape}"
            )
        self.classes_, y_codes = np.unique(y, return_inverse=True)
        n_classes = self.classes_.size
        self.n_features_ = x.shape[1]
        rng = np.random.default_rng(self.random_state)
        n_subfeatures = self._resolve_max_features(x.shape[1])

        children_left: List[int] = []
        children_right: List[int] = []
        feature: List[int] = []
        threshold: List[float] = []
        value: List[np.ndarray] = []
        n_node_samples: List[int] = []

        def new_node(sample_idx: np.ndarray) -> int:
            node_id = len(children_left)
            children_left.append(LEAF)
            children_right.append(LEAF)
            feature.append(LEAF)
            threshold.append(0.0)
            counts = np.bincount(y_codes[sample_idx], minlength=n_classes).astype(float)
            value.append(counts / counts.sum())
            n_node_samples.append(int(sample_idx.size))
            return node_id

        # Iterative depth-first growth.
        root_idx = np.arange(x.shape[0])
        stack: List[Tuple[int, np.ndarray, int]] = [(new_node(root_idx), root_idx, 0)]
        while stack:
            node_id, sample_idx, depth = stack.pop()
            node_y = y_codes[sample_idx]
            if (
                sample_idx.size < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or np.all(node_y == node_y[0])
            ):
                continue
            if n_subfeatures < x.shape[1]:
                candidates = rng.choice(x.shape[1], size=n_subfeatures, replace=False)
            else:
                candidates = np.arange(x.shape[1])
            split = self._best_split(x, y_codes, sample_idx, candidates, n_classes)
            if split is None:
                continue
            feat, thresh, left_mask = split
            left_idx = sample_idx[left_mask]
            right_idx = sample_idx[~left_mask]
            left_id = new_node(left_idx)
            right_id = new_node(right_idx)
            children_left[node_id] = left_id
            children_right[node_id] = right_id
            feature[node_id] = feat
            threshold[node_id] = thresh
            stack.append((left_id, left_idx, depth + 1))
            stack.append((right_id, right_idx, depth + 1))

        self.tree_ = TreeStructure(
            children_left=np.array(children_left, dtype=np.int64),
            children_right=np.array(children_right, dtype=np.int64),
            feature=np.array(feature, dtype=np.int64),
            threshold=np.array(threshold, dtype=float),
            value=np.vstack(value),
            n_node_samples=np.array(n_node_samples, dtype=np.int64),
        )
        return self

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def _check_fitted(self) -> TreeStructure:
        if self.tree_ is None:
            raise RuntimeError("tree is not fitted; call fit() first")
        return self.tree_

    def decision_path_leaf(self, x: np.ndarray) -> np.ndarray:
        """Leaf node index reached by each row of ``x``."""
        tree = self._check_fitted()
        x = check_matrix(x, "x")
        if x.shape[1] != self.n_features_:
            raise ValueError(
                f"x has {x.shape[1]} features, the tree was fitted on "
                f"{self.n_features_}"
            )
        leaves = np.zeros(x.shape[0], dtype=np.int64)
        for i in range(x.shape[0]):
            node = 0
            while not tree.is_leaf(node):
                if x[i, tree.feature[node]] <= tree.threshold[node]:
                    node = int(tree.children_left[node])
                else:
                    node = int(tree.children_right[node])
            leaves[i] = node
        return leaves

    def predict_proba(self, x) -> np.ndarray:
        """Class-probability estimates (leaf class frequencies)."""
        tree = self._check_fitted()
        leaves = self.decision_path_leaf(np.asarray(x, dtype=float))
        return tree.value[leaves]

    def predict(self, x) -> np.ndarray:
        """Predicted class labels."""
        self._check_fitted()
        assert self.classes_ is not None
        proba = self.predict_proba(x)
        return self.classes_[np.argmax(proba, axis=1)]

    def compile(self, classes: Optional[np.ndarray] = None):
        """Export the fitted tree as a :class:`repro.ml.compiled.CompiledTree`.

        Args:
            classes: optional target class space (a sorted superset of
                this tree's classes) for the leaf distributions; used by
                :func:`repro.ml.compiled.compile_forest` to align every
                tree to the forest's classes.
        """
        from repro.ml.compiled import compile_tree

        return compile_tree(self, classes)
