"""Forest-inference benchmark: object-graph trees vs the compiled kernel.

:func:`run_forest_benchmark` measures raw classification throughput of a
:class:`~repro.stream.frozen.FrozenProfile`'s surrogate on both inference
paths — the per-row Python tree walk (:meth:`FrozenProfile.vote`) and the
array-compiled batch kernel (:meth:`FrozenProfile.kernel`) — across a
sweep of micro-batch sizes, plus the fused raw-volume path when the
profile carries ``service_totals``.  The CLI's ``bench-forest`` writes
the report to ``BENCH_forest.json``, the repo's committed kernel-speedup
baseline that CI guards via ``scripts/bench_compare.py --spec``.

Before timing anything the harness proves the kernel is **bit-identical**
to the object forest on the benchmark queries (``predict_proba``,
``predict``, and the full centroid+forest vote) and refuses to record a
speedup for a kernel that is not exactly the model it replaced.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.ml.compiled import compiled_equivalent
from repro.stream.frozen import FrozenProfile

__all__ = [
    "DEFAULT_BATCH_SIZES",
    "run_forest_benchmark",
    "format_forest_report",
]

#: Micro-batch sizes the standard report sweeps.
DEFAULT_BATCH_SIZES = (1, 64, 256)


def _query_pool(frozen: FrozenProfile, n_queries: int,
                seed: int = 0) -> np.ndarray:
    """RSCA queries cycled from the profile's own rows (plus tiny jitter)."""
    rows = np.arange(n_queries) % frozen.features.shape[0]
    rng = np.random.default_rng(seed)
    jitter = rng.normal(0.0, 1e-4, size=(n_queries, frozen.features.shape[1]))
    return np.clip(frozen.features[rows] + jitter, -1.0, 1.0)


def _volume_pool(frozen: FrozenProfile, n_queries: int,
                 seed: int = 0) -> np.ndarray:
    """Raw per-service volumes shaped like the reference mix."""
    assert frozen.service_totals is not None
    rng = np.random.default_rng(seed)
    shares = frozen.service_totals / frozen.service_totals.sum()
    scale = rng.lognormal(0.0, 0.5, size=(n_queries, 1))
    noise = rng.lognormal(0.0, 0.3, size=(n_queries, shares.size))
    return 1e6 * scale * shares[None, :] * noise


def _best_rate(
    fn: Callable[[np.ndarray], np.ndarray],
    queries: np.ndarray,
    batch_size: int,
    repeats: int,
) -> float:
    """Best rows/s over ``repeats`` full passes in ``batch_size`` chunks."""
    n = queries.shape[0]
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        for lo in range(0, n, batch_size):
            fn(queries[lo:lo + batch_size])
        best = min(best, time.perf_counter() - start)
    return n / best if best > 0 else float("inf")


def run_forest_benchmark(
    frozen: FrozenProfile,
    n_queries: int = 512,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    repeats: int = 2,
    seed: int = 0,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Measure object-vs-compiled vote throughput and assemble the report.

    Returns a dict with a ``config`` block, an ``equivalence`` block
    (the bit-identity proof), one ``batches`` entry per batch size
    (object and compiled rows/s plus their ratio), an optional
    ``fused_volume`` block, and the headline ``speedup`` — the
    compiled/object ratio at the largest batch size.

    Raises:
        ValueError: on nonsensical parameters.
        RuntimeError: when the compiled kernel is **not** bit-identical
            to the object forest on the benchmark queries — a kernel
            that changes answers must never produce a committed speedup.
    """
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    if not batch_sizes or any(int(b) < 1 for b in batch_sizes):
        raise ValueError(f"batch_sizes must be positive, got {batch_sizes}")
    batch_sizes = sorted(int(b) for b in batch_sizes)
    queries = _query_pool(frozen, n_queries, seed=seed)
    kernel = frozen.kernel()

    ok, detail = compiled_equivalent(frozen.surrogate, kernel.forest, queries)
    votes_identical = bool(
        np.array_equal(kernel.vote(queries), frozen.vote(queries))
    )
    if not (ok and votes_identical):
        raise RuntimeError(
            f"compiled kernel is not bit-identical to the object forest "
            f"({detail}; votes_identical={votes_identical}) — refusing to "
            f"record a speedup for a kernel that changes answers"
        )

    batches: List[Dict[str, float]] = []
    for batch_size in batch_sizes:
        object_rate = _best_rate(frozen.vote, queries, batch_size, repeats)
        compiled_rate = _best_rate(kernel.vote, queries, batch_size, repeats)
        batches.append({
            "batch_size": int(batch_size),
            "object_rows_per_s": object_rate,
            "compiled_rows_per_s": compiled_rate,
            "speedup": compiled_rate / object_rate if object_rate else 0.0,
        })

    fused: Optional[Dict[str, float]] = None
    if frozen.service_totals is not None:
        volumes = _volume_pool(frozen, n_queries, seed=seed)
        largest = batch_sizes[-1]
        object_chain = lambda v: frozen.vote(frozen.rsca_of_volumes(v))  # noqa: E731
        object_rate = _best_rate(object_chain, volumes, largest, repeats)
        compiled_rate = _best_rate(
            kernel.vote_volumes, volumes, largest, repeats
        )
        fused = {
            "batch_size": int(largest),
            "object_rows_per_s": object_rate,
            "compiled_rows_per_s": compiled_rate,
            "speedup": compiled_rate / object_rate if object_rate else 0.0,
        }

    forest = kernel.forest
    report: Dict[str, object] = {
        "config": {
            "n_queries": int(n_queries),
            "batch_sizes": [int(b) for b in batch_sizes],
            "repeats": int(repeats),
            "n_reference_antennas": int(frozen.features.shape[0]),
            "n_services": int(frozen.features.shape[1]),
            "n_clusters": int(frozen.n_clusters),
            "n_trees": int(forest.n_trees),
            "n_nodes": int(forest.n_nodes),
            "max_tree_depth": int(forest.max_depth),
        },
        "equivalence": {
            "bit_identical": bool(ok),
            "votes_identical": votes_identical,
            "detail": detail,
            "n_rows": int(n_queries),
        },
        "batches": batches,
        "speedup": batches[-1]["speedup"],
    }
    if fused is not None:
        report["fused_volume"] = fused
    if extra:
        report.update(extra)
    return report


def _rate_line(label: str, entry: Dict[str, float]) -> str:
    return (
        f"{label}: "
        f"object {entry['object_rows_per_s']:>10,.0f} rows/s | "
        f"compiled {entry['compiled_rows_per_s']:>12,.0f} rows/s | "
        f"{entry['speedup']:.1f}x"
    )


def format_forest_report(report: Dict[str, object]) -> str:
    """Human-readable view of :func:`run_forest_benchmark`'s output."""
    config = report["config"]
    batches = report["batches"]
    assert isinstance(config, dict) and isinstance(batches, list)
    lines = [
        f"forest benchmark — {config['n_reference_antennas']} reference "
        f"antennas, {config['n_trees']} trees "
        f"({config['n_nodes']} nodes, "
        f"max depth {config['max_tree_depth']}), "
        f"{config['n_queries']} queries",
    ]
    for entry in batches:
        lines.append(_rate_line(f"batch {int(entry['batch_size']):>4}", entry))
    fused = report.get("fused_volume")
    if isinstance(fused, dict):
        lines.append(
            _rate_line(f"fused volumes->vote (batch {int(fused['batch_size'])})",
                       fused)
        )
    speedup = report["speedup"]
    assert isinstance(speedup, (int, float))
    lines.append(f"compiled-kernel speedup: {speedup:.1f}x")
    return "\n".join(lines)
