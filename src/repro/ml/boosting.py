"""Gradient-boosted decision trees (multiclass, log-loss).

The paper's TreeSHAP reference covers "tree-based ML algorithms such as
random forests or XGBoost"; this module provides the boosted alternative
so the surrogate choice can be ablated.  Implementation: multinomial
gradient boosting with softmax outputs — each round fits one regression
tree per class to the negative log-loss gradient, with leaf values set by
the standard Newton step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.checks import check_matrix
from repro.utils.rng import derive_seed


@dataclass
class _RegressionTree:
    """A small regression tree on residuals, with Newton leaf values."""

    children_left: np.ndarray
    children_right: np.ndarray
    feature: np.ndarray
    threshold: np.ndarray
    leaf_value: np.ndarray

    def predict(self, x: np.ndarray) -> np.ndarray:
        out = np.empty(x.shape[0])
        for i in range(x.shape[0]):
            node = 0
            while self.children_left[node] != -1:
                if x[i, self.feature[node]] <= self.threshold[node]:
                    node = int(self.children_left[node])
                else:
                    node = int(self.children_right[node])
            out[i] = self.leaf_value[node]
        return out


def _fit_regression_tree(
    x: np.ndarray,
    gradient: np.ndarray,
    hessian: np.ndarray,
    max_depth: int,
    min_samples_leaf: int,
    rng: np.random.Generator,
    max_features: int,
) -> _RegressionTree:
    """Fit one gradient tree: split on variance of the gradient target."""
    children_left: List[int] = []
    children_right: List[int] = []
    feature: List[int] = []
    threshold: List[float] = []
    leaf_value: List[float] = []

    def newton_value(idx: np.ndarray) -> float:
        h = hessian[idx].sum()
        if h <= 1e-12:
            return 0.0
        return float(-gradient[idx].sum() / h)

    def new_node(idx: np.ndarray) -> int:
        node = len(children_left)
        children_left.append(-1)
        children_right.append(-1)
        feature.append(-1)
        threshold.append(0.0)
        leaf_value.append(newton_value(idx))
        return node

    stack: List[Tuple[int, np.ndarray, int]] = []
    root_idx = np.arange(x.shape[0])
    stack.append((new_node(root_idx), root_idx, 0))
    while stack:
        node, idx, depth = stack.pop()
        if depth >= max_depth or idx.size < 2 * min_samples_leaf:
            continue
        target = gradient[idx]
        best = None
        candidates = rng.choice(
            x.shape[1], size=min(max_features, x.shape[1]), replace=False
        )
        for feat in candidates:
            values = x[idx, feat]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            sorted_target = target[order]
            change = np.flatnonzero(np.diff(sorted_values)) + 1
            if change.size == 0:
                continue
            prefix = np.cumsum(sorted_target)
            prefix_sq = np.cumsum(sorted_target ** 2)
            total, total_sq = prefix[-1], prefix_sq[-1]
            n = sorted_target.size
            left_n = change
            right_n = n - left_n
            valid = (left_n >= min_samples_leaf) & (right_n >= min_samples_leaf)
            if not np.any(valid):
                continue
            left_sum = prefix[change - 1]
            left_sq = prefix_sq[change - 1]
            sse = (
                (left_sq - left_sum ** 2 / left_n)
                + ((total_sq - left_sq) - (total - left_sum) ** 2 / right_n)
            )
            sse = np.where(valid, sse, np.inf)
            pos = int(np.argmin(sse))
            if not np.isfinite(sse[pos]):
                continue
            if best is None or sse[pos] < best[0]:
                boundary = change[pos]
                thr = 0.5 * (sorted_values[boundary - 1] + sorted_values[boundary])
                best = (float(sse[pos]), int(feat), thr)
        if best is None:
            continue
        _, feat, thr = best
        left_mask = x[idx, feat] <= thr
        left_idx, right_idx = idx[left_mask], idx[~left_mask]
        left_id, right_id = new_node(left_idx), new_node(right_idx)
        children_left[node] = left_id
        children_right[node] = right_id
        feature[node] = feat
        threshold[node] = thr
        stack.append((left_id, left_idx, depth + 1))
        stack.append((right_id, right_idx, depth + 1))

    return _RegressionTree(
        children_left=np.array(children_left, dtype=np.int64),
        children_right=np.array(children_right, dtype=np.int64),
        feature=np.array(feature, dtype=np.int64),
        threshold=np.array(threshold, dtype=float),
        leaf_value=np.array(leaf_value, dtype=float),
    )


class GradientBoostingClassifier:
    """Multinomial gradient boosting with shallow regression trees.

    Args:
        n_estimators: boosting rounds (each fits one tree per class).
        learning_rate: shrinkage applied to every tree's contribution.
        max_depth: depth of the per-round regression trees.
        min_samples_leaf: minimum samples per leaf.
        subsample: row-sampling fraction per round (stochastic boosting).
        random_state: seed.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        random_state: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError(
                f"learning_rate must be in (0, 1], got {learning_rate}"
            )
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state
        self.classes_: Optional[np.ndarray] = None
        self.n_features_: Optional[int] = None
        self._trees: List[List[_RegressionTree]] = []
        self._base_score: Optional[np.ndarray] = None

    def fit(self, x, y) -> "GradientBoostingClassifier":
        x = check_matrix(x, "x")
        y = np.asarray(y)
        if y.ndim != 1 or y.shape[0] != x.shape[0]:
            raise ValueError(
                f"y must be 1-D with one label per row of x, got {y.shape}"
            )
        self.classes_, codes = np.unique(y, return_inverse=True)
        n_classes = self.classes_.size
        self.n_features_ = x.shape[1]
        n = x.shape[0]
        onehot = np.zeros((n, n_classes))
        onehot[np.arange(n), codes] = 1.0
        # Base score: log class priors.
        priors = np.clip(onehot.mean(axis=0), 1e-12, None)
        self._base_score = np.log(priors)
        scores = np.tile(self._base_score, (n, 1))
        self._trees = []
        max_features = x.shape[1]
        for round_idx in range(self.n_estimators):
            rng = np.random.default_rng(
                derive_seed(self.random_state, "boost", round_idx)
            )
            exp = np.exp(scores - scores.max(axis=1, keepdims=True))
            proba = exp / exp.sum(axis=1, keepdims=True)
            gradient = proba - onehot  # dL/dscore
            hessian = proba * (1.0 - proba)
            if self.subsample < 1.0:
                chosen = rng.random(n) < self.subsample
                if not np.any(chosen):
                    chosen[rng.integers(n)] = True
            else:
                chosen = np.ones(n, dtype=bool)
            round_trees: List[_RegressionTree] = []
            for c in range(n_classes):
                tree = _fit_regression_tree(
                    x[chosen],
                    gradient[chosen, c],
                    hessian[chosen, c],
                    self.max_depth,
                    self.min_samples_leaf,
                    rng,
                    max_features,
                )
                round_trees.append(tree)
                scores[:, c] += self.learning_rate * tree.predict(x)
            self._trees.append(round_trees)
        return self

    def decision_scores(self, x) -> np.ndarray:
        """Raw additive scores before the softmax."""
        if self._base_score is None:
            raise RuntimeError("model is not fitted; call fit() first")
        x = check_matrix(x, "x")
        if x.shape[1] != self.n_features_:
            raise ValueError(
                f"x has {x.shape[1]} features, the model was fitted on "
                f"{self.n_features_}"
            )
        scores = np.tile(self._base_score, (x.shape[0], 1))
        for round_trees in self._trees:
            for c, tree in enumerate(round_trees):
                scores[:, c] += self.learning_rate * tree.predict(x)
        return scores

    def predict_proba(self, x) -> np.ndarray:
        """Softmax class probabilities."""
        scores = self.decision_scores(x)
        exp = np.exp(scores - scores.max(axis=1, keepdims=True))
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, x) -> np.ndarray:
        """Most probable class labels."""
        scores = self.decision_scores(x)
        assert self.classes_ is not None  # decision_scores checked fitted
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, x, y) -> float:
        """Mean accuracy on (x, y)."""
        return float(np.mean(self.predict(x) == np.asarray(y)))
