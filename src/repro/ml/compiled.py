"""Array-compiled forests: vectorized, bit-identical inference kernels.

The object-graph trees of :mod:`repro.ml.tree` are walked one row at a
time in Python — fine for fitting-time diagnostics, hopeless on the
serving hot path (``BENCH_serve.json`` shows the thread pool saturating
around ~2,000 qps because every vote is GIL-bound Python).  This module
compiles a fitted :class:`~repro.ml.forest.RandomForestClassifier` into
flat numpy arrays and evaluates whole micro-batches with vectorized
level-order traversal:

* every tree's ``feature`` / ``threshold`` / child-index vectors are
  stacked forest-wide with per-tree node offsets, leaves marked by a
  ``feature`` of :data:`~repro.ml.tree.LEAF` and turned into self-loops
  so the traversal needs no masking;
* one ``(rows, trees)`` node-index matrix descends all trees over all
  rows simultaneously, one gather per tree level instead of one Python
  branch per (row, tree, level);
* leaf class distributions are pre-expanded into the forest's class
  space, so the vote accumulates tree-by-tree exactly like the object
  forest — the compiled probabilities are **bit-identical** to
  :meth:`RandomForestClassifier.predict_proba` (asserted in tests and
  by the ``bench-forest`` harness).

:class:`FusedProfileKernel` extends the same idea across the serving
request: raw per-service volumes -> RSCA features -> forest + centroid
vote in one pass over contiguous arrays, reproducing
:meth:`repro.stream.frozen.FrozenProfile.vote` bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.rca import rca_from_components, rsca_from_rca
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import LEAF, DecisionTreeClassifier
from repro.utils.checks import check_matrix

__all__ = [
    "CompiledTree",
    "CompiledForest",
    "FusedProfileKernel",
    "compile_tree",
    "compile_forest",
]


@dataclass(frozen=True)
class CompiledTree:
    """One tree's flat arrays, with leaf values in a target class space.

    Attributes:
        feature: per-node split feature index (:data:`LEAF` at leaves).
        threshold: per-node split threshold (0.0 at leaves).
        left: per-node left-child index; leaves self-loop.
        right: per-node right-child index; leaves self-loop.
        values: (n_nodes, n_classes) class distributions expanded into
            the *forest's* class space (zero outside the tree's own
            classes), so accumulating them reproduces the object
            forest's column-scattered vote bit-for-bit.
        max_depth: depth of the deepest leaf (root = 0).
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    values: np.ndarray
    max_depth: int

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])


def compile_tree(
    tree: DecisionTreeClassifier, classes: Optional[np.ndarray] = None
) -> CompiledTree:
    """Flatten one fitted tree into traversal arrays.

    Args:
        tree: a fitted :class:`DecisionTreeClassifier`.
        classes: target class space for the leaf distributions; defaults
            to the tree's own ``classes_``.  Must be a sorted superset
            of the tree's classes (as produced by ``np.unique``).

    Raises:
        RuntimeError: when the tree is not fitted.
        ValueError: when the tree's classes are not all in ``classes``.
    """
    structure = tree.tree_
    if structure is None or tree.classes_ is None:
        raise RuntimeError("tree is not fitted; call fit() first")
    if classes is None:
        classes = tree.classes_
    classes = np.asarray(classes)
    cols = np.searchsorted(classes, tree.classes_)
    valid = (cols < classes.size) & (classes[np.clip(cols, 0, classes.size - 1)]
                                     == tree.classes_)
    if not np.all(valid):
        missing = tree.classes_[~valid]
        raise ValueError(
            f"tree classes {missing.tolist()} are absent from the target "
            f"class space {classes.tolist()}"
        )
    node_ids = np.arange(structure.n_nodes, dtype=np.int64)
    is_leaf = structure.children_left == LEAF
    left = np.where(is_leaf, node_ids, structure.children_left).astype(np.int64)
    right = np.where(is_leaf, node_ids, structure.children_right).astype(np.int64)
    values = np.zeros((structure.n_nodes, classes.size))
    values[:, cols] = structure.value
    return CompiledTree(
        feature=structure.feature.astype(np.int64),
        threshold=structure.threshold.astype(float),
        left=left,
        right=right,
        values=values,
        max_depth=structure.max_depth(),
    )


@dataclass(frozen=True)
class CompiledForest:
    """A whole forest as stacked flat arrays, ready for batch traversal.

    All per-node vectors are concatenated tree after tree; ``roots``
    holds each tree's node offset.  Child indices are absolute (offset
    already applied) and leaves self-loop, so the level-order descent is
    a chain of unconditional gathers.

    Attributes:
        classes: the forest's sorted class labels.
        n_features: feature count the forest was fitted on.
        feature: (total_nodes,) split feature per node, ``LEAF`` at leaves.
        threshold: (total_nodes,) split thresholds.
        left: (total_nodes,) absolute left-child index (self-loop at leaves).
        right: (total_nodes,) absolute right-child index (self-loop at leaves).
        values: (total_nodes, n_classes) class distributions in forest space.
        roots: (n_trees,) root node index of each tree.
        max_depth: deepest leaf across all trees.
    """

    classes: np.ndarray
    n_features: int
    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    values: np.ndarray
    roots: np.ndarray
    max_depth: int

    @property
    def n_trees(self) -> int:
        return int(self.roots.shape[0])

    @property
    def n_classes(self) -> int:
        return int(self.classes.shape[0])

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def _check_features(self, x) -> np.ndarray:
        x = check_matrix(x, "x")
        if x.shape[1] != self.n_features:
            raise ValueError(
                f"x has {x.shape[1]} features, the forest was fitted on "
                f"{self.n_features}"
            )
        return x

    def leaf_indices(self, x: np.ndarray) -> np.ndarray:
        """Absolute leaf node reached by every (row, tree) pair.

        Vectorized level-order descent: a ``(rows, trees)`` node matrix
        starts at the roots and takes one gathered step per tree level.
        Rows that reached a leaf self-loop, so no masking is needed for
        correctness — only for the early exit.
        """
        x = self._check_features(x)
        n_rows = x.shape[0]
        node = np.repeat(self.roots[None, :], n_rows, axis=0)
        row_index = np.arange(n_rows)[:, None]
        for _ in range(self.max_depth):
            feat = self.feature[node]
            interior = feat >= 0
            if not interior.any():
                break
            queried = x[row_index, np.where(interior, feat, 0)]
            go_left = queried <= self.threshold[node]
            node = np.where(go_left, self.left[node], self.right[node])
        return node

    def predict_proba(self, x) -> np.ndarray:
        """Mean class-probability estimate, bit-identical to the object forest.

        The per-tree accumulation runs in tree order with leaf values
        pre-expanded to the forest class space, so every float add
        matches :meth:`RandomForestClassifier.predict_proba` exactly.
        """
        leaves = self.leaf_indices(x)
        proba = np.zeros((leaves.shape[0], self.n_classes))
        for t in range(self.n_trees):
            proba += self.values[leaves[:, t]]
        return proba / self.n_trees

    def predict(self, x) -> np.ndarray:
        """Majority-vote class prediction (ties break like the object forest)."""
        proba = self.predict_proba(x)
        return self.classes[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------------
    # Serialization (``.npz`` embedding inside FrozenProfile artifacts)
    # ------------------------------------------------------------------

    def to_arrays(self, prefix: str = "compiled_") -> Dict[str, np.ndarray]:
        """Flat-array dict for ``np.savez`` embedding (no pickling)."""
        return {
            f"{prefix}classes": self.classes,
            f"{prefix}feature": self.feature,
            f"{prefix}threshold": self.threshold,
            f"{prefix}left": self.left,
            f"{prefix}right": self.right,
            f"{prefix}values": self.values,
            f"{prefix}roots": self.roots,
            f"{prefix}shape": np.array(
                [self.n_features, self.max_depth], dtype=np.int64
            ),
        }

    @classmethod
    def from_arrays(
        cls, arrays, prefix: str = "compiled_"
    ) -> "CompiledForest":
        """Rebuild a compiled forest from :meth:`to_arrays` output.

        Accepts any mapping supporting ``arrays[key]`` (a dict or an
        open ``np.load`` archive).
        """
        shape = np.asarray(arrays[f"{prefix}shape"], dtype=np.int64)
        return cls(
            classes=np.asarray(arrays[f"{prefix}classes"]),
            n_features=int(shape[0]),
            feature=np.asarray(arrays[f"{prefix}feature"], dtype=np.int64),
            threshold=np.asarray(arrays[f"{prefix}threshold"], dtype=float),
            left=np.asarray(arrays[f"{prefix}left"], dtype=np.int64),
            right=np.asarray(arrays[f"{prefix}right"], dtype=np.int64),
            values=np.asarray(arrays[f"{prefix}values"], dtype=float),
            roots=np.asarray(arrays[f"{prefix}roots"], dtype=np.int64),
            max_depth=int(shape[1]),
        )


def compile_forest(forest: RandomForestClassifier) -> CompiledForest:
    """Stack a fitted forest's trees into one :class:`CompiledForest`.

    Raises:
        RuntimeError: when the forest is not fitted.
    """
    if not forest.trees_ or forest.classes_ is None:
        raise RuntimeError("forest is not fitted; call fit() first")
    classes = np.asarray(forest.classes_)
    compiled = [compile_tree(tree, classes) for tree in forest.trees_]
    roots = np.zeros(len(compiled), dtype=np.int64)
    offset = 0
    features = []
    thresholds = []
    lefts = []
    rights = []
    values = []
    for index, tree in enumerate(compiled):
        roots[index] = offset
        features.append(tree.feature)
        thresholds.append(tree.threshold)
        lefts.append(tree.left + offset)
        rights.append(tree.right + offset)
        values.append(tree.values)
        offset += tree.n_nodes
    n_features = forest.n_features_
    assert n_features is not None
    return CompiledForest(
        classes=classes,
        n_features=int(n_features),
        feature=np.concatenate(features),
        threshold=np.concatenate(thresholds),
        left=np.concatenate(lefts),
        right=np.concatenate(rights),
        values=np.ascontiguousarray(np.vstack(values)),
        roots=roots,
        max_depth=max(tree.max_depth for tree in compiled),
    )


class FusedProfileKernel:
    """One-pass serving kernel: volumes -> RSCA -> forest + centroid vote.

    Bundles everything a serve batch needs — the compiled forest, the
    reference centroids/clusters, the column mapping from forest classes
    into cluster space, and the frozen service totals — so a raw-volume
    request is answered with one chain of contiguous-array operations
    and zero object-graph walks.  Every output is bit-identical to the
    corresponding :class:`~repro.stream.frozen.FrozenProfile` method
    (``vote``, ``rsca_of_volumes``), which the equivalence suite and the
    ``bench-forest`` harness both assert.

    Args:
        forest: the compiled surrogate forest.
        clusters: sorted distinct cluster labels of the reference
            partition (length K).
        centroids: K x M per-cluster mean RSCA rows.
        service_totals: optional length-M reference per-service totals;
            required for the raw-volume entry points.
    """

    def __init__(
        self,
        forest: CompiledForest,
        clusters: np.ndarray,
        centroids: np.ndarray,
        service_totals: Optional[np.ndarray] = None,
    ) -> None:
        self.forest = forest
        self.clusters = np.asarray(clusters)
        self.centroids = np.ascontiguousarray(centroids, dtype=float)
        self.service_totals = (
            None if service_totals is None
            else np.asarray(service_totals, dtype=float)
        )
        if self.centroids.shape[0] != self.clusters.shape[0]:
            raise ValueError(
                f"centroids have {self.centroids.shape[0]} rows, "
                f"clusters have {self.clusters.shape[0]} labels"
            )
        self.class_cols = np.searchsorted(self.clusters, self.forest.classes)

    @property
    def n_clusters(self) -> int:
        return int(self.clusters.shape[0])

    def nearest_centroids(self, features: np.ndarray) -> np.ndarray:
        """Cluster of the closest centroid per row (same math as the profile)."""
        x = check_matrix(features, "features")
        if x.shape[1] != self.centroids.shape[1]:
            raise ValueError(
                f"features have {x.shape[1]} columns, centroids have "
                f"{self.centroids.shape[1]}"
            )
        distances = np.linalg.norm(
            x[:, None, :] - self.centroids[None, :, :], axis=2
        )
        return self.clusters[np.argmin(distances, axis=1)]

    def vote(self, features: np.ndarray) -> np.ndarray:
        """Forest + nearest-centroid vote, bit-identical to ``FrozenProfile.vote``."""
        x = check_matrix(features, "features")
        scores = np.zeros((x.shape[0], self.n_clusters))
        proba = self.forest.predict_proba(x)
        scores[:, self.class_cols] += proba
        nearest = self.nearest_centroids(x)
        nearest_cols = np.searchsorted(self.clusters, nearest)
        scores[np.arange(x.shape[0]), nearest_cols] += 1.0
        return self.clusters[np.argmax(scores, axis=1)]

    def rsca_of_volumes(self, volumes: np.ndarray) -> np.ndarray:
        """RSCA of raw volumes against the frozen reference marginals.

        Identical arithmetic to
        :meth:`repro.stream.frozen.FrozenProfile.rsca_of_volumes` — the
        fusion is in the call chain (no object hops), not the math.
        """
        if self.service_totals is None:
            raise ValueError(
                "kernel was built without service_totals; raw-volume "
                "queries need a profile frozen with service_totals"
            )
        matrix = check_matrix(volumes, "volumes", non_negative=True)
        if matrix.shape[1] != self.service_totals.shape[0]:
            raise ValueError(
                f"volumes have {matrix.shape[1]} columns, profile has "
                f"{self.service_totals.shape[0]} services"
            )
        rca = rca_from_components(
            matrix,
            matrix.sum(axis=1),
            self.service_totals,
            float(self.service_totals.sum()),
        )
        return rsca_from_rca(rca)

    def vote_volumes(self, volumes: np.ndarray) -> np.ndarray:
        """The fused raw-volume path: transform and vote in one call."""
        return self.vote(self.rsca_of_volumes(volumes))

    def describe(self) -> Dict[str, Any]:
        """Shape summary for logs and reports."""
        return {
            "n_trees": self.forest.n_trees,
            "n_nodes": self.forest.n_nodes,
            "n_classes": self.forest.n_classes,
            "n_features": self.forest.n_features,
            "n_clusters": self.n_clusters,
            "max_depth": self.forest.max_depth,
            "volume_queries": self.service_totals is not None,
        }


def compiled_equivalent(
    forest: RandomForestClassifier,
    compiled: CompiledForest,
    x: np.ndarray,
) -> Tuple[bool, str]:
    """Bit-exact equivalence check between object and compiled forests.

    Returns ``(ok, detail)``; used by the bench harness to refuse to
    record a speedup for a kernel that is not exactly the model it
    replaced.
    """
    object_proba = forest.predict_proba(x)
    compiled_proba = compiled.predict_proba(x)
    if not np.array_equal(object_proba, compiled_proba):
        delta = float(np.max(np.abs(object_proba - compiled_proba)))
        return False, f"predict_proba differs (max abs delta {delta:.3e})"
    if not np.array_equal(forest.predict(x), compiled.predict(x)):
        return False, "predict labels differ"
    return True, "bit-identical"
