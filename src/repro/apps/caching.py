"""Cluster-aware content caching (paper Section 7).

The paper lists "content caching according to the insights provided by
our analysis" as a direct application: cache at the indoor edge the
content of the services the environment actually over-uses.  This module
estimates per-cluster cache hit potential from the traffic mix, selects
the services to cache under a budget, and compares the cluster-aware
policy against a global (popularity-only) policy — the quantitative case
for environment-aware caching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.services import ServiceCatalog, ServiceCategory
from repro.utils.checks import check_matrix, check_probability

#: Fraction of a service's traffic that is cacheable at the edge, per
#: category: streaming/music/distribution bodies cache well; interactive
#: and conversational traffic does not.
DEFAULT_CACHEABILITY: Dict[ServiceCategory, float] = {
    ServiceCategory.VIDEO_STREAMING: 0.85,
    ServiceCategory.MUSIC: 0.80,
    ServiceCategory.DIGITAL_DISTRIBUTION: 0.95,
    ServiceCategory.SOCIAL: 0.45,
    ServiceCategory.ENTERTAINMENT: 0.50,
    ServiceCategory.NEWS: 0.55,
    ServiceCategory.SPORTS: 0.50,
    ServiceCategory.WEB: 0.40,
    ServiceCategory.SHOPPING: 0.35,
    ServiceCategory.GAMING: 0.50,
    ServiceCategory.CLOUD: 0.20,
    ServiceCategory.EMAIL: 0.05,
    ServiceCategory.MESSAGING: 0.05,
    ServiceCategory.BUSINESS: 0.10,
    ServiceCategory.NAVIGATION: 0.30,
    ServiceCategory.WELLBEING: 0.20,
}


@dataclass(frozen=True)
class CachePlan:
    """Caching decision for one cluster."""

    cluster: int
    cached_services: Tuple[str, ...]
    hit_fraction: float  # fraction of the cluster's traffic served locally

    def __post_init__(self) -> None:
        check_probability(self.hit_fraction, "hit_fraction")


def cacheable_fractions(catalog: ServiceCatalog) -> np.ndarray:
    """Per-service cacheable-traffic fraction, column order."""
    return np.array([
        DEFAULT_CACHEABILITY.get(svc.category, 0.3) for svc in catalog
    ])


def plan_cluster_cache(
    totals: np.ndarray,
    labels: Sequence[int],
    cluster: int,
    catalog: ServiceCatalog,
    budget: int = 10,
) -> CachePlan:
    """Select the ``budget`` services to cache for one cluster.

    Services are ranked by cacheable traffic volume *within the cluster*;
    the hit fraction is the cacheable share of the cluster's total
    traffic covered by the selection.
    """
    matrix = check_matrix(totals, "totals", non_negative=True)
    labels = np.asarray(labels, dtype=int)
    if labels.shape[0] != matrix.shape[0]:
        raise ValueError(
            f"labels length {labels.shape[0]} != rows {matrix.shape[0]}"
        )
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    members = labels == cluster
    if not np.any(members):
        raise ValueError(f"cluster {cluster} has no member antennas")
    cluster_traffic = matrix[members].sum(axis=0)
    cacheable = cluster_traffic * cacheable_fractions(catalog)
    order = np.argsort(cacheable)[::-1][:budget]
    hit = float(cacheable[order].sum() / cluster_traffic.sum())
    return CachePlan(
        cluster=int(cluster),
        cached_services=tuple(catalog.names[j] for j in order),
        hit_fraction=hit,
    )


def plan_all_caches(
    totals: np.ndarray,
    labels: Sequence[int],
    catalog: ServiceCatalog,
    budget: int = 10,
) -> Dict[int, CachePlan]:
    """One cache plan per cluster."""
    labels = np.asarray(labels, dtype=int)
    return {
        int(cluster): plan_cluster_cache(totals, labels, int(cluster),
                                         catalog, budget)
        for cluster in np.unique(labels)
    }


def global_cache_hit(
    totals: np.ndarray,
    catalog: ServiceCatalog,
    budget: int = 10,
) -> float:
    """Hit fraction of a single nationwide (cluster-blind) selection."""
    matrix = check_matrix(totals, "totals", non_negative=True)
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    network_traffic = matrix.sum(axis=0)
    cacheable = network_traffic * cacheable_fractions(catalog)
    order = np.argsort(cacheable)[::-1][:budget]
    selected = np.zeros(len(catalog), dtype=bool)
    selected[order] = True
    return float(
        (network_traffic * cacheable_fractions(catalog))[selected].sum()
        / network_traffic.sum()
    )


def cluster_aware_gain(
    totals: np.ndarray,
    labels: Sequence[int],
    catalog: ServiceCatalog,
    budget: int = 10,
) -> Tuple[float, float]:
    """Traffic-weighted hit of cluster-aware vs global caching.

    Returns ``(aware_hit, global_hit)``.  The cluster-aware policy picks
    each cluster's own top services, so specialized environments (offices,
    stadiums) get caches matching their demand instead of the nationwide
    mix — the paper's environment-aware orchestration argument.
    """
    matrix = check_matrix(totals, "totals", non_negative=True)
    labels = np.asarray(labels, dtype=int)
    plans = plan_all_caches(matrix, labels, catalog, budget)
    cluster_traffic = {
        int(c): float(matrix[labels == c].sum()) for c in np.unique(labels)
    }
    total = sum(cluster_traffic.values())
    aware = sum(
        plans[c].hit_fraction * cluster_traffic[c] for c in plans
    ) / total

    # The global policy serves every cluster with one selection.
    network_traffic = matrix.sum(axis=0)
    cacheable = cacheable_fractions(catalog)
    order = np.argsort(network_traffic * cacheable)[::-1][:budget]
    selected = np.zeros(len(catalog), dtype=bool)
    selected[order] = True
    global_hit = 0.0
    for c in plans:
        members = labels == c
        traffic = matrix[members].sum(axis=0)
        hit = float((traffic * cacheable)[selected].sum() / traffic.sum())
        global_hit += hit * cluster_traffic[c] / total
    return float(aware), float(global_hit)
