"""Environment-aware network-slice dimensioning (paper Section 7).

The paper concludes that "ICN resource orchestration should not target
overall capacity, as in outdoor environments, but must take into account
the most important application usage per indoor environment", proposing a
"distinct network slicing dimension" tuned per cluster.  This module
turns a fitted profile into concrete slice templates: per-cluster busy
hours, capacity headroom, and the characterizing services each slice
should prioritize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.temporal import TemporalHeatmap, cluster_temporal_heatmap
from repro.core.pipeline import ICNProfile
from repro.datagen.dataset import TrafficDataset


@dataclass(frozen=True)
class SliceTemplate:
    """Dimensioning template for one cluster-aligned network slice.

    Attributes:
        cluster: the cluster this slice serves.
        n_antennas: antennas covered by the slice.
        busy_hours: hours of day (0-23) whose load exceeds the busy
            threshold; capacity must be provisioned for these.
        peak_to_mean: ratio of the peak hourly load to the mean —
            1 means flat demand, large values mean bursty venues that
            need elastic capacity.
        weekend_factor: weekend/weekday load ratio; low values allow
            weekend scale-down.
        priority_services: services the slice should prioritize (the
            cluster's over-utilized services by SHAP importance).
        event_driven: whether capacity should track an event calendar
            rather than a daily profile.
    """

    cluster: int
    n_antennas: int
    busy_hours: tuple
    peak_to_mean: float
    weekend_factor: float
    priority_services: tuple
    event_driven: bool

    def __post_init__(self) -> None:
        if self.n_antennas < 1:
            raise ValueError(f"n_antennas must be >= 1, got {self.n_antennas}")
        if self.peak_to_mean < 1.0:
            raise ValueError(
                f"peak_to_mean must be >= 1, got {self.peak_to_mean}"
            )
        if any(not 0 <= h <= 23 for h in self.busy_hours):
            raise ValueError(f"busy_hours out of range: {self.busy_hours}")

    def describe(self) -> str:
        """One-line operator-facing summary."""
        hours = (
            ", ".join(f"{h:02d}" for h in self.busy_hours)
            if self.busy_hours else "none"
        )
        kind = "event-driven" if self.event_driven else "scheduled"
        services = ", ".join(self.priority_services[:3]) or "none"
        return (
            f"slice c{self.cluster} ({kind}): {self.n_antennas} antennas, "
            f"busy hours [{hours}], peak/mean {self.peak_to_mean:.1f}, "
            f"weekend x{self.weekend_factor:.2f}, priority: {services}"
        )


#: Peak-to-mean ratio above which a slice is *candidate* event-driven.
EVENT_DRIVEN_THRESHOLD = 4.0
#: Scheduled environments (commutes, offices) go quiet on weekends;
#: event venues do not.  A bursty slice is event-driven only when its
#: weekend load stays at least this fraction of the weekday load.
EVENT_WEEKEND_FLOOR = 0.8
#: A busy hour carries at least this fraction of the peak hour's load.
BUSY_HOUR_FRACTION = 0.5


def build_slice_template(
    heatmap: TemporalHeatmap,
    n_antennas: int,
    priority_services: Sequence[str],
) -> SliceTemplate:
    """Derive one slice template from a cluster temporal heatmap."""
    profile = heatmap.hour_profile(weekdays_only=True)
    peak = profile.max()
    busy = tuple(
        int(h) for h in range(24)
        if peak > 0 and profile[h] >= BUSY_HOUR_FRACTION * peak
    )
    peak_to_mean = heatmap.burstiness()
    weekend_factor = heatmap.weekend_weekday_ratio()
    # Commuter/office slices are bursty too (quiet nights and weekends),
    # but their bursts follow the clock; only venues whose weekend load
    # persists are genuinely event-driven.
    event_driven = (
        peak_to_mean > EVENT_DRIVEN_THRESHOLD
        and weekend_factor >= EVENT_WEEKEND_FLOOR
    )
    return SliceTemplate(
        cluster=heatmap.cluster,
        n_antennas=n_antennas,
        busy_hours=busy,
        peak_to_mean=max(1.0, peak_to_mean),
        weekend_factor=weekend_factor,
        priority_services=tuple(priority_services),
        event_driven=event_driven,
    )


def plan_slices(
    dataset: TrafficDataset,
    profile: ICNProfile,
    top_services: int = 5,
    max_antennas: int = 80,
) -> Dict[int, SliceTemplate]:
    """Build one slice template per cluster from a fitted profile.

    Args:
        dataset: the dataset the profile was fitted on.
        profile: fitted :class:`ICNProfile`.
        top_services: how many priority services to attach per slice
            (the over-utilized services among the cluster's SHAP top-25).
        max_antennas: antennas sampled per heatmap.
    """
    explanations = profile.explain()
    sizes = profile.cluster_sizes()
    templates: Dict[int, SliceTemplate] = {}
    for cluster, size in sizes.items():
        heatmap = cluster_temporal_heatmap(
            dataset, profile.labels, cluster, max_antennas=max_antennas
        )
        over = explanations[cluster].over_utilized(25)[:top_services]
        templates[cluster] = build_slice_template(heatmap, size, over)
    return templates


def capacity_schedule(template: SliceTemplate) -> np.ndarray:
    """Relative per-hour weekday capacity allocation for one slice.

    Busy hours get full capacity; other hours get the complementary
    baseline 1/peak_to_mean (never below 10%).  Event-driven slices keep
    the baseline everywhere — their capacity rides the event calendar.
    """
    baseline = max(0.1, 1.0 / template.peak_to_mean)
    schedule = np.full(24, baseline)
    if not template.event_driven:
        for hour in template.busy_hours:
            schedule[hour] = 1.0
    return schedule
