"""Cluster-aware energy adaptation (paper Section 7).

The paper names "energy adaptation schemes" and "adaptive power
transmission control" among the applications of its profiling: antennas
whose environments are predictably idle (offices at night, metros on
weekends and strike days) can sleep without hurting users.  This module
derives per-cluster sleep schedules from the temporal heatmaps and
estimates the energy saved against the traffic put at risk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.temporal import TemporalHeatmap, cluster_temporal_heatmap
from repro.core.pipeline import ICNProfile
from repro.datagen.dataset import TrafficDataset
from repro.utils.checks import check_probability

#: A base station in sleep mode draws this fraction of its active power.
SLEEP_POWER_FRACTION = 0.15


@dataclass(frozen=True)
class SleepSchedule:
    """Weekly sleep plan for one cluster's antennas.

    Attributes:
        cluster: the cluster the schedule applies to.
        weekday_sleep_hours: hours (0-23) slept on weekdays.
        weekend_sleep_hours: hours slept on Saturdays/Sundays.
        energy_saving: fraction of weekly energy saved vs always-on.
        traffic_at_risk: fraction of the cluster's weekly traffic that
            falls inside sleep hours (should be tiny for a good plan).
    """

    cluster: int
    weekday_sleep_hours: tuple
    weekend_sleep_hours: tuple
    energy_saving: float
    traffic_at_risk: float

    def __post_init__(self) -> None:
        check_probability(self.energy_saving, "energy_saving")
        check_probability(self.traffic_at_risk, "traffic_at_risk")
        for hours in (self.weekday_sleep_hours, self.weekend_sleep_hours):
            if any(not 0 <= h <= 23 for h in hours):
                raise ValueError(f"sleep hours out of range: {hours}")

    def describe(self) -> str:
        """One-line operator-facing summary."""
        def fmt(hours):
            return ",".join(f"{h:02d}" for h in hours) if hours else "-"

        return (
            f"cluster {self.cluster}: sleep weekdays [{fmt(self.weekday_sleep_hours)}] "
            f"weekends [{fmt(self.weekend_sleep_hours)}] -> "
            f"saves {self.energy_saving:.0%} energy, "
            f"risks {self.traffic_at_risk:.1%} of traffic"
        )


def derive_sleep_schedule(
    heatmap: TemporalHeatmap, idle_threshold: float = 0.05
) -> SleepSchedule:
    """Build a sleep schedule from one cluster's temporal heatmap.

    An hour is sleepable if its mean normalized load stays below
    ``idle_threshold`` x the peak hour, separately for weekdays and
    weekends.
    """
    if not 0.0 < idle_threshold < 1.0:
        raise ValueError(
            f"idle_threshold must be in (0, 1), got {idle_threshold}"
        )
    weekday_profile = heatmap.hour_profile(weekdays_only=True)
    days = heatmap.dates.astype("datetime64[D]").view("int64")
    weekend_mask = ((days + 3) % 7) >= 5
    if np.any(weekend_mask):
        weekend_profile = heatmap.values[weekend_mask].mean(axis=0)
    else:
        weekend_profile = weekday_profile
    peak = max(weekday_profile.max(), weekend_profile.max())
    if peak == 0:
        raise ValueError("heatmap is identically zero")

    weekday_sleep = tuple(
        int(h) for h in range(24) if weekday_profile[h] < idle_threshold * peak
    )
    weekend_sleep = tuple(
        int(h) for h in range(24) if weekend_profile[h] < idle_threshold * peak
    )

    # Energy: 5 weekdays + 2 weekend days, sleep hours draw the sleep
    # fraction.
    weekly_hours = 7 * 24
    sleeping = 5 * len(weekday_sleep) + 2 * len(weekend_sleep)
    energy_saving = sleeping * (1.0 - SLEEP_POWER_FRACTION) / weekly_hours

    # Traffic at risk: share of heatmap mass inside sleep hours.
    total = heatmap.values.sum()
    at_risk = 0.0
    if total > 0:
        weekday_values = heatmap.values[~weekend_mask]
        weekend_values = heatmap.values[weekend_mask]
        if weekday_sleep and weekday_values.size:
            at_risk += weekday_values[:, list(weekday_sleep)].sum()
        if weekend_sleep and weekend_values.size:
            at_risk += weekend_values[:, list(weekend_sleep)].sum()
        at_risk /= total
    return SleepSchedule(
        cluster=heatmap.cluster,
        weekday_sleep_hours=weekday_sleep,
        weekend_sleep_hours=weekend_sleep,
        energy_saving=float(energy_saving),
        traffic_at_risk=float(min(1.0, at_risk)),
    )


def plan_energy(
    dataset: TrafficDataset,
    profile: ICNProfile,
    idle_threshold: float = 0.05,
    max_antennas: int = 80,
) -> Dict[int, SleepSchedule]:
    """Sleep schedules for every cluster of a fitted profile."""
    schedules: Dict[int, SleepSchedule] = {}
    for cluster in profile.cluster_sizes():
        heatmap = cluster_temporal_heatmap(
            dataset, profile.labels, cluster, max_antennas=max_antennas
        )
        schedules[cluster] = derive_sleep_schedule(heatmap, idle_threshold)
    return schedules


def fleet_energy_saving(
    schedules: Dict[int, SleepSchedule], cluster_sizes: Dict[int, int]
) -> float:
    """Antenna-weighted energy saving across the whole deployment."""
    total = sum(cluster_sizes.values())
    if total == 0:
        raise ValueError("cluster_sizes is empty")
    return float(
        sum(
            schedules[c].energy_saving * cluster_sizes[c]
            for c in schedules if c in cluster_sizes
        ) / total
    )
