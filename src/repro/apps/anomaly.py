"""Demand-anomaly detection against the weekly profile.

The paper reads its anomalies off the heatmaps by eye — the 19 Jan
national strike emptying the commuter clusters, the NBA game lighting up
the Accor Arena.  An operator wants those flagged automatically: this
module scores every hour of a series against the cluster's weekly
profile and flags sustained deviations, in both directions (demand
*surges* — events — and demand *droughts* — strikes, outages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.forecast.models import WEEK_HOURS, _validate_series


@dataclass(frozen=True)
class Anomaly:
    """One contiguous anomalous span of hours."""

    start_index: int
    end_index: int  # inclusive
    kind: str  # "surge" or "drought"
    peak_score: float  # largest |log-ratio| inside the span

    def __post_init__(self) -> None:
        if self.end_index < self.start_index:
            raise ValueError("end_index precedes start_index")
        if self.kind not in ("surge", "drought"):
            raise ValueError(f"kind must be surge/drought, got {self.kind!r}")

    @property
    def duration_hours(self) -> int:
        return self.end_index - self.start_index + 1


def weekly_baseline(series: np.ndarray) -> np.ndarray:
    """Per-hour expectation: the median of the same week-hour's samples.

    The median makes the baseline robust to the anomalies being hunted.
    """
    values = _validate_series(series, 2 * WEEK_HOURS)
    week_hour = np.arange(values.size) % WEEK_HOURS
    baseline = np.empty_like(values)
    for wh in range(WEEK_HOURS):
        mask = week_hour == wh
        baseline[mask] = np.median(values[mask])
    return baseline


def detect_anomalies(
    series,
    threshold: float = 1.0,
    min_duration: int = 2,
) -> List[Anomaly]:
    """Flag sustained deviations from the weekly baseline.

    An hour is anomalous when ``|log((x + eps) / (baseline + eps))|``
    exceeds ``threshold`` (a log-ratio of 1 is ~2.7x above or below
    expectation); consecutive anomalous hours of the same sign merge into
    one :class:`Anomaly`, and spans shorter than ``min_duration`` are
    dropped (single-hour noise).
    """
    values = _validate_series(series, 2 * WEEK_HOURS)
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    if min_duration < 1:
        raise ValueError(f"min_duration must be >= 1, got {min_duration}")
    baseline = weekly_baseline(values)
    scale = max(float(baseline.mean()), 1e-12)
    eps = 0.01 * scale
    scores = np.log((values + eps) / (baseline + eps))

    anomalies: List[Anomaly] = []
    span_start: Optional[int] = None
    span_sign = 0
    for i in range(values.size + 1):
        sign = 0
        if i < values.size:
            if scores[i] > threshold:
                sign = 1
            elif scores[i] < -threshold:
                sign = -1
        if sign == span_sign and sign != 0:
            continue
        if span_sign != 0 and span_start is not None:
            end = i - 1
            if end - span_start + 1 >= min_duration:
                segment = scores[span_start:end + 1]
                anomalies.append(
                    Anomaly(
                        start_index=span_start,
                        end_index=end,
                        kind="surge" if span_sign > 0 else "drought",
                        peak_score=float(np.abs(segment).max()),
                    )
                )
        span_start = i if sign != 0 else None
        span_sign = sign
    return anomalies


def anomalies_on_date(
    anomalies: Sequence[Anomaly],
    hours: np.ndarray,
    date: np.datetime64,
    kind: Optional[str] = None,
) -> List[Anomaly]:
    """Filter anomalies whose span touches the given calendar date."""
    date = np.datetime64(date, "D")
    if hours.ndim != 1:
        raise ValueError("hours must be the series' 1-D timestamp grid")
    out = []
    for anomaly in anomalies:
        if kind is not None and anomaly.kind != kind:
            continue
        span_dates = hours[anomaly.start_index:anomaly.end_index + 1].astype(
            "datetime64[D]"
        )
        if np.any(span_dates == date):
            out.append(anomaly)
    return out
