"""Operational applications of the profiling (paper Section 7):
environment-aware slicing, caching, and energy adaptation."""

from repro.apps.slicing import (
    SliceTemplate,
    build_slice_template,
    capacity_schedule,
    plan_slices,
)
from repro.apps.caching import (
    CachePlan,
    cacheable_fractions,
    cluster_aware_gain,
    global_cache_hit,
    plan_all_caches,
    plan_cluster_cache,
)
from repro.apps.anomaly import (
    Anomaly,
    anomalies_on_date,
    detect_anomalies,
    weekly_baseline,
)
from repro.apps.energy import (
    SleepSchedule,
    derive_sleep_schedule,
    fleet_energy_saving,
    plan_energy,
)

__all__ = [
    "Anomaly",
    "detect_anomalies",
    "anomalies_on_date",
    "weekly_baseline",
    "SliceTemplate",
    "build_slice_template",
    "plan_slices",
    "capacity_schedule",
    "CachePlan",
    "cacheable_fractions",
    "plan_cluster_cache",
    "plan_all_caches",
    "global_cache_hit",
    "cluster_aware_gain",
    "SleepSchedule",
    "derive_sleep_schedule",
    "plan_energy",
    "fleet_energy_saving",
]
