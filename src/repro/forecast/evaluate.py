"""Cluster-aware forecast evaluation.

Backtests the forecasting models of :mod:`repro.forecast.models` on the
per-cluster hourly traffic of a generated dataset: train on the series up
to a cutoff, forecast the remaining horizon, and score normalized MAE.
Used by the proactive-management benchmark (paper Sections 1 and 7) to
show that cluster-aware weekly profiles beat the naive baseline on the
regular clusters while event-driven clusters stay hard — exactly the
planning insight the paper draws from Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datagen.dataset import TrafficDataset
from repro.forecast.models import (
    HoltWinters,
    SeasonalNaive,
    WeeklyProfile,
    WEEK_HOURS,
    normalized_mae,
)


@dataclass
class BacktestResult:
    """Scores of one model on one cluster's aggregate hourly series."""

    cluster: int
    model: str
    nmae: float
    horizon: int

    def __post_init__(self) -> None:
        if self.nmae < 0:
            raise ValueError(f"nmae must be non-negative, got {self.nmae}")


def cluster_hourly_series(
    dataset: TrafficDataset,
    labels: Sequence[int],
    cluster: int,
    max_antennas: int = 80,
    random_state: int = 0,
) -> np.ndarray:
    """Aggregate (mean across member antennas) hourly traffic series."""
    labels = np.asarray(labels, dtype=int)
    if labels.shape[0] != dataset.n_antennas:
        raise ValueError(
            f"labels length {labels.shape[0]} != {dataset.n_antennas}"
        )
    members = np.flatnonzero(labels == cluster)
    if members.size == 0:
        raise ValueError(f"cluster {cluster} has no member antennas")
    if members.size > max_antennas:
        rng = np.random.default_rng(random_state)
        members = rng.choice(members, size=max_antennas, replace=False)
    hourly = dataset.hourly_total(antenna_ids=members)
    return hourly.mean(axis=0)


DEFAULT_MODELS = ("seasonal_naive", "weekly_profile", "holt_winters")


def _build_model(name: str):
    if name == "seasonal_naive":
        return SeasonalNaive(season=WEEK_HOURS)
    if name == "weekly_profile":
        return WeeklyProfile()
    if name == "holt_winters":
        return HoltWinters(season=WEEK_HOURS)
    raise ValueError(
        f"unknown model {name!r}; choose from {DEFAULT_MODELS}"
    )


def backtest_cluster(
    dataset: TrafficDataset,
    labels: Sequence[int],
    cluster: int,
    horizon: int = WEEK_HOURS,
    models: Sequence[str] = DEFAULT_MODELS,
    max_antennas: int = 80,
) -> List[BacktestResult]:
    """Backtest each model on one cluster's aggregate series.

    The final ``horizon`` hours are held out; models are fitted on the
    rest and scored with normalized MAE on the holdout.
    """
    series = cluster_hourly_series(dataset, labels, cluster,
                                   max_antennas=max_antennas)
    if horizon >= series.size - 2 * WEEK_HOURS:
        raise ValueError(
            f"horizon {horizon} leaves too little training data "
            f"({series.size} samples total)"
        )
    train, test = series[:-horizon], series[-horizon:]
    results = []
    for name in models:
        model = _build_model(name).fit(train)
        prediction = model.forecast(horizon)
        results.append(
            BacktestResult(
                cluster=int(cluster),
                model=name,
                nmae=normalized_mae(test, prediction),
                horizon=horizon,
            )
        )
    return results


def backtest_all_clusters(
    dataset: TrafficDataset,
    labels: Sequence[int],
    horizon: int = WEEK_HOURS,
    models: Sequence[str] = DEFAULT_MODELS,
    max_antennas: int = 80,
) -> Dict[int, List[BacktestResult]]:
    """Backtest every cluster; returns cluster -> list of model scores."""
    labels = np.asarray(labels, dtype=int)
    return {
        int(cluster): backtest_cluster(
            dataset, labels, int(cluster), horizon, models, max_antennas
        )
        for cluster in np.unique(labels)
    }


def best_model_per_cluster(
    results: Dict[int, List[BacktestResult]]
) -> Dict[int, BacktestResult]:
    """Pick the lowest-NMAE model for each cluster."""
    return {
        cluster: min(scores, key=lambda r: r.nmae)
        for cluster, scores in results.items()
    }
