"""Traffic forecasting models for proactive ICN management.

The paper's motivation and roadmap (Sections 1 and 7) argue that
understanding and *forecasting* demand enables proactive network
configuration, and that ICN forecasting should be cluster-aware because
each cluster has its own temporal regime.  This module provides three
classical forecasters, implemented from scratch on hourly series:

* :class:`SeasonalNaive` — repeat the value one season ago,
* :class:`WeeklyProfile` — the average day-of-week x hour-of-day profile
  scaled to the recent level (the natural model for the strongly weekly
  ICN regimes of Fig. 10),
* :class:`HoltWinters` — additive triple exponential smoothing.

All models share the ``fit(series) -> self`` / ``forecast(horizon)``
interface and operate on 1-D numpy arrays sampled hourly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Hours in a week: the dominant ICN seasonality (Fig. 10).
WEEK_HOURS = 168
#: Hours in a day.
DAY_HOURS = 24


def _validate_series(series, min_length: int) -> np.ndarray:
    values = np.asarray(series, dtype=float)
    if values.ndim != 1:
        raise ValueError(f"series must be 1-D, got shape {values.shape}")
    if values.size < min_length:
        raise ValueError(
            f"series too short: {values.size} < required {min_length}"
        )
    if not np.all(np.isfinite(values)):
        raise ValueError("series contains NaN or infinite values")
    return values


def _validate_horizon(horizon: int) -> int:
    horizon = int(horizon)
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    return horizon


class SeasonalNaive:
    """Forecast = the observation one season earlier.

    The canonical baseline every forecaster must beat.
    """

    def __init__(self, season: int = WEEK_HOURS) -> None:
        if season < 1:
            raise ValueError(f"season must be >= 1, got {season}")
        self.season = season
        self._history: Optional[np.ndarray] = None

    def fit(self, series) -> "SeasonalNaive":
        self._history = _validate_series(series, self.season)
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        """Repeat the last observed season over the horizon."""
        if self._history is None:
            raise RuntimeError("model is not fitted; call fit() first")
        horizon = _validate_horizon(horizon)
        last_season = self._history[-self.season:]
        reps = int(np.ceil(horizon / self.season))
        return np.tile(last_season, reps)[:horizon]


class WeeklyProfile:
    """Average day-of-week x hour-of-day profile, level-adjusted.

    Learns the mean traffic for each of the 168 week-hours over the whole
    training series, then rescales to the last week's overall level.  This
    matches the ICN regimes of Fig. 10: strong weekly periodicity with a
    slowly drifting level.
    """

    def __init__(self, level_window: int = WEEK_HOURS) -> None:
        if level_window < 1:
            raise ValueError(f"level_window must be >= 1, got {level_window}")
        self.level_window = level_window
        self._profile: Optional[np.ndarray] = None
        self._level: Optional[float] = None
        self._phase: int = 0

    def fit(self, series) -> "WeeklyProfile":
        values = _validate_series(series, WEEK_HOURS)
        n_full = values.size // WEEK_HOURS * WEEK_HOURS
        weeks = values[:n_full].reshape(-1, WEEK_HOURS)
        self._profile = weeks.mean(axis=0)
        profile_mean = self._profile.mean()
        recent = values[-self.level_window:].mean()
        self._level = recent / profile_mean if profile_mean > 0 else 1.0
        # Forecasting continues from the hour after the last observation.
        self._phase = values.size % WEEK_HOURS
        return self

    def fit_with_phase(self, series, start_week_hour: int) -> "WeeklyProfile":
        """Fit with an explicit week-hour phase of the first observation."""
        if not 0 <= start_week_hour < WEEK_HOURS:
            raise ValueError(
                f"start_week_hour must be in [0, {WEEK_HOURS}), "
                f"got {start_week_hour}"
            )
        self.fit(series)
        values = np.asarray(series, dtype=float)
        self._phase = (start_week_hour + values.size) % WEEK_HOURS
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        if self._profile is None:
            raise RuntimeError("model is not fitted; call fit() first")
        horizon = _validate_horizon(horizon)
        idx = (self._phase + np.arange(horizon)) % WEEK_HOURS
        return self._level * self._profile[idx]


class HoltWinters:
    """Additive Holt-Winters triple exponential smoothing.

    Args:
        season: season length in samples (default one week of hours).
        alpha, beta, gamma: level / trend / season smoothing factors.
    """

    def __init__(
        self,
        season: int = WEEK_HOURS,
        alpha: float = 0.3,
        beta: float = 0.05,
        gamma: float = 0.2,
    ) -> None:
        if season < 2:
            raise ValueError(f"season must be >= 2, got {season}")
        for name, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {value}")
        self.season = season
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self._level: Optional[float] = None
        self._trend: Optional[float] = None
        self._seasonals: Optional[np.ndarray] = None

    def fit(self, series) -> "HoltWinters":
        values = _validate_series(series, 2 * self.season)
        season = self.season
        # Standard initialization (Hyndman & Athanasopoulos): level/trend
        # from the first two season means, seasonal components as the
        # average detrended deviation within each season.
        first = values[:season]
        second = values[season:2 * season]
        level = float(first.mean())
        trend = float((second.mean() - first.mean()) / season)
        # Detrend before extracting the seasonal components, otherwise the
        # within-season part of the trend contaminates them.
        t_idx = np.arange(2 * season)
        baseline = level + trend * (t_idx - (season - 1) / 2.0)
        detrended = values[:2 * season] - baseline
        seasonals = 0.5 * (detrended[:season] + detrended[season:])
        for t in range(values.size):
            s = t % season
            value = values[t]
            last_level, last_trend = level, trend
            level = (
                self.alpha * (value - seasonals[s])
                + (1 - self.alpha) * (level + trend)
            )
            trend = self.beta * (level - last_level) + (1 - self.beta) * trend
            # Seasonal update against the pre-update level+trend keeps the
            # components from silently absorbing the trend.
            seasonals[s] = (
                self.gamma * (value - last_level - last_trend)
                + (1 - self.gamma) * seasonals[s]
            )
        self._level, self._trend = level, trend
        self._seasonals = seasonals
        self._phase = values.size % season
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        if self._level is None:
            raise RuntimeError("model is not fitted; call fit() first")
        horizon = _validate_horizon(horizon)
        steps = np.arange(1, horizon + 1)
        idx = (self._phase + steps - 1) % self.season
        return self._level + steps * self._trend + self._seasonals[idx]


def mean_absolute_error(actual, predicted) -> float:
    """MAE between two equal-length series."""
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if a.shape != p.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {p.shape}")
    if a.size == 0:
        raise ValueError("cannot score empty series")
    return float(np.mean(np.abs(a - p)))


def normalized_mae(actual, predicted) -> float:
    """MAE normalized by the mean actual level (scale-free)."""
    a = np.asarray(actual, dtype=float)
    level = float(np.mean(np.abs(a)))
    if level == 0:
        raise ValueError("actual series has zero mean level")
    return mean_absolute_error(actual, predicted) / level
