"""Event-calendar-aware forecasting.

The statistical forecasters of :mod:`repro.forecast.models` capture the
weekly regimes of the paper's Fig. 10 but miss *unscheduled* bursts — the
NBA Paris Game fell on a Thursday outside the fixture calendar.  Venue
operators, however, know their event calendars in advance; the paper's
Section 7 argues proactive venue management should exploit exactly that.

:class:`EventAwareProfile` combines a weekly baseline with a learned
per-event uplift: training hours flagged as event hours teach the model
how much a venue burst multiplies the baseline, and the forecast applies
that uplift to the hours of *announced* future events.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.forecast.models import WEEK_HOURS, WeeklyProfile, _validate_series


class EventAwareProfile:
    """Weekly profile plus a calendar-driven event uplift.

    Args:
        min_event_hours: minimum flagged training hours required to
            estimate the uplift (fewer raises at fit time).
    """

    def __init__(self, min_event_hours: int = 4) -> None:
        if min_event_hours < 1:
            raise ValueError(
                f"min_event_hours must be >= 1, got {min_event_hours}"
            )
        self.min_event_hours = min_event_hours
        self._baseline: Optional[WeeklyProfile] = None
        self._uplift: Optional[float] = None

    @property
    def uplift_(self) -> float:
        """Learned event/baseline traffic ratio."""
        if self._uplift is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self._uplift

    def fit(self, series, event_mask) -> "EventAwareProfile":
        """Fit the baseline on quiet hours and the uplift on event hours.

        Args:
            series: hourly traffic (1-D).
            event_mask: boolean mask, True where a venue event was live.
        """
        values = _validate_series(series, 2 * WEEK_HOURS)
        mask = np.asarray(event_mask, dtype=bool)
        if mask.shape != values.shape:
            raise ValueError(
                f"event_mask shape {mask.shape} != series shape {values.shape}"
            )
        if int(mask.sum()) < self.min_event_hours:
            raise ValueError(
                f"only {int(mask.sum())} event hours flagged; "
                f"need >= {self.min_event_hours} to estimate the uplift"
            )
        # Baseline from the quiet hours: replace event hours with the
        # same week-hour's quiet median so bursts don't leak in.
        week_hour = np.arange(values.size) % WEEK_HOURS
        cleaned = values.copy()
        for wh in np.unique(week_hour[mask]):
            quiet = values[(week_hour == wh) & ~mask]
            if quiet.size:
                cleaned[(week_hour == wh) & mask] = np.median(quiet)
        baseline = WeeklyProfile().fit(cleaned)
        self._baseline = baseline

        # Uplift: how far above the baseline do event hours run?
        phase_shift = values.size % WEEK_HOURS
        profile = baseline._profile
        level = baseline._level
        predicted = level * profile[week_hour]
        event_actual = values[mask]
        event_predicted = np.maximum(predicted[mask], 1e-12)
        self._uplift = float(np.median(event_actual / event_predicted))
        return self

    def forecast(self, horizon: int, future_event_mask=None) -> np.ndarray:
        """Forecast; hours flagged in ``future_event_mask`` get the uplift."""
        if self._baseline is None:
            raise RuntimeError("model is not fitted; call fit() first")
        base = self._baseline.forecast(horizon)
        if future_event_mask is None:
            return base
        mask = np.asarray(future_event_mask, dtype=bool)
        if mask.shape != base.shape:
            raise ValueError(
                f"future_event_mask shape {mask.shape} != horizon {horizon}"
            )
        out = base.copy()
        out[mask] = out[mask] * self._uplift
        return out


def event_mask_for_site(dataset, site_id: int) -> np.ndarray:
    """Boolean per-hour mask of a site's event calendar over the study."""
    events = dataset.model.events_for_site(site_id)
    mask = np.zeros(dataset.calendar.n_hours, dtype=bool)
    for event in events:
        mask |= event.mask(dataset.calendar)
    return mask
