"""Traffic forecasting for proactive ICN management (paper Sections 1, 7)."""

from repro.forecast.models import (
    DAY_HOURS,
    HoltWinters,
    SeasonalNaive,
    WEEK_HOURS,
    WeeklyProfile,
    mean_absolute_error,
    normalized_mae,
)
from repro.forecast.events import EventAwareProfile, event_mask_for_site
from repro.forecast.intervals import IntervalForecast, IntervalWeeklyProfile
from repro.forecast.evaluate import (
    BacktestResult,
    backtest_all_clusters,
    backtest_cluster,
    best_model_per_cluster,
    cluster_hourly_series,
)

__all__ = [
    "DAY_HOURS",
    "WEEK_HOURS",
    "SeasonalNaive",
    "WeeklyProfile",
    "HoltWinters",
    "mean_absolute_error",
    "normalized_mae",
    "EventAwareProfile",
    "event_mask_for_site",
    "IntervalForecast",
    "IntervalWeeklyProfile",
    "BacktestResult",
    "backtest_cluster",
    "backtest_all_clusters",
    "best_model_per_cluster",
    "cluster_hourly_series",
]
