"""Empirical prediction intervals for the forecasting models.

Capacity planning needs headroom, not point forecasts: the slice
templates of :mod:`repro.apps.slicing` should be provisioned to an upper
quantile of demand.  This module wraps any fitted forecaster with
residual-based intervals: backtest the model on held-out history, collect
per-week-hour residual ratios, and widen the point forecast by their
empirical quantiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.forecast.models import WEEK_HOURS, WeeklyProfile, _validate_series


@dataclass
class IntervalForecast:
    """A point forecast with lower/upper bounds."""

    point: np.ndarray
    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        if not (self.point.shape == self.lower.shape == self.upper.shape):
            raise ValueError("point/lower/upper must share a shape")
        if np.any(self.lower > self.upper + 1e-12):
            raise ValueError("lower bound exceeds upper bound")

    def coverage(self, actual) -> float:
        """Fraction of actuals falling inside [lower, upper]."""
        values = np.asarray(actual, dtype=float)
        if values.shape != self.point.shape:
            raise ValueError(
                f"actual shape {values.shape} != forecast {self.point.shape}"
            )
        inside = (values >= self.lower) & (values <= self.upper)
        return float(inside.mean())

    def headroom_factor(self) -> float:
        """Mean upper/point ratio — the capacity margin to provision."""
        safe_point = np.maximum(self.point, 1e-12)
        return float(np.mean(self.upper / safe_point))


class IntervalWeeklyProfile:
    """Weekly-profile forecaster with empirical residual intervals.

    Fits a :class:`~repro.forecast.models.WeeklyProfile` on the first part
    of the series, collects multiplicative residuals (actual / predicted)
    over the remaining *calibration* weeks, and derives interval bounds
    from the residual quantiles.

    Args:
        coverage: target central coverage of the interval (e.g. 0.9).
        calibration_weeks: trailing weeks reserved for residuals.
    """

    def __init__(self, coverage: float = 0.9,
                 calibration_weeks: int = 2) -> None:
        if not 0.0 < coverage < 1.0:
            raise ValueError(f"coverage must be in (0, 1), got {coverage}")
        if calibration_weeks < 1:
            raise ValueError(
                f"calibration_weeks must be >= 1, got {calibration_weeks}"
            )
        self.coverage = coverage
        self.calibration_weeks = calibration_weeks
        self._model: Optional[WeeklyProfile] = None
        self._ratio_bounds: Optional[Tuple[float, float]] = None

    def fit(self, series) -> "IntervalWeeklyProfile":
        values = _validate_series(
            series, (self.calibration_weeks + 2) * WEEK_HOURS
        )
        split = values.size - self.calibration_weeks * WEEK_HOURS
        train, calibration = values[:split], values[split:]
        model = WeeklyProfile().fit(train)
        predicted = model.forecast(calibration.size)
        safe = np.maximum(predicted, 1e-12)
        ratios = calibration / safe
        alpha = (1.0 - self.coverage) / 2.0
        lo = float(np.quantile(ratios, alpha))
        hi = float(np.quantile(ratios, 1.0 - alpha))
        self._ratio_bounds = (lo, hi)
        # Refit on the full series so the point forecast uses everything.
        self._model = WeeklyProfile().fit(values)
        return self

    def forecast(self, horizon: int) -> IntervalForecast:
        """Point forecast plus residual-quantile bounds."""
        if self._model is None or self._ratio_bounds is None:
            raise RuntimeError("model is not fitted; call fit() first")
        point = self._model.forecast(horizon)
        lo, hi = self._ratio_bounds
        # A biased calibration window can push both residual quantiles to
        # the same side of 1; clamp so the interval always brackets the
        # point forecast (a provisioning interval must cover its own plan).
        lower = np.minimum(np.maximum(point * lo, 0.0), point)
        upper = np.maximum(point * hi, point)
        return IntervalForecast(point=point, lower=lower, upper=upper)
