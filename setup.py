"""Setup shim for legacy editable installs (offline environments lacking
the ``wheel`` package cannot use PEP 660 editable builds)."""

from setuptools import setup

setup()
