"""Tests for the TrafficDataset container and serialization."""

import numpy as np
import pytest

from repro.datagen.dataset import TrafficDataset, generate_dataset
from tests.conftest import scaled_specs


class TestGenerateDataset:
    def test_views(self, small_dataset):
        assert small_dataset.n_services == 73
        assert len(small_dataset.service_names) == 73
        assert small_dataset.archetypes().shape == (small_dataset.n_antennas,)
        assert len(small_dataset.environment_types()) == small_dataset.n_antennas
        assert small_dataset.paris_mask().dtype == bool

    def test_totals_consistent_with_model(self, small_dataset):
        np.testing.assert_allclose(
            small_dataset.totals, small_dataset.model.totals()
        )

    def test_antenna_names_parseable(self, small_dataset):
        from repro.analysis.environment import extract_environment

        for antenna in small_dataset.antennas[:50]:
            assert extract_environment(antenna.name) == antenna.env_type

    def test_mismatched_totals_rejected(self, small_dataset):
        with pytest.raises(ValueError, match="rows"):
            TrafficDataset(
                sites=small_dataset.sites,
                antennas=small_dataset.antennas[:-1],
                catalog=small_dataset.catalog,
                calendar=small_dataset.calendar,
                totals=small_dataset.totals,
                model=small_dataset.model,
                master_seed=0,
            )

    def test_hourly_delegation(self, small_dataset):
        window = small_dataset.temporal_window()
        series = small_dataset.hourly_service("Spotify", antenna_ids=[0],
                                              window=window)
        assert series.shape[1] == window.stop - window.start
        totals = small_dataset.hourly_total(antenna_ids=[0], window=window)
        assert totals.shape == series.shape


class TestSerialization:
    def test_roundtrip(self, small_dataset, tmp_path):
        path = tmp_path / "dataset.npz"
        small_dataset.save(path)
        loaded = TrafficDataset.load(path)
        np.testing.assert_allclose(loaded.totals, small_dataset.totals)
        assert loaded.n_antennas == small_dataset.n_antennas
        assert loaded.master_seed == small_dataset.master_seed
        assert [a.name for a in loaded.antennas] == [
            a.name for a in small_dataset.antennas
        ]
        assert [a.archetype for a in loaded.antennas] == [
            a.archetype for a in small_dataset.antennas
        ]

    def test_roundtrip_preserves_hourly(self, small_dataset, tmp_path):
        path = tmp_path / "dataset.npz"
        small_dataset.save(path)
        loaded = TrafficDataset.load(path)
        window = small_dataset.temporal_window()
        np.testing.assert_allclose(
            loaded.hourly_service("Waze", antenna_ids=[1], window=window),
            small_dataset.hourly_service("Waze", antenna_ids=[1], window=window),
        )

    def test_roundtrip_preserves_calendar(self, small_dataset, tmp_path):
        path = tmp_path / "dataset.npz"
        small_dataset.save(path)
        loaded = TrafficDataset.load(path)
        assert loaded.calendar.start == small_dataset.calendar.start
        assert loaded.calendar.end == small_dataset.calendar.end

    def test_outdoor_companion(self, small_dataset):
        antennas, totals = small_dataset.outdoor(count=100)
        assert len(antennas) == 100
        assert totals.shape == (100, 73)
