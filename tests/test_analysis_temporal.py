"""Tests for the temporal heatmaps and pattern detectors (Figs. 10-11)."""

import numpy as np
import pytest

from repro.analysis.temporal import (
    TemporalHeatmap,
    cluster_temporal_heatmap,
    group_heatmaps,
    service_temporal_heatmap,
)
from repro.datagen.calendar import STRIKE_DAY


def synthetic_heatmap(pattern: str) -> TemporalHeatmap:
    """Hand-built heatmaps with known patterns for detector tests."""
    dates = np.arange(
        np.datetime64("2023-01-04"), np.datetime64("2023-01-25")
    )
    values = np.zeros((dates.size, 24))
    dows = (dates.astype("datetime64[D]").view("int64") + 3) % 7
    if pattern == "commute":
        for i, dow in enumerate(dows):
            scale = 0.2 if dow >= 5 else 1.0
            if dates[i] == STRIKE_DAY:
                scale = 0.05
            values[i, 8] = scale
            values[i, 18] = 0.9 * scale
            values[i, 13] = 0.3 * scale
            values[i, 3] = 0.05 * scale
    elif pattern == "office":
        for i, dow in enumerate(dows):
            scale = 0.1 if dow >= 5 else 1.0
            values[i, 9:18] = scale
            values[i, 20] = 0.1 * scale
    elif pattern == "event":
        values[:, 12] = 0.05
        values[3, 20] = 1.0  # a single burst evening
    elif pattern == "night":
        values[:, 23] = 1.0
        values[:, 2] = 0.8
        values[:, 14] = 0.4
    return TemporalHeatmap(values=values, dates=dates, cluster=0)


class TestDetectors:
    def test_bimodal_commute_detected(self):
        assert synthetic_heatmap("commute").is_bimodal_commute()

    def test_office_not_commute(self):
        assert not synthetic_heatmap("office").is_bimodal_commute()

    def test_weekend_ratio(self):
        hm = synthetic_heatmap("commute")
        assert hm.weekend_weekday_ratio() < 0.4
        assert synthetic_heatmap("event").weekend_weekday_ratio() > 0.5

    def test_strike_suppression(self):
        hm = synthetic_heatmap("commute")
        assert hm.strike_suppression() < 0.1

    def test_burstiness(self):
        assert synthetic_heatmap("event").burstiness() > 10
        assert synthetic_heatmap("office").burstiness() < 5

    def test_night_share(self):
        assert synthetic_heatmap("night").night_share() > 0.5
        assert synthetic_heatmap("office").night_share() < 0.1

    def test_business_hours_share(self):
        assert synthetic_heatmap("office").business_hours_share() > 0.9

    def test_peak_hours(self):
        peaks = synthetic_heatmap("commute").peak_hours(2)
        assert set(peaks) == {8, 18}

    def test_hour_profile_length(self):
        profile = synthetic_heatmap("office").hour_profile()
        assert profile.shape == (24,)

    def test_day_total(self):
        hm = synthetic_heatmap("event")
        assert hm.day_total(np.datetime64("2023-01-07")) == pytest.approx(1.05)
        with pytest.raises(KeyError):
            hm.day_total(np.datetime64("2023-03-01"))


class TestHeatmapConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="n_days, 24"):
            TemporalHeatmap(values=np.zeros((3, 23)),
                            dates=np.zeros(3, dtype="datetime64[D]"), cluster=0)
        with pytest.raises(ValueError, match="one date"):
            TemporalHeatmap(values=np.zeros((3, 24)),
                            dates=np.zeros(2, dtype="datetime64[D]"), cluster=0)


class TestFromDataset:
    def test_cluster_heatmap_window(self, small_dataset, small_profile):
        heatmap = cluster_temporal_heatmap(
            small_dataset, small_profile.labels, 0, max_antennas=20
        )
        assert heatmap.values.shape == (21, 24)
        assert heatmap.values.max() == pytest.approx(1.0)
        assert heatmap.service is None

    def test_commuter_cluster_patterns(self, small_dataset, small_profile):
        heatmap = cluster_temporal_heatmap(
            small_dataset, small_profile.labels, 0, max_antennas=30
        )
        assert heatmap.is_bimodal_commute()
        assert heatmap.weekend_weekday_ratio() < 0.6
        assert heatmap.strike_suppression() < 0.3

    def test_office_cluster_patterns(self, small_dataset, small_profile):
        heatmap = cluster_temporal_heatmap(
            small_dataset, small_profile.labels, 3, max_antennas=30
        )
        assert heatmap.business_hours_share() > 0.6
        assert heatmap.weekend_weekday_ratio() < 0.4

    def test_service_heatmap(self, small_dataset, small_profile):
        heatmap = service_temporal_heatmap(
            small_dataset, small_profile.labels, 0, "Spotify", max_antennas=20
        )
        assert heatmap.service == "Spotify"
        peaks = heatmap.peak_hours(4)
        assert any(7 <= p <= 9 for p in peaks)

    def test_group_heatmaps(self, small_dataset, small_profile):
        heatmaps = group_heatmaps(
            small_dataset, small_profile.labels, [0, 4], max_antennas=10
        )
        assert sorted(heatmaps) == [0, 4]

    def test_empty_cluster_rejected(self, small_dataset, small_profile):
        with pytest.raises(ValueError, match="no member antennas"):
            cluster_temporal_heatmap(small_dataset, small_profile.labels, 77)

    def test_label_length_checked(self, small_dataset, small_profile):
        with pytest.raises(ValueError, match="labels length"):
            cluster_temporal_heatmap(
                small_dataset, small_profile.labels[:-1], 0
            )

    def test_custom_window(self, small_dataset, small_profile):
        window = small_dataset.calendar.window(
            np.datetime64("2023-01-09T00", "h"),
            np.datetime64("2023-01-15T23", "h"),
        )
        heatmap = cluster_temporal_heatmap(
            small_dataset, small_profile.labels, 1, window=window,
            max_antennas=10,
        )
        assert heatmap.values.shape == (7, 24)
