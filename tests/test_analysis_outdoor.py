"""Tests for the indoor/outdoor comparison (Fig. 9)."""

import numpy as np
import pytest

from repro.analysis.outdoor import OutdoorComparison, classify_outdoor
from repro.ml.forest import RandomForestClassifier


class TestOutdoorComparison:
    def test_distribution_accessors(self):
        comparison = OutdoorComparison(
            labels=np.array([1, 1, 1, 2]),
            distribution={1: 0.75, 2: 0.25, 3: 0.0},
        )
        assert comparison.fraction_of(1) == 0.75
        assert comparison.fraction_of(9) == 0.0
        assert comparison.dominant_cluster() == 1
        assert comparison.fraction_in([2, 3]) == 0.25


class TestClassifyOutdoor:
    @pytest.fixture(scope="class")
    def fitted(self, small_profile, small_dataset):
        antennas, totals = small_dataset.outdoor(count=400)
        comparison = small_profile.classify_outdoor(totals, small_dataset.totals)
        return comparison

    def test_labels_shape(self, fitted):
        assert fitted.labels.shape == (400,)

    def test_distribution_sums_to_one(self, fitted):
        assert sum(fitted.distribution.values()) == pytest.approx(1.0)

    def test_all_clusters_reported(self, fitted, small_profile):
        assert sorted(fitted.distribution) == sorted(
            small_profile.cluster_sizes()
        )

    def test_general_use_dominates(self, fitted):
        # Fig. 9: the general-use cluster absorbs the majority of outdoor
        # antennas (paper: ~70%).
        assert fitted.dominant_cluster() == 1
        assert fitted.fraction_of(1) > 0.5

    def test_specialized_clusters_negligible(self, fitted):
        # Workplace/stadium/commuter clusters nearly absent outdoors.
        for cluster in (0, 4, 6, 7, 8):
            assert fitted.fraction_of(cluster) < 0.10, cluster

    def test_shape_validation(self, small_profile, small_dataset):
        with pytest.raises(ValueError, match="number of services"):
            classify_outdoor(
                small_profile.surrogate, np.ones((5, 10)), small_dataset.totals
            )

    def test_explicit_cluster_list(self, small_profile, small_dataset):
        _, totals = small_dataset.outdoor(count=50)
        comparison = classify_outdoor(
            small_profile.surrogate, totals, small_dataset.totals,
            all_clusters=range(12),
        )
        assert sorted(comparison.distribution) == list(range(12))
        assert comparison.fraction_of(11) == 0.0
