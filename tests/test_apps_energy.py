"""Tests for the cluster-aware energy-adaptation planner."""

import numpy as np
import pytest

from repro.apps.energy import (
    SLEEP_POWER_FRACTION,
    SleepSchedule,
    derive_sleep_schedule,
    fleet_energy_saving,
    plan_energy,
)
from repro.analysis.temporal import TemporalHeatmap


def heatmap(weekday_profile, weekend_profile=None, n_weeks=2, cluster=0):
    dates = np.arange(np.datetime64("2023-01-02"),
                      np.datetime64("2023-01-02")
                      + np.timedelta64(7 * n_weeks, "D"))
    dows = (dates.astype("datetime64[D]").view("int64") + 3) % 7
    weekend_profile = (
        weekday_profile if weekend_profile is None else weekend_profile
    )
    values = np.vstack([
        np.asarray(weekend_profile if dow >= 5 else weekday_profile,
                   dtype=float)
        for dow in dows
    ])
    return TemporalHeatmap(values=values, dates=dates, cluster=cluster)


class TestDeriveSchedule:
    def test_office_sleeps_nights_and_weekends(self):
        weekday = np.full(24, 0.01)
        weekday[9:18] = 1.0
        weekend = np.full(24, 0.01)
        schedule = derive_sleep_schedule(heatmap(weekday, weekend))
        assert set(schedule.weekday_sleep_hours) >= {0, 1, 2, 3, 22, 23}
        assert 12 not in schedule.weekday_sleep_hours
        assert len(schedule.weekend_sleep_hours) == 24
        assert schedule.energy_saving > 0.4
        assert schedule.traffic_at_risk < 0.1

    def test_always_on_cluster_sleeps_little(self):
        profile = 0.5 + 0.5 * np.sin(np.linspace(0, 2 * np.pi, 24))
        schedule = derive_sleep_schedule(heatmap(profile + 0.3))
        assert len(schedule.weekday_sleep_hours) == 0
        assert schedule.energy_saving == 0.0

    def test_energy_accounting(self):
        weekday = np.full(24, 1.0)
        weekday[:6] = 0.0  # 6 sleepable hours per weekday
        schedule = derive_sleep_schedule(heatmap(weekday))
        expected = (7 * 6) * (1 - SLEEP_POWER_FRACTION) / (7 * 24)
        assert schedule.energy_saving == pytest.approx(expected)

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="idle_threshold"):
            derive_sleep_schedule(heatmap(np.ones(24)), idle_threshold=0.0)

    def test_zero_heatmap_rejected(self):
        with pytest.raises(ValueError, match="identically zero"):
            derive_sleep_schedule(heatmap(np.zeros(24)))

    def test_describe(self):
        schedule = SleepSchedule(3, (0, 1), (0, 1, 2), 0.2, 0.01)
        text = schedule.describe()
        assert "cluster 3" in text
        assert "20%" in text


class TestPlanEnergy:
    def test_end_to_end(self, small_dataset, small_profile):
        schedules = plan_energy(small_dataset, small_profile,
                                max_antennas=15)
        assert sorted(schedules) == sorted(small_profile.cluster_sizes())
        # Office cluster sleeps more than the retail/hotel cluster.
        assert (schedules[3].energy_saving
                > schedules[2].energy_saving)
        # Commuter clusters save heavily (nights + weekends idle).
        assert schedules[0].energy_saving > 0.2
        # Risked traffic stays small everywhere.
        for schedule in schedules.values():
            assert schedule.traffic_at_risk < 0.12

    def test_fleet_saving_weighted(self, small_dataset, small_profile):
        schedules = plan_energy(small_dataset, small_profile,
                                max_antennas=10)
        total = fleet_energy_saving(schedules,
                                    small_profile.cluster_sizes())
        savings = [s.energy_saving for s in schedules.values()]
        assert min(savings) <= total <= max(savings)

    def test_fleet_saving_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            fleet_energy_saving({}, {})


class TestScheduleValidation:
    def test_bounds(self):
        with pytest.raises(ValueError, match="energy_saving"):
            SleepSchedule(0, (), (), 1.5, 0.0)
        with pytest.raises(ValueError, match="sleep hours"):
            SleepSchedule(0, (24,), (), 0.1, 0.0)
