"""Tests for the ``scripts/bench.py`` wrapper's subcommand dispatch."""

import importlib.util
import sys
from pathlib import Path

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "bench.py"
_spec = importlib.util.spec_from_file_location("bench_script", _SCRIPT)
bench_script = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_script", bench_script)
_spec.loader.exec_module(bench_script)


def test_default_dispatch_is_bench_serve():
    # Pre-existing CI invocations pass bench-serve flags directly.
    assert bench_script.dispatch(["--queries", "10"]) == [
        "bench-serve", "--queries", "10",
    ]


def test_empty_args_default_to_bench_serve():
    assert bench_script.dispatch([]) == ["bench-serve"]


def test_explicit_subcommands_pass_through():
    assert bench_script.dispatch(["bench-forest", "--repeats", "1"]) == [
        "bench-forest", "--repeats", "1",
    ]
    assert bench_script.dispatch(["bench-serve", "--queries", "5"]) == [
        "bench-serve", "--queries", "5",
    ]


def test_wrapper_fronts_both_benchmarks():
    assert set(bench_script.BENCHMARKS) == {"bench-serve", "bench-forest"}
