"""Shared fixtures: scaled-down and full-scale synthetic datasets.

The full paper-scale dataset (4,762 antennas) and its fitted profile are
expensive, so they are session-scoped and only built by the integration
tests that need them; unit tests use a ~1/10-scale deployment that keeps
every environment type and archetype present.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import ICNProfiler
from repro.datagen.calendar import StudyCalendar
from repro.datagen.dataset import generate_dataset
from repro.datagen.scenarios import scaled_specs as _library_scaled_specs


def scaled_specs(scale: float = 0.1, minimum: int = 6):
    """Table 1 deployment scaled down, every environment kept non-trivial."""
    return _library_scaled_specs(scale, minimum_per_environment=minimum)


@pytest.fixture(scope="session")
def small_dataset():
    """~480-antenna deployment over the full study calendar."""
    return generate_dataset(master_seed=7, specs=scaled_specs(0.1))


@pytest.fixture(scope="session")
def small_profile(small_dataset):
    """Fitted pipeline on the small dataset, aligned to the archetypes."""
    profiler = ICNProfiler(n_clusters=9, surrogate_trees=30)
    return profiler.fit(small_dataset, align_to=small_dataset.archetypes())


@pytest.fixture(scope="session")
def full_dataset():
    """The paper-scale deployment (4,762 antennas, 73 services)."""
    return generate_dataset(master_seed=0)


@pytest.fixture(scope="session")
def full_profile(full_dataset):
    """Fitted paper-scale pipeline, aligned to the archetypes."""
    profiler = ICNProfiler(n_clusters=9)
    return profiler.fit(full_dataset, align_to=full_dataset.archetypes())


@pytest.fixture(scope="session")
def short_calendar():
    """A one-week calendar covering the strike day, for temporal tests."""
    return StudyCalendar(
        np.datetime64("2023-01-16T00", "h"), np.datetime64("2023-01-22T23", "h")
    )


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)


def build_frozen_profile(n_antennas=120, n_services=12, n_clusters=4,
                         seed=0, label_shift=0):
    """A small synthetic FrozenProfile for serving-layer tests.

    Built directly from lognormal traffic (no dataset generation), so the
    serve tests stay fast.  ``label_shift`` relabels the clusters — two
    profiles built with different shifts disagree on every answer, which
    the hot-swap tests use to detect version mixing.
    """
    from repro.core.cluster import AgglomerativeClustering
    from repro.core.rca import rsca
    from repro.ml.forest import RandomForestClassifier
    from repro.stream.frozen import FrozenProfile

    gen = np.random.default_rng(seed)
    totals = gen.lognormal(1.0, 1.0, size=(n_antennas, n_services))
    features = rsca(totals)
    labels = AgglomerativeClustering(
        n_clusters=n_clusters, linkage="ward"
    ).fit_predict(features) + int(label_shift)
    forest = RandomForestClassifier(n_estimators=10, max_depth=5,
                                    random_state=0)
    forest.fit(features, labels)
    clusters = np.unique(labels)
    centroids = np.vstack(
        [features[labels == c].mean(axis=0) for c in clusters]
    )
    return FrozenProfile(
        features=features,
        labels=labels,
        antenna_ids=np.arange(n_antennas, dtype=np.int64),
        clusters=clusters,
        centroids=centroids,
        service_names=tuple(f"service_{j}" for j in range(n_services)),
        surrogate=forest,
        service_totals=totals.sum(axis=0),
    ), totals


@pytest.fixture(scope="session")
def tiny_frozen():
    """Session-shared small frozen profile plus its raw totals."""
    return build_frozen_profile()
