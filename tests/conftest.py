"""Shared fixtures: scaled-down and full-scale synthetic datasets.

The full paper-scale dataset (4,762 antennas) and its fitted profile are
expensive, so they are session-scoped and only built by the integration
tests that need them; unit tests use a ~1/10-scale deployment that keeps
every environment type and archetype present.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import ICNProfiler
from repro.datagen.calendar import StudyCalendar
from repro.datagen.dataset import generate_dataset
from repro.datagen.scenarios import scaled_specs as _library_scaled_specs


def scaled_specs(scale: float = 0.1, minimum: int = 6):
    """Table 1 deployment scaled down, every environment kept non-trivial."""
    return _library_scaled_specs(scale, minimum_per_environment=minimum)


@pytest.fixture(scope="session")
def small_dataset():
    """~480-antenna deployment over the full study calendar."""
    return generate_dataset(master_seed=7, specs=scaled_specs(0.1))


@pytest.fixture(scope="session")
def small_profile(small_dataset):
    """Fitted pipeline on the small dataset, aligned to the archetypes."""
    profiler = ICNProfiler(n_clusters=9, surrogate_trees=30)
    return profiler.fit(small_dataset, align_to=small_dataset.archetypes())


@pytest.fixture(scope="session")
def full_dataset():
    """The paper-scale deployment (4,762 antennas, 73 services)."""
    return generate_dataset(master_seed=0)


@pytest.fixture(scope="session")
def full_profile(full_dataset):
    """Fitted paper-scale pipeline, aligned to the archetypes."""
    profiler = ICNProfiler(n_clusters=9)
    return profiler.fit(full_dataset, align_to=full_dataset.archetypes())


@pytest.fixture(scope="session")
def short_calendar():
    """A one-week calendar covering the strike day, for temporal tests."""
    return StudyCalendar(
        np.datetime64("2023-01-16T00", "h"), np.datetime64("2023-01-22T23", "h")
    )


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)
