"""Cross-seed robustness: the reproduction is not a single-seed accident.

The benchmarks pin ``master_seed=0``; these tests re-run the headline
pipeline on other seeds at reduced scale and assert the same qualitative
structure emerges every time.
"""

import numpy as np
import pytest

from repro.core.compare import adjusted_rand_index
from repro.core.pipeline import ICNProfiler
from repro.datagen.archetypes import GREEN_GROUP, ORANGE_GROUP, RED_GROUP
from repro.datagen.dataset import generate_dataset
from repro.datagen.environments import EnvironmentType
from tests.conftest import scaled_specs

SEEDS = (11, 23, 47)


@pytest.fixture(scope="module", params=SEEDS)
def seeded_profile(request):
    dataset = generate_dataset(master_seed=request.param,
                               specs=scaled_specs(0.1))
    profile = ICNProfiler(n_clusters=9, surrogate_trees=20).fit(
        dataset, align_to=dataset.archetypes()
    )
    return dataset, profile


class TestCrossSeed:
    def test_archetypes_recovered(self, seeded_profile):
        dataset, profile = seeded_profile
        ari = adjusted_rand_index(profile.labels, dataset.archetypes())
        assert ari > 0.95

    def test_three_groups(self, seeded_profile):
        _, profile = seeded_profile
        groups = profile.groups(3)
        by_group = {}
        for cluster, group in groups.items():
            by_group.setdefault(group, set()).add(cluster)
        partitions = {frozenset(v) for v in by_group.values()}
        expected = {
            frozenset(int(a) for a in ORANGE_GROUP),
            frozenset(int(a) for a in GREEN_GROUP),
            frozenset(int(a) for a in RED_GROUP),
        }
        assert partitions == expected

    def test_transit_monopolizes_orange(self, seeded_profile):
        _, profile = seeded_profile
        table = profile.environment_table()
        transit = {EnvironmentType.METRO, EnvironmentType.TRAIN}
        for cluster in (0, 4, 7):
            composition = table.composition_of(cluster)
            assert sum(composition[e] for e in transit) > 0.95

    def test_surrogate_faithful(self, seeded_profile):
        _, profile = seeded_profile
        assert profile.surrogate_accuracy > 0.97

    def test_datasets_differ_across_seeds(self):
        a = generate_dataset(master_seed=SEEDS[0], specs=scaled_specs(0.1))
        b = generate_dataset(master_seed=SEEDS[1], specs=scaled_specs(0.1))
        assert not np.allclose(a.totals[: min(len(a.antennas),
                                              len(b.antennas))][:50, :],
                               b.totals[:50, :])
