"""Tests for the SLO engine: sources, windows, burn rates, budgets."""

import math

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    SLO,
    SLOEngine,
    counter_source,
    default_slos,
    difference_source,
    histogram_count_source,
    histogram_under_source,
)


def make_slo(good, total, objective=0.99, window_s=60.0, **kwargs):
    return SLO(name=kwargs.pop("name", "slo"), objective=objective,
               window_s=window_s, good=good, total=total, **kwargs)


class TestEventSources:
    def test_counter_source_sums_label_series(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", labelnames=("x",))
        family.labels(x="a").inc(2)
        family.labels(x="b").inc(3)
        assert counter_source("c_total", registry)() == 5.0

    def test_missing_family_reads_zero(self):
        registry = MetricsRegistry()
        assert counter_source("absent_total", registry)() == 0.0
        assert histogram_count_source("absent", registry)() == 0.0
        assert histogram_under_source("absent", 0.1, registry)() == 0.0

    def test_difference_source_clamped_at_zero(self):
        assert difference_source(lambda: 3.0, lambda: 1.0)() == 2.0
        assert difference_source(lambda: 1.0, lambda: 5.0)() == 0.0

    def test_histogram_sources_align_to_bucket_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 0.25, 1.0))
        for value in (0.05, 0.2, 0.5, 2.0):
            hist.observe(value)
        assert histogram_count_source("lat", registry)() == 4.0
        # threshold 0.25 hits the 0.25 bound exactly: 0.05 and 0.2 qualify
        assert histogram_under_source("lat", 0.25, registry)() == 2.0
        # 0.3 aligns up to the 1.0 bound
        assert histogram_under_source("lat", 0.3, registry)() == 3.0

    def test_counter_source_on_wrong_kind_is_histogram_guarded(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        assert histogram_count_source("c_total", registry)() == 0.0


class TestSLOValidation:
    def test_objective_bounds(self):
        with pytest.raises(ValueError, match="objective"):
            make_slo(lambda: 0, lambda: 0, objective=1.0)
        with pytest.raises(ValueError, match="objective"):
            make_slo(lambda: 0, lambda: 0, objective=0.0)

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window_s"):
            make_slo(lambda: 0, lambda: 0, window_s=0.0)

    def test_duplicate_names_rejected(self):
        slo = make_slo(lambda: 0, lambda: 0)
        with pytest.raises(ValueError, match="duplicate"):
            SLOEngine([slo, slo], registry=MetricsRegistry())


class TestWindowing:
    def _engine(self, counts):
        """Engine over one SLO whose sources replay the given counts."""
        state = {"good": 0.0, "total": 0.0}
        slo = make_slo(lambda: state["good"], lambda: state["total"])
        engine = SLOEngine([slo], registry=MetricsRegistry())
        return engine, state

    def test_no_samples_reads_clean(self):
        engine, _ = self._engine({})
        assert engine.compliance("slo", 60.0, now=0.0) == 1.0
        assert engine.burn_rate("slo", 60.0, now=0.0) == 0.0
        assert engine.budget_remaining("slo", now=0.0) == 1.0

    def test_compliance_over_window(self):
        engine, state = self._engine({})
        engine.tick(now=0.0)
        state.update(good=90.0, total=100.0)
        engine.tick(now=10.0)
        assert engine.compliance("slo", 60.0, now=10.0) == pytest.approx(0.9)

    def test_window_anchor_excludes_old_errors(self):
        engine, state = self._engine({})
        engine.tick(now=0.0)
        state.update(good=50.0, total=100.0)  # storm
        engine.tick(now=10.0)
        state.update(good=150.0, total=200.0)  # clean recovery traffic
        engine.tick(now=100.0)
        # A 60s window at t=100 anchors at the t=10 sample: only the
        # clean 100 post-storm events are inside.
        assert engine.compliance("slo", 60.0, now=100.0) == 1.0
        # The full history still shows the storm.
        assert engine.compliance("slo", 200.0, now=100.0) == pytest.approx(
            0.75
        )

    def test_out_of_order_explicit_tick_rejected(self):
        engine, _ = self._engine({})
        engine.tick(now=10.0)
        with pytest.raises(ValueError, match="precedes"):
            engine.tick(now=5.0)

    def test_implicit_tick_behind_newest_sample_clamps(self):
        # A scrape-driven tick whose clock reads behind an explicit-now
        # caller must not fail the scrape — it clamps to the newest
        # sample's time instead.
        state = {"good": 0.0, "total": 0.0}
        slo = make_slo(lambda: state["good"], lambda: state["total"])
        engine = SLOEngine(
            [slo], registry=MetricsRegistry(), clock=lambda: 5.0
        )
        engine.tick(now=10.0)
        fresh = engine.tick()  # clock says 5.0 < newest sample 10.0
        assert fresh["slo"].t == 10.0
        assert engine.n_samples("slo") == 2

    def test_concurrent_implicit_ticks_never_collide(self):
        import threading

        state = {"good": 0.0, "total": 0.0}
        slo = make_slo(lambda: state["good"], lambda: state["total"])
        engine = SLOEngine([slo], registry=MetricsRegistry())
        errors = []

        def scrape():
            try:
                for _ in range(200):
                    engine.tick()
            except Exception as exc:  # noqa: BLE001 - collected below
                errors.append(exc)

        threads = [threading.Thread(target=scrape) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not errors, errors
        assert engine.n_samples("slo") == 8 * 200

    def test_burn_rate_scales_with_error_fraction(self):
        engine, state = self._engine({})
        engine.tick(now=0.0)
        state.update(good=98.0, total=100.0)  # 2% errors vs 1% allowed
        engine.tick(now=10.0)
        assert engine.burn_rate("slo", 60.0, now=10.0) == pytest.approx(2.0)

    def test_budget_remaining_signs(self):
        engine, state = self._engine({})
        engine.tick(now=0.0)
        state.update(good=100.0, total=100.0)
        engine.tick(now=1.0)
        assert engine.budget_remaining("slo", now=1.0) == 1.0
        state.update(good=199.0, total=200.0)  # 1 bad of 100 new: on target
        engine.tick(now=2.0)
        assert engine.budget_remaining("slo", now=2.0) == pytest.approx(
            0.5, abs=1e-9
        )
        state.update(good=199.0, total=210.0)  # overspend
        engine.tick(now=3.0)
        assert engine.budget_remaining("slo", now=3.0) < 0.0

    def test_ring_capacity_bounds_memory(self):
        state = {"good": 0.0, "total": 0.0}
        slo = make_slo(lambda: state["good"], lambda: state["total"])
        engine = SLOEngine([slo], registry=MetricsRegistry(), max_samples=5)
        for t in range(20):
            engine.tick(now=float(t))
        assert engine.n_samples("slo") == 5


class TestGaugesAndReport:
    def test_tick_refreshes_exported_gauges(self):
        registry = MetricsRegistry()
        state = {"good": 90.0, "total": 100.0}
        slo = make_slo(lambda: state["good"], lambda: state["total"],
                       objective=0.99)
        engine = SLOEngine([slo], registry=registry)
        engine.tick(now=0.0)
        state.update(good=180.0, total=200.0)
        engine.tick(now=1.0)
        series = dict(registry.get("repro_slo_compliance").series())
        assert series[("slo",)].value == pytest.approx(0.9)
        objective = dict(registry.get("repro_slo_objective").series())
        assert objective[("slo",)].value == pytest.approx(0.99)
        budget = dict(
            registry.get("repro_slo_error_budget_remaining").series()
        )
        assert budget[("slo",)].value < 0.0

    def test_report_is_json_shaped(self):
        engine = SLOEngine(
            [make_slo(lambda: 1.0, lambda: 1.0)], registry=MetricsRegistry()
        )
        engine.tick(now=0.0)
        report = engine.report(now=0.0, burn_windows=(60.0,))
        [entry] = report["slos"]
        assert entry["name"] == "slo"
        assert entry["compliance"] == 1.0
        assert entry["burn_rates"] == {"60s": 0.0}

    def test_get_unknown_raises(self):
        engine = SLOEngine([], registry=MetricsRegistry())
        with pytest.raises(KeyError):
            engine.get("nope")


class TestDefaultSLOs:
    def test_covers_serving_streaming_checkpoint(self):
        registry = MetricsRegistry()
        slos = {slo.name: slo for slo in default_slos(registry)}
        assert set(slos) == {
            "serve-availability", "serve-latency", "serve-degraded",
            "serve-shed", "stream-quarantine", "checkpoint-integrity",
        }
        assert slos["serve-availability"].exemplar_metric == (
            "repro_serve_request_latency_seconds"
        )

    def test_reads_live_families(self):
        registry = MetricsRegistry()
        slos = {slo.name: slo for slo in default_slos(registry)}
        registry.counter("repro_serve_requests_total").inc(100)
        registry.counter("repro_serve_errors_total").inc(5)
        availability = slos["serve-availability"]
        assert availability.total() == 100.0
        assert availability.good() == 95.0
        registry.counter("repro_checkpoint_loads_total").inc(10)
        registry.counter("repro_checkpoint_corruptions_total").inc(1)
        integrity = slos["checkpoint-integrity"]
        assert integrity.total() == 10.0
        assert integrity.good() == 9.0

    def test_integrity_counts_per_load_attempt_not_per_save(self):
        # A retry loop hammering one corrupt file must not clamp the
        # SLI to 0%: each retry adds one attempt and one corruption,
        # keeping the ratio an honest per-attempt failure rate.
        registry = MetricsRegistry()
        slos = {slo.name: slo for slo in default_slos(registry)}
        registry.counter("repro_checkpoint_saves_total").inc(1)
        registry.counter("repro_checkpoint_loads_total").inc(8)
        registry.counter("repro_checkpoint_corruptions_total").inc(5)
        integrity = slos["checkpoint-integrity"]
        assert integrity.total() == 8.0
        assert integrity.good() == 3.0

    def test_infinite_burn_guard(self):
        # An objective of exactly 1.0 is rejected, so the inf branch in
        # burn_rate is only reachable via a pathological source; assert
        # the finite path instead.
        state = {"good": 0.0, "total": 100.0}
        slo = make_slo(lambda: state["good"], lambda: state["total"],
                       objective=0.5)
        engine = SLOEngine([slo], registry=MetricsRegistry())
        engine.tick(now=0.0)
        state.update(good=0.0, total=200.0)
        engine.tick(now=1.0)
        assert math.isfinite(engine.burn_rate("slo", 60.0, now=1.0))
