"""Tests for the occupancy x usage temporal model."""

import numpy as np
import pytest

from repro.datagen.archetypes import Archetype
from repro.datagen.calendar import Event, StudyCalendar
from repro.datagen.services import TemporalClass
from repro.datagen.temporal import DEFAULT_OCCUPANCY, OccupancyParams, TemporalModel


@pytest.fixture(scope="module")
def model(request):
    return TemporalModel(StudyCalendar())


class TestOccupancy:
    def test_all_archetypes_covered(self, model):
        for arch in Archetype:
            occ = model.occupancy(arch)
            assert occ.shape == (model.calendar.n_hours,)
            assert np.all(occ >= 0)

    def test_commuter_bimodal(self, model):
        occ = model.occupancy(Archetype.PARIS_COMMUTER_ENTERTAINMENT)
        hod = model.calendar.hour_of_day()
        weekday = ~model.calendar.is_weekend() & ~model.calendar.is_strike_day()
        morning = occ[weekday & (hod == 8)].mean()
        evening = occ[weekday & (hod == 18)].mean()
        midday = occ[weekday & (hod == 13)].mean()
        night = occ[weekday & (hod == 3)].mean()
        assert morning > midday > night
        assert evening > midday

    def test_commuter_weekend_suppressed(self, model):
        occ = model.occupancy(Archetype.PARIS_COMMUTER_LEAN)
        weekend = model.calendar.is_weekend()
        assert occ[weekend].mean() < 0.4 * occ[~weekend].mean()

    def test_strike_hits_paris_commuters_hardest(self, model):
        strike = model.calendar.is_strike_day()
        hod = model.calendar.hour_of_day()
        peak = strike & (hod == 8)
        normal = (
            ~model.calendar.is_weekend()
            & ~model.calendar.is_strike_day()
            & (hod == 8)
        )
        paris = model.occupancy(Archetype.PARIS_COMMUTER_ENTERTAINMENT)
        provincial = model.occupancy(Archetype.PROVINCIAL_COMMUTER)
        paris_ratio = paris[peak].mean() / paris[normal].mean()
        provincial_ratio = provincial[peak].mean() / provincial[normal].mean()
        assert paris_ratio < 0.1
        assert provincial_ratio > 3 * paris_ratio  # milder outside Paris

    def test_office_dead_on_weekends(self, model):
        occ = model.occupancy(Archetype.OFFICE)
        weekend = model.calendar.is_weekend()
        assert occ[weekend].mean() < 0.2 * occ[~weekend].mean()

    def test_event_burst_superimposed(self, model):
        start = np.datetime64("2023-01-10T19", "h")
        end = np.datetime64("2023-01-10T22", "h")
        event = Event(start, end, intensity=10.0)
        with_event = model.occupancy(Archetype.PARIS_STADIUM, [event])
        without = model.occupancy(Archetype.PARIS_STADIUM)
        idx = model.calendar.index_of(start)
        assert with_event[idx] > 5 * without[idx]
        # Outside the event the two coincide.
        assert with_event[idx - 3] == pytest.approx(without[idx - 3])

    def test_non_venue_ignores_events(self, model):
        event = Event(np.datetime64("2023-01-10T19", "h"),
                      np.datetime64("2023-01-10T22", "h"))
        a = model.occupancy(Archetype.OFFICE, [event])
        b = model.occupancy(Archetype.OFFICE)
        np.testing.assert_array_equal(a, b)

    def test_retail_sunday_dip(self, model):
        occ = model.occupancy(Archetype.RETAIL_HOSPITALITY)
        dow = model.calendar.day_of_week()
        saturday = occ[dow == 5].mean()
        sunday = occ[dow == 6].mean()
        assert sunday < 0.8 * saturday


class TestProfiles:
    def test_profile_shapes(self, model):
        profile = model.profile(Archetype.GENERAL_USE, TemporalClass.DAYTIME)
        assert profile.shape == (model.calendar.n_hours,)
        assert np.all(profile >= 0)

    def test_post_event_lags_event(self, model):
        event = Event(np.datetime64("2023-01-10T19", "h"),
                      np.datetime64("2023-01-10T22", "h"), intensity=12.0)
        social = model.profile(
            Archetype.PARIS_STADIUM, TemporalClass.EVENT, [event]
        )
        navigation = model.profile(
            Archetype.PARIS_STADIUM, TemporalClass.POST_EVENT, [event]
        )
        day_start = model.calendar.index_of(np.datetime64("2023-01-10T00", "h"))
        day = slice(day_start, day_start + 30)
        assert np.argmax(navigation[day]) > np.argmax(social[day])

    def test_profiles_by_class_matches_profile(self, model):
        event = Event(np.datetime64("2023-01-07T19", "h"),
                      np.datetime64("2023-01-07T22", "h"))
        bundle = model.profiles_by_class(Archetype.PARIS_STADIUM, [event])
        for tclass in TemporalClass:
            single = model.profile(Archetype.PARIS_STADIUM, tclass, [event])
            np.testing.assert_allclose(bundle[tclass], single)

    def test_business_class_peaks_in_working_hours(self, model):
        profile = model.profile(Archetype.OFFICE, TemporalClass.BUSINESS_HOURS)
        hod = model.calendar.hour_of_day()
        weekday = ~model.calendar.is_weekend()
        work = profile[weekday & (hod >= 9) & (hod < 18)].mean()
        night = profile[weekday & (hod < 6)].mean()
        assert work > 10 * night

    def test_evening_class_in_office_peaks_at_lunch(self, model):
        # Reproduces the paper's cluster-3 Netflix lunch-hour pattern.
        profile = model.profile(Archetype.OFFICE, TemporalClass.EVENING)
        hod = model.calendar.hour_of_day()
        weekday = ~model.calendar.is_weekend() & ~model.calendar.is_strike_day()
        by_hour = np.array([
            profile[weekday & (hod == h)].mean() for h in range(24)
        ])
        assert 12 <= int(np.argmax(by_hour)) <= 14


class TestValidation:
    def test_missing_archetype_rejected(self):
        partial = {Archetype.OFFICE: DEFAULT_OCCUPANCY[Archetype.OFFICE]}
        with pytest.raises(ValueError, match="missing"):
            TemporalModel(StudyCalendar(), occupancy=partial)

    def test_occupancy_params_validation(self):
        with pytest.raises(ValueError, match="24-vector"):
            OccupancyParams(np.ones(23))
        with pytest.raises(ValueError, match="non-negative"):
            OccupancyParams(np.ones(24), weekend_factor=-0.1)
        with pytest.raises(ValueError, match="base_level"):
            OccupancyParams(np.ones(24), base_level=0.0)
