"""Tests for the bounded-memory online accumulators."""

import numpy as np
import pytest

from repro.core.rca import rsca
from repro.stream import (
    HourlyBatch,
    IncrementalRSCA,
    RunningTotals,
    SlidingWindowTensor,
    load_state,
    save_state,
)

SERVICES = ("a", "b", "c")
HOUR0 = np.datetime64("2023-01-09T00", "h")


def hour(k: int) -> np.datetime64:
    return HOUR0 + np.timedelta64(k, "h")


def make_stream(n_hours=10, n_antennas=5, seed=0):
    """Deterministic random batches over a fixed antenna population."""
    rng = np.random.default_rng(seed)
    ids = np.arange(n_antennas)
    return [
        HourlyBatch(
            hour=hour(t),
            antenna_ids=ids,
            traffic=rng.lognormal(0.0, 1.0, size=(n_antennas, len(SERVICES))),
            service_names=SERVICES,
        )
        for t in range(n_hours)
    ]


class TestRunningTotals:
    def test_accumulates_exact_sums(self):
        batches = make_stream()
        acc = RunningTotals(SERVICES)
        for batch in batches:
            acc.update(batch)
        expected = np.sum([b.traffic for b in batches], axis=0)
        np.testing.assert_allclose(acc.totals(), expected, rtol=1e-12)
        np.testing.assert_allclose(acc.row_totals(), expected.sum(axis=1),
                                   rtol=1e-12)
        np.testing.assert_allclose(acc.col_totals(), expected.sum(axis=0),
                                   rtol=1e-12)
        assert acc.grand_total == pytest.approx(expected.sum())
        assert acc.hours_seen == len(batches)
        assert acc.last_hour == batches[-1].hour

    def test_registers_new_antennas_in_first_seen_order(self):
        acc = RunningTotals(SERVICES)
        first = acc.update(HourlyBatch(hour(0), np.array([7, 3]),
                                       np.ones((2, 3)), SERVICES))
        second = acc.update(HourlyBatch(hour(1), np.array([3, 9]),
                                        np.ones((2, 3)), SERVICES))
        assert first == [7, 3]
        assert second == [9]
        np.testing.assert_array_equal(acc.antenna_ids(), [7, 3, 9])
        assert acc.row_of(9) == 2
        # antenna 3 reported twice, 7 and 9 once each
        np.testing.assert_allclose(acc.row_totals(), [3.0, 6.0, 3.0])

    def test_growth_beyond_initial_capacity(self):
        acc = RunningTotals(SERVICES)
        ids = np.arange(500)
        acc.update(HourlyBatch(hour(0), ids, np.ones((500, 3)), SERVICES))
        assert acc.n_antennas == 500
        np.testing.assert_allclose(acc.totals(), np.ones((500, 3)))

    def test_rejects_out_of_order_hours(self):
        acc = RunningTotals(SERVICES)
        acc.update(HourlyBatch(hour(5), np.array([0]), np.ones((1, 3)),
                               SERVICES))
        with pytest.raises(ValueError, match="increasing hour order"):
            acc.update(HourlyBatch(hour(5), np.array([0]), np.ones((1, 3)),
                                   SERVICES))

    def test_rejects_service_mismatch(self):
        acc = RunningTotals(SERVICES)
        with pytest.raises(ValueError, match="service columns"):
            acc.update(HourlyBatch(hour(0), np.array([0]), np.ones((1, 2)),
                                   ("a", "b")))

    def test_state_roundtrip_is_bit_exact(self, tmp_path):
        batches = make_stream(n_hours=8)
        acc = RunningTotals(SERVICES)
        for batch in batches[:4]:
            acc.update(batch)
        path = tmp_path / "totals.npz"
        save_state(path, acc.state_dict())
        restored = RunningTotals.from_state(load_state(path))
        for batch in batches[4:]:
            acc.update(batch)
            restored.update(batch)
        assert np.array_equal(acc.totals(), restored.totals())
        assert np.array_equal(acc.row_totals(), restored.row_totals())
        assert np.array_equal(acc.col_totals(), restored.col_totals())
        assert acc.grand_total == restored.grand_total
        assert acc.last_hour == restored.last_hour
        assert restored.service_names == SERVICES


class TestIncrementalRSCA:
    def test_matches_batch_transform(self):
        batches = make_stream(n_hours=12, n_antennas=8, seed=3)
        acc = IncrementalRSCA(SERVICES)
        for batch in batches:
            acc.update(batch)
        np.testing.assert_allclose(
            acc.rsca(), rsca(acc.totals()), rtol=1e-9, atol=1e-12
        )

    def test_nonzero_subset_excludes_silent_antennas(self):
        acc = IncrementalRSCA(SERVICES)
        acc.update(HourlyBatch(hour(0), np.array([0, 1]),
                               np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]),
                               SERVICES))
        ids, features = acc.rsca_nonzero()
        np.testing.assert_array_equal(ids, [0])
        assert features.shape == (1, 3)
        # the full-matrix transform rejects the zero row
        with pytest.raises(ValueError, match="zero total traffic"):
            acc.rsca()

    def test_nonzero_features_match_batch_of_nonzero_rows(self):
        batches = make_stream(n_hours=6, n_antennas=6, seed=5)
        acc = IncrementalRSCA(SERVICES)
        for batch in batches:
            acc.update(batch)
        ids, features = acc.rsca_nonzero()
        np.testing.assert_allclose(features, rsca(acc.totals()),
                                   rtol=1e-9, atol=1e-12)


class TestSlidingWindowTensor:
    def test_holds_last_w_hours(self):
        batches = make_stream(n_hours=10, n_antennas=4, seed=1)
        win = SlidingWindowTensor(SERVICES, window_hours=4)
        for batch in batches:
            win.update(batch)
        assert win.n_resident_hours == 4
        expected_hours = [b.hour for b in batches[-4:]]
        np.testing.assert_array_equal(win.hours(), expected_hours)
        tensor = win.tensor()
        assert tensor.shape == (4, 3, 4)
        for k, batch in enumerate(batches[-4:]):
            np.testing.assert_array_equal(tensor[:, :, k], batch.traffic)
        np.testing.assert_allclose(
            win.window_totals(),
            np.sum([b.traffic for b in batches[-4:]], axis=0),
        )

    def test_partial_window(self):
        batches = make_stream(n_hours=2, n_antennas=3, seed=2)
        win = SlidingWindowTensor(SERVICES, window_hours=6)
        for batch in batches:
            win.update(batch)
        assert win.n_resident_hours == 2
        assert win.tensor().shape == (3, 3, 2)

    def test_new_antenna_mid_window_backfills_zeros(self):
        win = SlidingWindowTensor(SERVICES, window_hours=3)
        win.update(HourlyBatch(hour(0), np.array([0]),
                               np.full((1, 3), 2.0), SERVICES))
        win.update(HourlyBatch(hour(1), np.array([0, 1]),
                               np.full((2, 3), 5.0), SERVICES))
        tensor = win.tensor()
        assert tensor.shape == (2, 3, 2)
        np.testing.assert_array_equal(tensor[1, :, 0], np.zeros(3))
        np.testing.assert_array_equal(tensor[1, :, 1], np.full(3, 5.0))

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window_hours"):
            SlidingWindowTensor(SERVICES, window_hours=0)

    def test_state_roundtrip_continues_exactly(self, tmp_path):
        batches = make_stream(n_hours=12, n_antennas=5, seed=4)
        win = SlidingWindowTensor(SERVICES, window_hours=5)
        for batch in batches[:7]:
            win.update(batch)
        path = tmp_path / "window.npz"
        save_state(path, win.state_dict())
        restored = SlidingWindowTensor.from_state(load_state(path))
        assert np.array_equal(win.tensor(), restored.tensor())
        for batch in batches[7:]:
            win.update(batch)
            restored.update(batch)
        assert np.array_equal(win.tensor(), restored.tensor())
        np.testing.assert_array_equal(win.hours(), restored.hours())
        assert win.last_hour == restored.last_hour


class TestCheckpointFormat:
    def test_scalar_types_survive(self, tmp_path):
        state = {
            "arr": np.arange(4.0),
            "i": 7,
            "f": 0.1 + 0.2,
            "s": "hello",
            "flag": True,
        }
        path = tmp_path / "state.npz"
        save_state(path, state)
        back = load_state(path)
        np.testing.assert_array_equal(back["arr"], state["arr"])
        assert back["i"] == 7 and isinstance(back["i"], int)
        assert back["f"] == state["f"] and isinstance(back["f"], float)
        assert back["s"] == "hello"
        assert back["flag"] is True

    def test_rejects_unsupported_values(self, tmp_path):
        with pytest.raises(TypeError, match="unsupported"):
            save_state(tmp_path / "bad.npz", {"x": object()})
