"""End-to-end chaos scenario: scripted faults, verified recovery."""

import json

import pytest

from repro.obs.registry import MetricsRegistry, get_registry, set_registry
from repro.relia.chaos import run_chaos_scenario


@pytest.fixture(scope="module")
def chaos_run(tmp_path_factory):
    # The scenario drives counters on the process-wide registry; give it
    # a fresh one so assertions see only this run.
    previous = get_registry()
    set_registry(MetricsRegistry())
    try:
        work_dir = tmp_path_factory.mktemp("chaos")
        yield run_chaos_scenario(seed=0, work_dir=str(work_dir)), work_dir
    finally:
        set_registry(previous)


@pytest.fixture(scope="module")
def report(chaos_run):
    return chaos_run[0]


def test_scenario_passes_every_check(report):
    failed = [c for c in report.checks if not c.passed]
    assert report.ok, "failed checks:\n" + "\n".join(
        f"  {c.name}: {c.detail}" for c in failed
    )


def test_faults_were_actually_delivered(report):
    kinds = {(i["site"], i["kind"]) for i in report.injections}
    assert ("stream.ingest", "io_error") in kinds
    assert ("stream.feed", "duplicate") in kinds
    assert ("stream.feed", "delay") in kinds
    assert ("stream.checkpoint", "truncate") in kinds
    assert ("serve.worker", "crash") in kinds


def test_recovery_is_bit_exact_outside_poisoned_hours(report):
    by_name = {c.name: c for c in report.checks}
    assert by_name["stream_bit_exact"].passed, (
        by_name["stream_bit_exact"].detail
    )
    assert by_name["poisoned_hour_quarantined"].passed


def test_resilience_counters_are_nonzero(report):
    assert report.counters, "scenario recorded no counters"
    for name, value in report.counters.items():
        assert value > 0, f"{name} never moved: {report.counters}"
    # The exposition check covers every required series by name.
    by_name = {c.name: c for c in report.checks}
    assert by_name["metrics_exposed"].passed, by_name["metrics_exposed"].detail


def test_report_serializes_to_json(report):
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["seed"] == 0
    assert payload["ok"] is True
    assert len(payload["checks"]) == len(report.checks)
    assert payload["injections"]
    summary = report.summary()
    assert "PASS" in summary


def test_slo_alerts_fired_and_resolved(report):
    by_name = {c.name: c for c in report.checks}
    assert by_name["slo_alerts_fired_during_faults"].passed, (
        by_name["slo_alerts_fired_during_faults"].detail
    )
    assert by_name["slo_alerts_resolved_after_recovery"].passed, (
        by_name["slo_alerts_resolved_after_recovery"].detail
    )
    # The storm must have tripped at least one paging fast-burn alert.
    fired = report.slo["fired"]
    assert any(name.endswith("-fast-burn") for name in fired), fired
    # ... and every alert ended the scenario resolved or untouched.
    for entry in report.slo["alerts"]:
        assert entry["state"] in ("inactive", "resolved"), entry


def test_firing_alert_exemplar_resolves_to_trace(report):
    by_name = {c.name: c for c in report.checks}
    assert by_name["alert_exemplar_links_trace"].passed, (
        by_name["alert_exemplar_links_trace"].detail
    )
    fired = {e["name"]: e for e in report.slo["alerts"]
             if e["fired_count"] > 0}
    assert fired, "no alert ever fired during the storm"
    assert any(e["exemplar_trace_id"] for e in fired.values()), fired


def test_slo_report_artifact_written(chaos_run):
    report, work_dir = chaos_run
    artifact = work_dir / "chaos_slo_report.json"
    assert artifact.exists()
    payload = json.loads(artifact.read_text(encoding="utf-8"))
    assert payload["fired"] == report.slo["fired"]
    # Budget accounting: every SLO in the artifact has a finite budget
    # and the storm overspent at least one of them at its peak.
    budgets = {s["name"]: s for s in payload["budget"]["slos"]}
    assert budgets, payload["budget"]
    for entry in budgets.values():
        assert "error_budget_remaining" in entry
    # The embedded SLO section round-trips through the main report too.
    full = json.loads(json.dumps(report.to_dict()))
    assert full["slo"]["fired"] == payload["fired"]


def test_scenario_is_seed_deterministic(report):
    # Same seed, same delivered fault sequence (site/kind/attrs tuples).
    previous = get_registry()
    set_registry(MetricsRegistry())
    try:
        replay = run_chaos_scenario(seed=0)
    finally:
        set_registry(previous)
    assert replay.ok
    assert replay.injections == report.injections
