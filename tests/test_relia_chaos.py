"""End-to-end chaos scenario: scripted faults, verified recovery."""

import json

import pytest

from repro.obs.registry import MetricsRegistry, get_registry, set_registry
from repro.relia.chaos import run_chaos_scenario


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    # The scenario drives counters on the process-wide registry; give it
    # a fresh one so assertions see only this run.
    previous = get_registry()
    set_registry(MetricsRegistry())
    try:
        work_dir = tmp_path_factory.mktemp("chaos")
        yield run_chaos_scenario(seed=0, work_dir=str(work_dir))
    finally:
        set_registry(previous)


def test_scenario_passes_every_check(report):
    failed = [c for c in report.checks if not c.passed]
    assert report.ok, "failed checks:\n" + "\n".join(
        f"  {c.name}: {c.detail}" for c in failed
    )


def test_faults_were_actually_delivered(report):
    kinds = {(i["site"], i["kind"]) for i in report.injections}
    assert ("stream.ingest", "io_error") in kinds
    assert ("stream.feed", "duplicate") in kinds
    assert ("stream.feed", "delay") in kinds
    assert ("stream.checkpoint", "truncate") in kinds
    assert ("serve.worker", "crash") in kinds


def test_recovery_is_bit_exact_outside_poisoned_hours(report):
    by_name = {c.name: c for c in report.checks}
    assert by_name["stream_bit_exact"].passed, (
        by_name["stream_bit_exact"].detail
    )
    assert by_name["poisoned_hour_quarantined"].passed


def test_resilience_counters_are_nonzero(report):
    assert report.counters, "scenario recorded no counters"
    for name, value in report.counters.items():
        assert value > 0, f"{name} never moved: {report.counters}"
    # The exposition check covers every required series by name.
    by_name = {c.name: c for c in report.checks}
    assert by_name["metrics_exposed"].passed, by_name["metrics_exposed"].detail


def test_report_serializes_to_json(report):
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["seed"] == 0
    assert payload["ok"] is True
    assert len(payload["checks"]) == len(report.checks)
    assert payload["injections"]
    summary = report.summary()
    assert "PASS" in summary


def test_scenario_is_seed_deterministic(report):
    # Same seed, same delivered fault sequence (site/kind/attrs tuples).
    previous = get_registry()
    set_registry(MetricsRegistry())
    try:
        replay = run_chaos_scenario(seed=0)
    finally:
        set_registry(previous)
    assert replay.ok
    assert replay.injections == report.injections
