"""Tests for the array-compiled forest and the fused serving kernel.

The contract under test is **bit-identity**: every float the compiled
kernel produces must equal — to the last bit, ``np.array_equal``, no
tolerances — what the object forest produces, across direct calls,
``.npz`` round-trips, and randomly fitted forests (hypothesis).
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.bench import format_forest_report, run_forest_benchmark
from repro.ml.compiled import (
    CompiledForest,
    FusedProfileKernel,
    compile_forest,
    compile_tree,
    compiled_equivalent,
)
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import LEAF, DecisionTreeClassifier
from repro.stream.frozen import FrozenProfile

from tests.conftest import build_frozen_profile


def fitted_forest(seed=0, n=200, m=8, n_labels=5, n_estimators=12,
                  max_depth=6, spread=3):
    """A small fitted forest on random data with non-contiguous labels."""
    gen = np.random.default_rng(seed)
    x = gen.normal(size=(n, m))
    y = gen.integers(0, n_labels, size=n) * spread + 1
    forest = RandomForestClassifier(
        n_estimators=n_estimators, max_depth=max_depth, random_state=seed
    )
    return forest.fit(x, y), gen.normal(size=(97, m))


class TestCompileTree:
    def test_unfitted_tree_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            compile_tree(DecisionTreeClassifier())

    def test_leaves_self_loop(self):
        forest, _ = fitted_forest()
        compiled = forest.trees_[0].compile()
        leaves = np.flatnonzero(compiled.feature == LEAF)
        assert leaves.size > 0
        assert np.array_equal(compiled.left[leaves], leaves)
        assert np.array_equal(compiled.right[leaves], leaves)

    def test_class_space_expansion_is_exact(self):
        forest, _ = fitted_forest()
        tree = forest.trees_[0]
        compiled = tree.compile(forest.classes_)
        cols = np.searchsorted(forest.classes_, tree.classes_)
        assert np.array_equal(compiled.values[:, cols], tree.tree_.value)
        off_cols = np.setdiff1d(
            np.arange(forest.classes_.size), cols
        )
        assert not compiled.values[:, off_cols].any()

    def test_foreign_class_space_rejected(self):
        forest, _ = fitted_forest()
        tree = forest.trees_[0]
        with pytest.raises(ValueError, match="absent from the target"):
            compile_tree(tree, classes=np.array([999, 1000]))


class TestCompiledForest:
    def test_unfitted_forest_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            compile_forest(RandomForestClassifier())

    def test_stacking_shapes(self):
        forest, _ = fitted_forest()
        compiled = forest.compile()
        total = sum(t.tree_.n_nodes for t in forest.trees_)
        assert compiled.n_nodes == total
        assert compiled.n_trees == len(forest.trees_)
        assert np.all(np.diff(compiled.roots) > 0)
        assert compiled.values.shape == (total, forest.classes_.size)

    def test_leaf_indices_match_object_traversal(self):
        forest, queries = fitted_forest()
        compiled = forest.compile()
        leaves = compiled.leaf_indices(queries)
        for t, tree in enumerate(forest.trees_):
            object_leaves = tree.decision_path_leaf(queries)
            assert np.array_equal(
                leaves[:, t] - compiled.roots[t], object_leaves
            )

    def test_bit_identical_proba_and_labels(self):
        forest, queries = fitted_forest()
        compiled = forest.compile()
        assert np.array_equal(
            compiled.predict_proba(queries), forest.predict_proba(queries)
        )
        assert np.array_equal(compiled.predict(queries), forest.predict(queries))

    def test_empty_batch_rejected_like_object_forest(self):
        forest, queries = fitted_forest()
        compiled = forest.compile()
        empty = queries[:0]
        with pytest.raises(ValueError, match="non-empty"):
            forest.predict_proba(empty)
        with pytest.raises(ValueError, match="non-empty"):
            compiled.predict_proba(empty)

    def test_feature_count_mismatch_raises(self):
        forest, queries = fitted_forest()
        compiled = forest.compile()
        with pytest.raises(ValueError, match="features"):
            compiled.predict_proba(queries[:, :-1])

    def test_nan_rejected_like_object_forest(self):
        forest, queries = fitted_forest()
        compiled = forest.compile()
        poisoned = queries.copy()
        poisoned[::3, 0] = np.nan
        with pytest.raises(ValueError):
            forest.predict_proba(poisoned)
        with pytest.raises(ValueError):
            compiled.predict_proba(poisoned)

    def test_array_roundtrip_bit_identical(self):
        forest, queries = fitted_forest()
        compiled = forest.compile()
        restored = CompiledForest.from_arrays(compiled.to_arrays())
        assert np.array_equal(
            restored.predict_proba(queries), compiled.predict_proba(queries)
        )
        assert restored.max_depth == compiled.max_depth
        assert restored.n_features == compiled.n_features

    def test_compiled_equivalent_detects_tampering(self):
        forest, queries = fitted_forest()
        compiled = forest.compile()
        ok, detail = compiled_equivalent(forest, compiled, queries)
        assert ok and detail == "bit-identical"
        arrays = compiled.to_arrays()
        arrays["compiled_values"] = arrays["compiled_values"] * 1.01
        tampered = CompiledForest.from_arrays(arrays)
        ok, detail = compiled_equivalent(forest, tampered, queries)
        assert not ok
        assert "differs" in detail


class TestFusedProfileKernel:
    def test_vote_bit_identical_to_profile(self, tiny_frozen, rng):
        frozen, _totals = tiny_frozen
        kernel = frozen.kernel()
        queries = frozen.features + rng.normal(0, 1e-3, frozen.features.shape)
        assert np.array_equal(kernel.vote(queries), frozen.vote(queries))

    def test_rsca_and_fused_volume_path(self, tiny_frozen, rng):
        frozen, _totals = tiny_frozen
        kernel = frozen.kernel()
        volumes = rng.lognormal(1.0, 1.0, size=(40, len(frozen.service_names)))
        assert np.array_equal(
            kernel.rsca_of_volumes(volumes), frozen.rsca_of_volumes(volumes)
        )
        assert np.array_equal(
            kernel.vote_volumes(volumes),
            frozen.vote(frozen.rsca_of_volumes(volumes)),
        )

    def test_volume_queries_need_service_totals(self, tiny_frozen):
        frozen, _totals = tiny_frozen
        kernel = FusedProfileKernel(
            frozen.compiled_forest(), frozen.clusters, frozen.centroids
        )
        with pytest.raises(ValueError, match="service_totals"):
            kernel.rsca_of_volumes(np.ones((2, len(frozen.service_names))))

    def test_shape_mismatches_raise(self, tiny_frozen):
        frozen, _totals = tiny_frozen
        with pytest.raises(ValueError, match="clusters"):
            FusedProfileKernel(
                frozen.compiled_forest(), frozen.clusters[:-1], frozen.centroids
            )
        kernel = frozen.kernel()
        with pytest.raises(ValueError, match="features"):
            kernel.vote(frozen.features[:, :-1])
        with pytest.raises(ValueError, match="columns"):
            kernel.rsca_of_volumes(np.ones((2, 3)))

    def test_describe(self, tiny_frozen):
        frozen, _totals = tiny_frozen
        shape = frozen.kernel().describe()
        assert shape["n_trees"] == 10
        assert shape["n_clusters"] == 4
        assert shape["volume_queries"] is True


class TestFrozenProfileEmbedding:
    def test_save_embeds_compiled_arrays(self, tiny_frozen, tmp_path):
        frozen, _totals = tiny_frozen
        path = tmp_path / "frozen.npz"
        frozen.save(path)
        with np.load(path, allow_pickle=False) as archive:
            names = set(archive.files)
        assert {"compiled_feature", "compiled_threshold", "compiled_left",
                "compiled_right", "compiled_values", "compiled_roots",
                "compiled_classes", "compiled_shape"} <= names

    def test_load_restores_compiled_without_recompiling(
        self, tiny_frozen, tmp_path
    ):
        frozen, _totals = tiny_frozen
        path = tmp_path / "frozen.npz"
        frozen.save(path)
        loaded = FrozenProfile.load(path)
        assert loaded.compiled is not None
        queries = frozen.features[:50]
        assert np.array_equal(
            loaded.kernel().vote(queries), frozen.vote(queries)
        )

    def test_legacy_archive_without_compiled_arrays(
        self, tiny_frozen, tmp_path
    ):
        frozen, _totals = tiny_frozen
        path = tmp_path / "frozen.npz"
        frozen.save(path)
        with np.load(path, allow_pickle=False) as archive:
            stripped = {
                name: archive[name] for name in archive.files
                if not name.startswith("compiled_")
            }
        legacy = tmp_path / "legacy.npz"
        np.savez_compressed(legacy, **stripped)
        loaded = FrozenProfile.load(legacy)
        assert loaded.compiled is None
        queries = frozen.features[:50]
        assert np.array_equal(
            loaded.kernel().vote(queries), frozen.vote(queries)
        )
        assert loaded.compiled is not None  # built lazily on first use


class TestPaperScale:
    def test_votes_bit_identical_at_paper_scale(self, full_dataset,
                                                full_profile, rng):
        frozen = full_profile.freeze(
            service_totals=full_dataset.totals.sum(axis=0)
        )
        queries = np.clip(
            frozen.features[:512]
            + rng.normal(0, 1e-4, size=frozen.features[:512].shape),
            -1.0, 1.0,
        )
        kernel = frozen.kernel()
        assert np.array_equal(kernel.vote(queries), frozen.vote(queries))
        ok, detail = compiled_equivalent(
            frozen.surrogate, kernel.forest, queries
        )
        assert ok, detail


seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestHypothesisBitIdentity:
    @given(seed=seeds,
           n_labels=st.integers(2, 6),
           max_depth=st.integers(2, 8),
           n_estimators=st.integers(1, 15))
    @settings(max_examples=25, deadline=None)
    def test_random_forests_bit_identical(self, seed, n_labels, max_depth,
                                          n_estimators):
        forest, queries = fitted_forest(
            seed=seed, n=120, m=6, n_labels=n_labels,
            n_estimators=n_estimators, max_depth=max_depth,
        )
        compiled = forest.compile()
        assert np.array_equal(
            compiled.predict_proba(queries), forest.predict_proba(queries)
        )
        assert np.array_equal(
            compiled.predict(queries), forest.predict(queries)
        )

    @given(seed=seeds, scale=st.floats(min_value=1e-3, max_value=1e3,
                                       allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_nan_free_float_inputs(self, seed, scale):
        forest, _ = fitted_forest(seed=seed, n=100, m=5)
        compiled = forest.compile()
        gen = np.random.default_rng(seed + 1)
        queries = gen.normal(0.0, scale, size=(64, 5))
        assert np.array_equal(
            compiled.predict_proba(queries), forest.predict_proba(queries)
        )

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_npz_roundtripped_checkpoints(self, seed, tmp_path_factory):
        frozen, _totals = build_frozen_profile(
            n_antennas=60, n_services=6, n_clusters=3, seed=seed % 1000
        )
        path = tmp_path_factory.mktemp("frozen") / f"f{seed % 1000}.npz"
        frozen.save(path)
        loaded = FrozenProfile.load(path)
        gen = np.random.default_rng(seed)
        queries = np.clip(
            frozen.features + gen.normal(0, 1e-3, frozen.features.shape),
            -1.0, 1.0,
        )
        assert np.array_equal(
            loaded.kernel().vote(queries), frozen.vote(queries)
        )
        assert np.array_equal(
            loaded.compiled.predict_proba(queries),
            frozen.surrogate.predict_proba(queries),
        )


class TestForestBenchHarness:
    def test_report_shape_and_equivalence(self, tiny_frozen):
        frozen, _totals = tiny_frozen
        report = run_forest_benchmark(
            frozen, n_queries=48, batch_sizes=(1, 16), repeats=1
        )
        assert report["equivalence"]["bit_identical"] is True
        assert report["equivalence"]["votes_identical"] is True
        assert [b["batch_size"] for b in report["batches"]] == [1, 16]
        for entry in report["batches"]:
            assert entry["object_rows_per_s"] > 0
            assert entry["compiled_rows_per_s"] > 0
            assert entry["speedup"] > 0
        assert report["speedup"] == report["batches"][-1]["speedup"]
        assert report["fused_volume"]["speedup"] > 0
        json.dumps(report)  # must be JSON-serializable as-is
        text = format_forest_report(report)
        assert "compiled-kernel speedup" in text

    def test_refuses_non_identical_kernel(self):
        frozen, _totals = build_frozen_profile(n_antennas=60, n_services=6,
                                               n_clusters=3)
        arrays = frozen.compiled_forest().to_arrays()
        arrays["compiled_values"] = arrays["compiled_values"] * 2.0
        frozen.compiled = CompiledForest.from_arrays(arrays)
        frozen._kernel = None  # drop any cached kernel
        with pytest.raises(RuntimeError, match="bit-identical"):
            run_forest_benchmark(frozen, n_queries=16, batch_sizes=(4,),
                                 repeats=1)

    def test_rejects_bad_parameters(self, tiny_frozen):
        frozen, _totals = tiny_frozen
        with pytest.raises(ValueError, match="n_queries"):
            run_forest_benchmark(frozen, n_queries=0)
        with pytest.raises(ValueError, match="batch_sizes"):
            run_forest_benchmark(frozen, n_queries=4, batch_sizes=())
