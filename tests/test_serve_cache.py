"""Tests for the LRU+TTL result cache and its quantized keys."""

import numpy as np
import pytest

from repro.serve.cache import ResultCache, quantize_key


class TestQuantizeKey:
    def test_identical_vectors_share_key(self):
        vector = np.array([0.1, -0.5, 0.9])
        assert quantize_key(vector) == quantize_key(vector.copy())

    def test_sub_quantum_jitter_collapses(self):
        base = np.array([0.123456, -0.654321])
        jittered = base + 1e-9
        assert quantize_key(base, decimals=6) == quantize_key(
            jittered, decimals=6
        )

    def test_meaningful_difference_separates(self):
        assert quantize_key(np.array([0.1, 0.2])) != quantize_key(
            np.array([0.1, 0.3])
        )

    def test_negative_zero_normalized(self):
        assert quantize_key(np.array([0.0])) == quantize_key(np.array([-0.0]))
        tiny = np.array([-1e-12])  # rounds to -0.0 before normalization
        assert quantize_key(tiny) == quantize_key(np.array([0.0]))


class TestResultCache:
    def test_put_get_roundtrip(self):
        cache = ResultCache(maxsize=4)
        cache.put(b"k", 7)
        assert cache.get(b"k") == 7
        assert cache.stats()["hits"] == 1

    def test_miss_counts(self):
        cache = ResultCache(maxsize=4)
        assert cache.get(b"absent") is None
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a": now "b" is least recent
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_ttl_expiry_with_injected_clock(self):
        now = [0.0]
        cache = ResultCache(maxsize=4, ttl_seconds=10.0, clock=lambda: now[0])
        cache.put("k", 1)
        now[0] = 9.9
        assert cache.get("k") == 1
        now[0] = 10.1
        assert cache.get("k") is None
        assert cache.stats()["expirations"] == 1

    def test_disabled_cache(self):
        cache = ResultCache(maxsize=0)
        assert not cache.enabled
        cache.put("k", 1)
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_clear_preserves_stats(self):
        cache = ResultCache(maxsize=4)
        cache.put("k", 1)
        cache.get("k")
        cache.clear()
        assert cache.get("k") is None
        assert cache.stats()["hits"] == 1
        assert cache.stats()["size"] == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ResultCache(maxsize=-1)
        with pytest.raises(ValueError):
            ResultCache(ttl_seconds=0.0)

    def test_hit_rate(self):
        cache = ResultCache(maxsize=4)
        cache.put("k", 1)
        cache.get("k")
        cache.get("absent")
        assert cache.stats()["hit_rate"] == pytest.approx(0.5)

    def test_put_refresh_updates_value(self):
        cache = ResultCache(maxsize=2)
        cache.put("k", 1)
        cache.put("k", 2)
        assert cache.get("k") == 2
        assert len(cache) == 1
