"""Tests for the DBSCAN density clusterer."""

import numpy as np
import pytest

from repro.core.compare import adjusted_rand_index
from repro.core.density import DBSCAN, NOISE


@pytest.fixture()
def blobs_with_noise(rng):
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    x = np.vstack([
        center + rng.normal(scale=0.4, size=(30, 2)) for center in centers
    ])
    truth = np.repeat(np.arange(3), 30)
    outliers = rng.uniform(20, 30, size=(5, 2))
    return np.vstack([x, outliers]), truth


class TestDBSCAN:
    def test_recovers_blobs_and_flags_noise(self, blobs_with_noise):
        x, truth = blobs_with_noise
        model = DBSCAN(eps=1.5, min_samples=4).fit(x)
        assert model.n_clusters_ == 3
        # The five far outliers are noise.
        assert np.all(model.labels_[-5:] == NOISE)
        ari = adjusted_rand_index(model.labels_[:90], truth)
        assert ari > 0.95

    def test_eps_too_small_everything_noise(self, blobs_with_noise):
        x, _ = blobs_with_noise
        model = DBSCAN(eps=1e-6, min_samples=3).fit(x)
        assert model.noise_fraction_ == 1.0
        assert model.n_clusters_ == 0

    def test_eps_huge_single_cluster(self, blobs_with_noise):
        x, _ = blobs_with_noise
        model = DBSCAN(eps=1e6, min_samples=3).fit(x)
        assert model.n_clusters_ == 1
        assert model.noise_fraction_ == 0.0

    def test_border_points_join_cluster(self):
        # A chain of points at spacing 1: all density-reachable.
        x = np.arange(10, dtype=float)[:, None]
        model = DBSCAN(eps=1.1, min_samples=3).fit(x)
        assert model.n_clusters_ == 1
        assert np.all(model.labels_ == 0)

    def test_core_mask(self, blobs_with_noise):
        x, _ = blobs_with_noise
        model = DBSCAN(eps=1.5, min_samples=4).fit(x)
        # Outliers are never core points.
        assert not model.core_mask_[-5:].any()

    def test_deterministic(self, blobs_with_noise):
        x, _ = blobs_with_noise
        a = DBSCAN(eps=1.5, min_samples=4).fit_predict(x)
        b = DBSCAN(eps=1.5, min_samples=4).fit_predict(x)
        np.testing.assert_array_equal(a, b)

    def test_finds_dense_profiles_on_rsca(self, small_profile,
                                          small_dataset):
        """The paper's profiles are dense regions, not partition artefacts:
        DBSCAN recovers multiple of them without being told k."""
        model = DBSCAN(eps=2.0, min_samples=8).fit(small_profile.features)
        assert model.n_clusters_ >= 4
        # Clustered (non-noise) points agree with the archetypes.
        mask = model.labels_ != NOISE
        assert mask.mean() > 0.5
        ari = adjusted_rand_index(
            model.labels_[mask], small_dataset.archetypes()[mask]
        )
        assert ari > 0.6

    def test_validation(self):
        with pytest.raises(ValueError, match="eps"):
            DBSCAN(eps=0.0)
        with pytest.raises(ValueError, match="min_samples"):
            DBSCAN(min_samples=0)
        with pytest.raises(RuntimeError, match="not fitted"):
            _ = DBSCAN().n_clusters_
