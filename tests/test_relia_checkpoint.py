"""Checkpoint corruption surfaces typed, rolls back, and stays bit-exact."""

import json
import os

import numpy as np
import pytest

from repro.relia import CheckpointCorrupt, FaultPlan, inject
from repro.stream import StreamingProfiler
from repro.stream.batch import HourlyBatch
from repro.stream.checkpoint import (
    backup_path,
    checkpoint_path,
    load_state,
    load_state_with_rollback,
    save_state,
)

from tests.conftest import build_frozen_profile

STATE = {
    "totals.matrix": np.arange(12, dtype=float).reshape(3, 4),
    "ids": np.array([3, 1, 4], dtype=np.int64),
    "count": 7,
    "rate": 0.1 + 0.2,  # a float whose repr matters
    "frozen": True,
    "note": "hello",
}


def write_checkpoint(tmp_path, state=STATE, name="ckpt"):
    path = tmp_path / name
    save_state(path, state)
    return checkpoint_path(path)


def truncate(path, keep_fraction=0.5):
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(int(size * keep_fraction))


# ----------------------------------------------------------------------
# Round trip
# ----------------------------------------------------------------------


def test_roundtrip_preserves_types_and_bits(tmp_path):
    path = write_checkpoint(tmp_path)
    state = load_state(path)
    assert set(state) == set(STATE)
    np.testing.assert_array_equal(state["totals.matrix"],
                                  STATE["totals.matrix"])
    np.testing.assert_array_equal(state["ids"], STATE["ids"])
    assert state["count"] == 7 and isinstance(state["count"], int)
    assert state["rate"] == STATE["rate"]  # exact, not approximate
    assert state["frozen"] is True
    assert state["note"] == "hello"


def test_missing_file_is_not_corruption(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_state(tmp_path / "nope.npz")
    with pytest.raises(FileNotFoundError):
        load_state_with_rollback(tmp_path / "nope.npz")


# ----------------------------------------------------------------------
# Corruption surfaces as the typed error, never a raw zipfile/numpy one
# ----------------------------------------------------------------------


@pytest.mark.parametrize("keep_fraction", [0.0, 0.3, 0.9])
def test_truncation_raises_checkpoint_corrupt(tmp_path, keep_fraction):
    path = write_checkpoint(tmp_path)
    truncate(path, keep_fraction)
    with pytest.raises(CheckpointCorrupt) as excinfo:
        load_state(path)
    assert excinfo.value.path == str(path)
    assert excinfo.value.reason


def test_bit_flip_fails_the_crc_check(tmp_path):
    path = write_checkpoint(tmp_path)
    blob = bytearray(path.read_bytes())
    # Flip one bit in the middle of the archive payload.
    blob[len(blob) // 2] ^= 0x40
    path.write_bytes(bytes(blob))
    with pytest.raises(CheckpointCorrupt):
        load_state(path)


def test_garbage_file_raises_checkpoint_corrupt(tmp_path):
    path = tmp_path / "garbage.npz"
    path.write_bytes(b"this was never an archive")
    with pytest.raises(CheckpointCorrupt):
        load_state(path)


def test_archive_without_manifest_is_corrupt(tmp_path):
    path = tmp_path / "plain.npz"
    np.savez_compressed(path, a=np.arange(3))
    with pytest.raises(CheckpointCorrupt, match="missing manifest"):
        load_state(path)


def test_legacy_format1_checkpoint_still_loads(tmp_path):
    # Pre-CRC checkpoints carried a bare scalars dict as the manifest.
    path = tmp_path / "legacy.npz"
    manifest = json.dumps({"count": {"type": "int", "value": 7}})
    np.savez_compressed(
        path,
        data=np.arange(4, dtype=float),
        __manifest__=np.frombuffer(manifest.encode("utf-8"), dtype=np.uint8),
    )
    state = load_state(path)
    assert state["count"] == 7
    np.testing.assert_array_equal(state["data"], np.arange(4, dtype=float))


# ----------------------------------------------------------------------
# Backup rotation and rollback
# ----------------------------------------------------------------------


def test_second_save_rotates_a_backup(tmp_path):
    path = write_checkpoint(tmp_path, {"v": 1})
    assert not backup_path(path).exists()
    save_state(path, {"v": 2})
    assert load_state(path)["v"] == 2
    assert load_state(backup_path(path))["v"] == 1


def test_rollback_restores_backup_and_keeps_autopsy(tmp_path):
    path = write_checkpoint(tmp_path, {"v": 1})
    save_state(path, {"v": 2})
    truncate(path)
    state, rolled_back = load_state_with_rollback(path)
    assert rolled_back and state["v"] == 1
    # The corrupt file is preserved for autopsy, and the primary path
    # holds the promoted backup so later loads succeed directly.
    assert path.with_name(path.name + ".corrupt").exists()
    clean_state, again = load_state_with_rollback(path)
    assert not again and clean_state["v"] == 1


def test_rollback_without_backup_reraises_corruption(tmp_path):
    path = write_checkpoint(tmp_path, {"v": 1}, name="solo")
    truncate(path)
    with pytest.raises(CheckpointCorrupt):
        load_state_with_rollback(path)


def test_rollback_with_corrupt_backup_reraises_primary_error(tmp_path):
    path = write_checkpoint(tmp_path, {"v": 1})
    save_state(path, {"v": 2})
    truncate(path)
    truncate(backup_path(path))
    with pytest.raises(CheckpointCorrupt) as excinfo:
        load_state_with_rollback(path)
    assert excinfo.value.path == str(path)


# ----------------------------------------------------------------------
# Through the profiler (the user-visible restore path)
# ----------------------------------------------------------------------


def make_batches(frozen, n_hours=6, seed=0):
    gen = np.random.default_rng(seed)
    n_antennas = frozen.features.shape[0]
    start = np.datetime64("2023-01-09T00", "h")
    return [
        HourlyBatch(
            hour=start + np.timedelta64(t, "h"),
            antenna_ids=np.arange(n_antennas, dtype=np.int64),
            traffic=gen.lognormal(0.0, 1.0,
                                  size=(n_antennas, len(frozen.service_names))),
            service_names=tuple(frozen.service_names),
        )
        for t in range(n_hours)
    ]


@pytest.fixture(scope="module")
def tiny_frozen_profile():
    frozen, _totals = build_frozen_profile(n_antennas=24, n_services=5,
                                           n_clusters=3)
    return frozen


def test_profiler_restore_rolls_back_to_previous_checkpoint(
    tmp_path, tiny_frozen_profile
):
    frozen = tiny_frozen_profile
    batches = make_batches(frozen)
    profiler = StreamingProfiler(frozen, classify_every=0)
    path = tmp_path / "stream"
    for batch in batches[:3]:
        profiler.ingest(batch)
    profiler.checkpoint(path)
    mid_state = dict(profiler.totals.state_dict())
    for batch in batches[3:]:
        profiler.ingest(batch)
    profiler.checkpoint(path)
    truncate(checkpoint_path(path))

    with pytest.raises(CheckpointCorrupt):
        StreamingProfiler.restore(path, frozen, rollback=False)

    restored = StreamingProfiler.restore(path, frozen)
    np.testing.assert_array_equal(
        restored.totals.state_dict()["matrix"], mid_state["matrix"]
    )
    # Catch-up re-ingestion continues bit-exactly from the rolled-back
    # point: the final accumulators equal an uninterrupted run's.
    for batch in batches[3:]:
        restored.ingest(batch)
    np.testing.assert_array_equal(
        restored.totals.state_dict()["matrix"],
        profiler.totals.state_dict()["matrix"],
    )


def test_chaos_truncation_site_composes_with_rollback(
    tmp_path, tiny_frozen_profile
):
    # The full loop the chaos scenario exercises: a truncate rule fires
    # on the *second* save, and restore transparently rolls back.
    frozen = tiny_frozen_profile
    batches = make_batches(frozen)
    profiler = StreamingProfiler(frozen, classify_every=0)
    path = tmp_path / "stream"
    plan = FaultPlan().add("stream.checkpoint", "truncate",
                           times=1, skip=1, fraction=0.4)
    with inject(plan):
        for batch in batches[:3]:
            profiler.ingest(batch)
        profiler.checkpoint(path)          # clean save (skipped by rule)
        mid_state = dict(profiler.totals.state_dict())
        for batch in batches[3:]:
            profiler.ingest(batch)
        profiler.checkpoint(path)          # truncated by the rule
    assert plan.injected_total("stream.checkpoint", "truncate") == 1
    restored = StreamingProfiler.restore(path, frozen)
    np.testing.assert_array_equal(
        restored.totals.state_dict()["matrix"], mid_state["matrix"]
    )
