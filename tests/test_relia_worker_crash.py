"""A worker killed mid-flight never silently drops a request.

Every in-flight request held by a crashing worker is either requeued and
answered by a surviving/replacement worker, failed with a typed
:class:`WorkerCrash` (so its caller unblocks with a diagnosis), or — at
the service level with a degrade policy — answered from the
nearest-centroid fallback marked ``degraded=true``.
"""

import numpy as np
import pytest

from repro.obs.registry import MetricsRegistry, get_registry, set_registry
from repro.relia import FaultPlan, WorkerCrash, inject
from repro.serve import (
    MicroBatcher,
    ProfileService,
    ServeDegradePolicy,
    ServeMetrics,
)
from tests.conftest import build_frozen_profile

WAIT_S = 5.0


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = get_registry()
    registry = MetricsRegistry()
    set_registry(registry)
    yield registry
    set_registry(previous)


@pytest.fixture(scope="module")
def frozen():
    profile, _totals = build_frozen_profile(n_antennas=40, n_services=6,
                                            n_clusters=3)
    return profile


def echo_classify(features):
    return features[:, 0].astype(np.int64), 1


def test_crashed_workers_requeue_inflight_requests(fresh_registry):
    plan = FaultPlan().add("serve.worker", "crash", times=2)
    with inject(plan):
        with MicroBatcher(echo_classify, n_workers=2, max_wait_ms=1.0,
                          max_item_retries=3) as batcher:
            items = [
                batcher.submit(np.array([[float(k), 0.0]]))
                for k in range(8)
            ]
            answers = [batcher.wait(item, timeout=WAIT_S) for item in items]
    # Every request was answered correctly despite two worker deaths.
    for k, (labels, version) in enumerate(answers):
        assert labels.tolist() == [k]
        assert version == 1
    assert plan.injected_total("serve.worker", "crash") == 2
    assert batcher.crash_count() == 2
    crashes = fresh_registry.get("repro_worker_crashes_total")
    assert crashes.value == 2


def test_pool_respawns_to_full_strength(frozen):
    plan = FaultPlan().add("serve.worker", "crash", times=2)
    with inject(plan):
        with MicroBatcher(echo_classify, n_workers=2,
                          max_wait_ms=1.0) as batcher:
            for k in range(6):
                item = batcher.submit(np.array([[float(k), 0.0]]))
                batcher.wait(item, timeout=WAIT_S)
            assert batcher.alive_workers() == 2
    # Outside the plan the pool keeps serving normally.
    assert batcher.crash_count() == 2


def test_exhausted_retries_fail_typed_never_hang():
    # Every worker crashes on every batch, and a request may ride along
    # with zero retries — its waiter must unblock with WorkerCrash, not
    # wait forever on a silently dropped request.
    plan = FaultPlan().add("serve.worker", "crash", times=None)
    with inject(plan):
        with MicroBatcher(echo_classify, n_workers=2, max_wait_ms=1.0,
                          max_item_retries=0) as batcher:
            item = batcher.submit(np.array([[7.0, 0.0]]))
            with pytest.raises(WorkerCrash, match="abandoned"):
                batcher.wait(item, timeout=WAIT_S)


def test_service_degrades_instead_of_failing(frozen, fresh_registry):
    # With a degrade policy, a service whose pool keeps crashing answers
    # every query from the nearest-centroid path, marked degraded.
    plan = FaultPlan().add("serve.worker", "crash", times=None)
    queries = frozen.features[:5]
    expected = frozen.nearest_centroids(queries)
    with inject(plan):
        with ProfileService(
            frozen, n_workers=2, cache_size=0, max_wait_ms=1.0,
            metrics=ServeMetrics(registry=fresh_registry),
            degrade=ServeDegradePolicy(failure_threshold=1,
                                       reset_timeout_s=60.0),
            max_item_retries=1,
        ) as service:
            results = [service.classify(queries, timeout=WAIT_S)
                       for _ in range(3)]
    for result in results:
        assert result.degraded
        np.testing.assert_array_equal(result.labels, expected)
    degraded = fresh_registry.get("repro_degraded_answers_total")
    assert degraded.value >= len(queries)


def test_service_without_degrade_policy_raises_typed(frozen):
    plan = FaultPlan().add("serve.worker", "crash", times=None)
    with inject(plan):
        with ProfileService(frozen, n_workers=2, cache_size=0,
                            max_wait_ms=1.0, max_item_retries=1) as service:
            with pytest.raises(WorkerCrash):
                service.classify(frozen.features[:3], timeout=WAIT_S)


def test_healthy_service_answers_full_fidelity(frozen):
    with ProfileService(
        frozen, n_workers=2, cache_size=0,
        degrade=ServeDegradePolicy(failure_threshold=1),
    ) as service:
        result = service.classify(frozen.features[:5], timeout=WAIT_S)
    assert not result.degraded
    np.testing.assert_array_equal(result.labels,
                                  frozen.vote(frozen.features[:5]))
