"""Tests for health checks: aggregation, probe safety, service probes."""

import pytest

from repro.obs.health import (
    HealthCheck,
    run_checks,
    service_health_checks,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLO, SLOEngine


class TestRunChecks:
    def test_all_passing_is_healthy(self):
        report = run_checks([
            HealthCheck("a", lambda: (True, "fine")),
            HealthCheck("b", lambda: (True, "also fine"), critical=False),
        ])
        assert report.ok
        assert [c.name for c in report.checks] == ["a", "b"]

    def test_critical_failure_flips_verdict(self):
        report = run_checks([
            HealthCheck("a", lambda: (False, "broken")),
        ])
        assert not report.ok

    def test_noncritical_failure_degrades_without_failing(self):
        report = run_checks([
            HealthCheck("a", lambda: (True, "fine")),
            HealthCheck("warn", lambda: (False, "meh"), critical=False),
        ])
        assert report.ok
        assert not report.checks[1].ok

    def test_raising_probe_becomes_failed_check(self):
        def boom():
            raise RuntimeError("probe exploded")

        report = run_checks([HealthCheck("a", boom)])
        assert not report.ok
        assert "probe exploded" in report.checks[0].detail

    def test_to_dict_shape(self):
        body = run_checks([HealthCheck("a", lambda: (True, "d"))]).to_dict()
        assert body["status"] == "ok"
        assert body["checks"] == [
            {"name": "a", "ok": True, "critical": True, "detail": "d"}
        ]
        body = run_checks([HealthCheck("a", lambda: (False, "d"))]).to_dict()
        assert body["status"] == "unhealthy"


class _StubBatcher:
    def __init__(self, depth, limit):
        self._depth, self.max_queue_depth = depth, limit

    def queue_depth(self):
        return self._depth


class _StubRegistry:
    def __init__(self, version):
        self._version = version

    def current_version(self):
        return self._version


class _StubBreaker:
    def __init__(self, state):
        self.state = state


class _StubService:
    def __init__(self, version=1, depth=0, limit=256, breaker="closed"):
        self.registry = _StubRegistry(version)
        self._batcher = _StubBatcher(depth, limit)
        self._breaker = (
            _StubBreaker(breaker) if breaker is not None else None
        )


class TestServiceChecks:
    def _verdicts(self, service, engine=None):
        report = run_checks(service_health_checks(service, engine=engine))
        return report, {c.name: c for c in report.checks}

    def test_healthy_service(self):
        report, checks = self._verdicts(_StubService())
        assert report.ok
        assert set(checks) == {"profile_loaded", "queue_headroom", "breaker"}

    def test_no_profile_fails(self):
        report, checks = self._verdicts(_StubService(version=None))
        assert not report.ok
        assert not checks["profile_loaded"].ok

    def test_saturated_queue_fails(self):
        report, checks = self._verdicts(_StubService(depth=256, limit=256))
        assert not report.ok
        assert "saturated" in checks["queue_headroom"].detail

    def test_open_breaker_fails_half_open_passes(self):
        report, checks = self._verdicts(_StubService(breaker="open"))
        assert not report.ok
        report, checks = self._verdicts(_StubService(breaker="half-open"))
        assert report.ok

    def test_missing_breaker_passes(self):
        report, checks = self._verdicts(_StubService(breaker=None))
        assert report.ok
        assert "no breaker" in checks["breaker"].detail

    def test_budget_check_is_noncritical(self):
        state = {"good": 0.0, "total": 0.0}
        slo = SLO(name="svc", objective=0.99, window_s=60.0,
                  good=lambda: state["good"], total=lambda: state["total"])
        # Pin the engine clock: the probe queries with implicit `now`.
        engine = SLOEngine([slo], registry=MetricsRegistry(),
                           clock=lambda: 1.0)
        engine.tick(now=0.0)
        state.update(good=50.0, total=100.0)  # budget blown
        engine.tick(now=1.0)
        report, checks = self._verdicts(_StubService(), engine=engine)
        assert report.ok  # overspent budget degrades, never fails
        assert not checks["error_budget"].ok
        assert checks["error_budget"].critical is False
        assert "svc" in checks["error_budget"].detail

    @pytest.mark.parametrize("engine", [None])
    def test_without_engine_no_budget_check(self, engine):
        _, checks = self._verdicts(_StubService(), engine=engine)
        assert "error_budget" not in checks
