"""Tests for the from-scratch agglomerative clustering.

The linkage implementation is cross-validated against scipy's reference
implementation (scipy is available in the dev environment only; the
library itself depends solely on numpy).
"""

import numpy as np
import pytest

from repro.core.cluster import (
    AgglomerativeClustering,
    Dendrogram,
    cophenetic_distances,
    cut_tree,
    linkage,
    pairwise_distances,
    threshold_for_k,
)

scipy_hierarchy = pytest.importorskip("scipy.cluster.hierarchy")


def random_blobs(rng, n_blobs=3, per_blob=15, dim=4, spread=0.3):
    centers = rng.normal(scale=4.0, size=(n_blobs, dim))
    points = np.vstack([
        center + rng.normal(scale=spread, size=(per_blob, dim))
        for center in centers
    ])
    labels = np.repeat(np.arange(n_blobs), per_blob)
    return points, labels


class TestPairwiseDistances:
    def test_matches_direct_computation(self, rng):
        x = rng.normal(size=(20, 5))
        expected = np.linalg.norm(x[:, None, :] - x[None, :, :], axis=2)
        np.testing.assert_allclose(pairwise_distances(x), expected, atol=1e-10)

    def test_squared(self, rng):
        x = rng.normal(size=(10, 3))
        np.testing.assert_allclose(
            pairwise_distances(x, squared=True),
            pairwise_distances(x) ** 2,
            atol=1e-9,
        )

    def test_chunking_consistent(self, rng):
        x = rng.normal(size=(30, 4))
        np.testing.assert_allclose(
            pairwise_distances(x, chunk_size=7),
            pairwise_distances(x, chunk_size=1000),
        )

    def test_zero_diagonal(self, rng):
        x = rng.normal(size=(15, 3))
        assert np.all(np.diag(pairwise_distances(x)) == 0)


class TestLinkageVsScipy:
    @pytest.mark.parametrize("method", ["ward", "single", "complete", "average"])
    def test_heights_match_scipy(self, method, rng):
        x = rng.normal(size=(40, 6))
        ours = linkage(x, method)
        reference = scipy_hierarchy.linkage(x, method=method)
        np.testing.assert_allclose(ours[:, 2], reference[:, 2], rtol=1e-8)
        np.testing.assert_allclose(ours[:, 3], reference[:, 3])

    @pytest.mark.parametrize("method", ["ward", "complete", "average"])
    def test_flat_cuts_match_scipy(self, method, rng):
        x = rng.normal(size=(50, 5))
        ours = linkage(x, method)
        reference = scipy_hierarchy.linkage(x, method=method)
        for k in (2, 3, 5, 8):
            a = cut_tree(ours, k)
            b = scipy_hierarchy.fcluster(reference, k, criterion="maxclust")
            # Same partition up to label permutation.
            pairs = set(zip(a.tolist(), b.tolist()))
            assert len(pairs) == k

    def test_cophenetic_matches_scipy(self, rng):
        x = rng.normal(size=(25, 4))
        ours = linkage(x, "average")
        reference = scipy_hierarchy.linkage(x, method="average")
        from scipy.spatial.distance import squareform

        ref_coph = squareform(scipy_hierarchy.cophenet(reference))
        np.testing.assert_allclose(
            cophenetic_distances(ours), ref_coph, rtol=1e-8
        )


class TestLinkageProperties:
    def test_monotonic_heights(self, rng):
        x = rng.normal(size=(60, 5))
        for method in ("ward", "complete", "average", "single"):
            z = linkage(x, method)
            assert np.all(np.diff(z[:, 2]) >= -1e-12), method

    def test_sizes_telescope(self, rng):
        x = rng.normal(size=(30, 3))
        z = linkage(x, "ward")
        assert z[-1, 3] == 30

    def test_recovers_well_separated_blobs(self, rng):
        x, truth = random_blobs(rng, n_blobs=4, per_blob=12)
        labels = cut_tree(linkage(x, "ward"), 4)
        # Perfect recovery up to permutation.
        pairs = set(zip(labels.tolist(), truth.tolist()))
        assert len(pairs) == 4

    def test_duplicate_points_supported(self):
        x = np.array([[0.0, 0.0]] * 5 + [[10.0, 10.0]] * 5)
        labels = cut_tree(linkage(x, "ward"), 2)
        assert len(set(labels[:5])) == 1
        assert len(set(labels[5:])) == 1
        assert labels[0] != labels[5]

    def test_two_points(self):
        z = linkage(np.array([[0.0], [3.0]]), "ward")
        assert z.shape == (1, 4)
        assert z[0, 2] == pytest.approx(3.0)

    def test_single_point_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            linkage(np.array([[1.0]]), "ward")

    def test_unknown_method_rejected(self, rng):
        with pytest.raises(ValueError, match="unknown linkage"):
            linkage(rng.normal(size=(5, 2)), "centroid")


class TestCutTree:
    def test_k_equals_n(self, rng):
        x = rng.normal(size=(8, 2))
        labels = cut_tree(linkage(x, "ward"), 8)
        assert sorted(labels.tolist()) == list(range(8))

    def test_k_equals_one(self, rng):
        x = rng.normal(size=(8, 2))
        labels = cut_tree(linkage(x, "ward"), 1)
        assert set(labels.tolist()) == {0}

    def test_out_of_range_rejected(self, rng):
        z = linkage(rng.normal(size=(8, 2)), "ward")
        with pytest.raises(ValueError, match="n_clusters"):
            cut_tree(z, 9)
        with pytest.raises(ValueError, match="n_clusters"):
            cut_tree(z, 0)

    def test_cuts_nest(self, rng):
        # Every k-cluster partition refines the (k-1)-cluster partition.
        x = rng.normal(size=(40, 4))
        z = linkage(x, "ward")
        for k in range(2, 10):
            fine = cut_tree(z, k)
            coarse = cut_tree(z, k - 1)
            for label in np.unique(fine):
                members = coarse[fine == label]
                assert np.unique(members).size == 1


class TestThreshold:
    def test_threshold_separates_k(self, rng):
        x = rng.normal(size=(30, 3))
        z = linkage(x, "ward")
        for k in (2, 4, 7):
            threshold = threshold_for_k(z, k)
            n_above = int(np.sum(z[:, 2] > threshold))
            assert n_above == k - 1

    def test_threshold_bounds(self, rng):
        z = linkage(rng.normal(size=(10, 2)), "ward")
        assert threshold_for_k(z, 1) > z[-1, 2]
        assert threshold_for_k(z, 10) < z[0, 2]


class TestDendrogram:
    def test_leaves_partition(self, rng):
        x = rng.normal(size=(20, 3))
        dendrogram = Dendrogram(linkage(x, "ward"))
        assert sorted(dendrogram.root.leaves()) == list(range(20))
        assert dendrogram.root.count() == 20

    def test_nodes_at_matches_cut(self, rng):
        x = rng.normal(size=(25, 3))
        dendrogram = Dendrogram(linkage(x, "ward"))
        for k in (2, 4, 6):
            nodes = dendrogram.nodes_at(k)
            assert len(nodes) == k
            labels = dendrogram.cut(k)
            node_leafsets = [frozenset(node.leaves()) for node in nodes]
            cut_leafsets = [
                frozenset(np.flatnonzero(labels == c).tolist())
                for c in np.unique(labels)
            ]
            assert set(node_leafsets) == set(cut_leafsets)

    def test_group_of_clusters_consistent(self, rng):
        x, _ = random_blobs(rng, n_blobs=4, per_blob=10)
        dendrogram = Dendrogram(linkage(x, "ward"))
        mapping = dendrogram.group_of_clusters(4, 2)
        assert set(mapping) == set(range(4))
        assert set(mapping.values()) <= {0, 1}

    def test_bad_linkage_shape_rejected(self):
        with pytest.raises(ValueError, match="linkage matrix"):
            Dendrogram(np.ones((3, 3)))


class TestAgglomerativeClustering:
    def test_fit_predict(self, rng):
        x, truth = random_blobs(rng, n_blobs=3, per_blob=10)
        model = AgglomerativeClustering(n_clusters=3)
        labels = model.fit_predict(x)
        assert len(set(zip(labels.tolist(), truth.tolist()))) == 3
        assert model.linkage_matrix_ is not None
        assert model.dendrogram_ is not None

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="n_clusters"):
            AgglomerativeClustering(n_clusters=0)
        with pytest.raises(ValueError, match="unknown linkage"):
            AgglomerativeClustering(linkage="median")
