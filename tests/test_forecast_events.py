"""Tests for the event-calendar-aware forecaster."""

import numpy as np
import pytest

from repro.datagen.environments import EnvironmentType
from repro.forecast.events import EventAwareProfile, event_mask_for_site
from repro.forecast.models import WEEK_HOURS, WeeklyProfile, normalized_mae


def venue_series(n_weeks=6, uplift=8.0, rng=None, attendance=0.7):
    """Quiet weekly baseline plus *probabilistic* Wed/Sat evening events.

    Like the real fixture calendar, not every candidate evening hosts a
    match — the quiet instances of each week-hour are what lets the model
    separate baseline from burst.
    """
    schedule_rng = np.random.default_rng(99)
    base = 1.0 + 0.4 * np.sin(np.linspace(0, 2 * np.pi, 24))
    series = np.tile(base, 7 * n_weeks).astype(float)
    mask = np.zeros(series.size, dtype=bool)
    for week in range(n_weeks):
        for day in (2, 5):  # Wednesday, Saturday
            if schedule_rng.random() > attendance:
                continue
            start = week * WEEK_HOURS + day * 24 + 20
            mask[start:start + 3] = True
    series[mask] *= uplift
    if rng is not None:
        series *= rng.lognormal(0.0, 0.05, series.size)
    return series, mask


class TestFit:
    def test_learns_uplift(self, rng):
        series, mask = venue_series(uplift=8.0, rng=rng)
        model = EventAwareProfile().fit(series, mask)
        assert model.uplift_ == pytest.approx(8.0, rel=0.25)

    def test_baseline_not_contaminated_by_events(self, rng):
        series, mask = venue_series(uplift=10.0, rng=rng)
        model = EventAwareProfile().fit(series, mask)
        quiet_forecast = model.forecast(WEEK_HOURS)
        # Without announced events the forecast stays near the baseline.
        assert quiet_forecast.max() < 3.0

    def test_mask_shape_checked(self, rng):
        series, mask = venue_series(rng=rng)
        with pytest.raises(ValueError, match="event_mask shape"):
            EventAwareProfile().fit(series, mask[:-1])

    def test_too_few_event_hours(self, rng):
        series, _ = venue_series(rng=rng)
        empty = np.zeros(series.size, dtype=bool)
        empty[0] = True
        with pytest.raises(ValueError, match="event hours"):
            EventAwareProfile().fit(series, empty)

    def test_unfitted(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            EventAwareProfile().forecast(5)
        with pytest.raises(RuntimeError, match="not fitted"):
            EventAwareProfile().uplift_


class TestForecast:
    def test_beats_blind_profile_on_irregular_event(self, rng):
        """An announced off-calendar event is captured only with the mask."""
        series, mask = venue_series(n_weeks=7, uplift=8.0, rng=rng)
        # Inject an irregular Thursday-evening event in the final week.
        final_week = slice(series.size - WEEK_HOURS, series.size)
        irregular = np.zeros(series.size, dtype=bool)
        start = series.size - WEEK_HOURS + 3 * 24 + 20
        irregular[start:start + 3] = True
        series = series.copy()
        series[irregular] *= 8.0
        mask = mask | irregular

        train = series[:-WEEK_HOURS]
        test = series[-WEEK_HOURS:]
        train_mask = mask[:-WEEK_HOURS]
        future_mask = mask[-WEEK_HOURS:]

        aware = EventAwareProfile().fit(train, train_mask)
        aware_forecast = aware.forecast(WEEK_HOURS, future_mask)
        blind_forecast = WeeklyProfile().fit(train).forecast(WEEK_HOURS)

        assert normalized_mae(test, aware_forecast) < normalized_mae(
            test, blind_forecast
        )
        # Specifically at the irregular hours the aware model is close.
        idx = np.flatnonzero(future_mask[3 * 24 + 20: 3 * 24 + 23])
        hour = 3 * 24 + 20
        assert aware_forecast[hour] > 3 * blind_forecast[hour]

    def test_future_mask_shape_checked(self, rng):
        series, mask = venue_series(rng=rng)
        model = EventAwareProfile().fit(series, mask)
        with pytest.raises(ValueError, match="future_event_mask"):
            model.forecast(10, np.zeros(9, dtype=bool))


class TestEventMaskForSite:
    def test_venue_site_has_event_hours(self, small_dataset):
        venue = next(
            s.site_id for s in small_dataset.sites
            if s.env_type == EnvironmentType.STADIUM
        )
        mask = event_mask_for_site(small_dataset, venue)
        assert mask.shape == (small_dataset.calendar.n_hours,)
        assert mask.sum() > 10

    def test_non_venue_site_empty(self, small_dataset):
        office = next(
            s.site_id for s in small_dataset.sites
            if s.env_type == EnvironmentType.WORKSPACE
        )
        mask = event_mask_for_site(small_dataset, office)
        assert mask.sum() == 0

    def test_nba_forecast_fix_end_to_end(self, small_dataset):
        """With the event calendar, the NBA-evening miss disappears."""
        from repro.datagen.calendar import STRIKE_DAY

        nba_site = next(
            s.site_id for s in small_dataset.sites
            if s.env_type == EnvironmentType.STADIUM and s.is_paris
        )
        members = [a.antenna_id for a in small_dataset.antennas
                   if a.site_id == nba_site]
        series = small_dataset.hourly_total(antenna_ids=members).mean(axis=0)
        mask = event_mask_for_site(small_dataset, nba_site)

        train, test = series[:-WEEK_HOURS], series[-WEEK_HOURS:]
        aware = EventAwareProfile().fit(train, mask[:-WEEK_HOURS])
        aware_forecast = aware.forecast(WEEK_HOURS, mask[-WEEK_HOURS:])
        blind_forecast = WeeklyProfile().fit(train).forecast(WEEK_HOURS)

        nba_hours = (
            small_dataset.calendar.dates()[-WEEK_HOURS:] == STRIKE_DAY
        ) & mask[-WEEK_HOURS:]
        assert nba_hours.sum() > 0
        aware_miss = np.abs(test[nba_hours] - aware_forecast[nba_hours]).mean()
        blind_miss = np.abs(test[nba_hours] - blind_forecast[nba_hours]).mean()
        assert aware_miss < 0.5 * blind_miss
